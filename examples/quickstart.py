"""Quickstart: protect a scientific array with RAPIDS and survive outages.

Walks the full loop in ~40 lines of API:

1. generate a synthetic simulation field;
2. ``prepare`` — refactor + optimise fault tolerance + erasure-code +
   distribute to 16 simulated geo-distributed storage systems;
3. knock out storage systems;
4. ``restore`` — gather what survives and reconstruct the best available
   approximation.

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro import RAPIDS, MetadataCatalog, StorageCluster, relative_linf_error
from repro.datasets import nyx_temperature
from repro.transfer import paper_bandwidth_profile


def main() -> None:
    # A 3-D temperature field standing in for real simulation output.
    data = nyx_temperature((49, 49, 49))
    print(f"original data: {data.shape} float32, {data.nbytes / 1024:.0f} KiB")

    # 16 geo-distributed storage systems with Globus-log bandwidths.
    cluster = StorageCluster(paper_bandwidth_profile(16))
    with tempfile.TemporaryDirectory() as tmp:
        catalog = MetadataCatalog(f"{tmp}/metadata")
        rapids = RAPIDS(cluster, catalog, omega=0.25)

        report = rapids.prepare("nyx:temperature", data)
        print(f"fault-tolerance config m_j = {report.ft_config}")
        print(f"level sizes   s_j = {report.level_sizes} bytes")
        print(f"level errors  e_j = {[f'{e:.2e}' for e in report.level_errors]}")
        print(f"storage overhead  = {report.storage_overhead:.3f} "
              f"(budget 0.25)")
        print(f"expected rel. error = {report.expected_error:.3e}")

        # Fail a growing number of systems and watch quality degrade
        # gracefully instead of all-or-nothing.
        for failures in (0, 2, 5, 9):
            cluster.restore_all()
            cluster.fail(range(failures))
            result = rapids.restore("nyx:temperature", strategy="naive")
            if result.data is None:
                print(f"{failures:2d} failures -> nothing recoverable")
                continue
            err = relative_linf_error(data, result.data)
            print(
                f"{failures:2d} failures -> {result.levels_used}/4 levels, "
                f"rel. L-inf error {err:.2e}"
            )
        catalog.close()


if __name__ == "__main__":
    main()
