"""Protecting a time-evolving simulation as a single 4-D object.

Snapshot sequences are usually archived one file per step; RAPIDS can
instead refactor the whole (t, z, y, x) array, letting the transform
exploit *temporal* smoothness for extra compression, and letting one
fault-tolerance configuration protect the entire sequence.  This example:

1. generates an advected, slowly decorrelating 4-D sequence;
2. compares compression: 4-D refactoring vs per-snapshot refactoring;
3. protects the sequence through the pipeline and restores a *single
   snapshot* via region-of-interest reconstruction, touching only the
   blocks that contain it.

Run:  python examples/timeseries_archive.py
"""

import tempfile

import numpy as np

from repro import RAPIDS, MetadataCatalog, StorageCluster, relative_linf_error
from repro.datasets import advected_sequence
from repro.parallel import ParallelRefactorer
from repro.refactor import Refactorer
from repro.transfer import paper_bandwidth_profile


def main() -> None:
    steps, n = 16, 25
    seq = advected_sequence(steps, (n, n, n), decorrelation=0.02, seed=0)
    print(f"sequence: {seq.shape} float32, {seq.nbytes / 1024:.0f} KiB")

    # --- 4-D vs per-snapshot compression --------------------------------
    r = Refactorer(4, num_planes=22)
    joint = r.refactor(seq, measure_errors=False)
    per_snap = [r.refactor(seq[t], measure_errors=False) for t in range(steps)]
    per_total = sum(o.total_bytes for o in per_snap)
    print(
        f"4-D refactoring: {joint.total_bytes} B "
        f"(CR {joint.compression_ratio:.2f}x)\n"
        f"per-snapshot   : {per_total} B "
        f"(CR {seq.nbytes / per_total:.2f}x)\n"
        f"temporal smoothness buys "
        f"{(per_total - joint.total_bytes) / per_total:.0%}"
    )

    # --- protect and restore through the pipeline ---------------------------
    cluster = StorageCluster(paper_bandwidth_profile(16))
    with tempfile.TemporaryDirectory() as tmp:
        with MetadataCatalog(f"{tmp}/meta") as catalog:
            rapids = RAPIDS(
                cluster, catalog,
                refactorer=Refactorer(4, num_planes=22), omega=0.3,
            )
            prep = rapids.prepare("xgc:sequence", seq)
            cluster.fail([1, 5, 9])
            res = rapids.restore("xgc:sequence", strategy="naive")
            err = relative_linf_error(seq, res.data)
            print(
                f"\npipeline: m={prep.ft_config}, 3 systems down -> "
                f"{res.levels_used}/4 levels, error {err:.1e}"
            )

    # --- single-snapshot ROI via block decomposition --------------------------
    pr = ParallelRefactorer(processes=1, num_components=3, num_planes=22)
    blocks = pr.refactor(seq, blocks_per_process=8)
    t_pick = 11
    region = pr.reconstruct_region(blocks.objects, t_pick, t_pick + 1)
    snap_err = relative_linf_error(seq[t_pick], region.data[0])
    print(
        f"snapshot t={t_pick} via ROI: touched "
        f"{region.extra['blocks_touched']}/{region.extra['blocks_total']} "
        f"blocks, error {snap_err:.1e}"
    )


if __name__ == "__main__":
    main()
