"""Optimising WAN gathering under bandwidth contention.

End-to-end walkthrough of the §3.3 machinery:

1. synthesise Globus-style transfer logs and estimate per-endpoint
   bandwidth the way the paper does (§5.1.2);
2. build the Eq. 10 gathering model for a refactored 16 TB object with
   two failed systems;
3. compare Random / Naive / ACO-optimised strategies, show the ACO
   convergence trace, and validate against the exhaustive oracle on a
   down-scaled instance.

Run:  python examples/gathering_optimization.py
"""

import numpy as np

from repro.core import (
    gathering_latency,
    naive_strategy,
    optimized_strategy,
    random_strategy,
)
from repro.optimize import (
    ACOSolver,
    GatheringModel,
    exhaustive_gathering,
    solution_space_size,
)
from repro.transfer import GB, estimate_bandwidths, generate_transfer_logs

TB = 1024**4


def main() -> None:
    # --- bandwidth estimation from (synthetic) Globus logs -------------
    records, _ = generate_transfer_logs(num_endpoints=16, seed=2014)
    est = estimate_bandwidths(records)
    bw = np.array([est[f"gcs-{i:02d}"] for i in range(16)])
    print("estimated endpoint bandwidths (GB/s):",
          " ".join(f"{b / GB:.2f}" for b in bw))

    # --- one refactored object, two systems down -------------------------
    sizes = [0.01 * 16 * TB, 0.04 * 16 * TB, 0.11 * 16 * TB, 0.42 * 16 * TB]
    ms = [9, 8, 7, 4]
    failed = [3, 11]

    rand_lat = [
        gathering_latency(
            random_strategy(sizes, ms, bw, failed, seed=s), sizes, ms, bw
        )
        for s in range(50)
    ]
    naive = naive_strategy(sizes, ms, bw, failed)
    naive_lat = gathering_latency(naive, sizes, ms, bw)
    opt = optimized_strategy(
        sizes, ms, bw, failed, time_budget=1.0, charged_time=0.0,
        seed=0, objective="makespan",
    )
    opt_lat = gathering_latency(opt, sizes, ms, bw)
    print(f"\nRandom (50 seeds): {np.mean(rand_lat):8.0f}s ± {np.std(rand_lat):.0f}")
    print(f"Naive            : {naive_lat:8.0f}s")
    print(f"Optimized (ACO)  : {opt_lat:8.0f}s "
          f"({naive_lat / opt_lat:.2f}x faster than Naive)")

    # --- convergence trace -------------------------------------------------
    n = len(bw)
    avail = np.ones(n, dtype=bool)
    avail[failed] = False
    model = GatheringModel(
        fragment_sizes=np.array([s / (n - m) for s, m in zip(sizes, ms)]),
        needed=np.array([n - m for m in ms]),
        bandwidths=bw,
        available=avail,
        objective="makespan",
    )
    res = ACOSolver(seed=1).solve(model, max_iterations=40)
    trace = [f"{v:.0f}" for v in res.history[:: max(1, len(res.history) // 8)]]
    print(f"\nACO best-so-far trace (s): {' -> '.join(trace)}")

    # --- oracle check at toy scale ----------------------------------------
    toy = GatheringModel(
        fragment_sizes=np.array([1 * GB, 8 * GB]),
        needed=np.array([2, 4]),
        bandwidths=bw[:6],
        available=np.ones(6, dtype=bool),
    )
    print(f"\ntoy instance: {solution_space_size(toy)} candidate selections")
    _, oracle_val = exhaustive_gathering(toy)
    aco_val = ACOSolver(seed=0).solve(toy, max_iterations=60).value
    print(f"exhaustive optimum {oracle_val:.1f}s, ACO finds {aco_val:.1f}s")


if __name__ == "__main__":
    main()
