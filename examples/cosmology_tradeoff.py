"""Exploring the availability / accuracy / overhead trade-off for NYX.

Sweeps the storage-overhead budget (omega) for a cosmology field and
compares RAPIDS's optimised configurations against data duplication and
plain erasure coding at paper scale (16 TB object, 16 systems,
p = 0.01) — the Fig. 2 analysis as a reusable script.

Run:  python examples/cosmology_tradeoff.py
"""

import numpy as np

from repro.core import (
    DuplicationMethod,
    FTProblem,
    PlainECMethod,
    heuristic,
)
from repro.datasets import get_object
from repro.refactor import Refactorer

N, P = 16, 0.01
TB = 1024**4


def main() -> None:
    obj = get_object("NYX:temperature")
    field = obj.proxy((49, 49, 49))
    refactored = Refactorer(4, num_planes=22).refactor(field)

    # Scale the measured level-size fractions to the 16 TB object.
    sizes = tuple(s / field.nbytes * obj.paper_bytes for s in refactored.sizes)
    errors = tuple(refactored.errors)
    print(f"{obj.full_name}: paper size {obj.paper_bytes / TB:.1f} TB, "
          f"measured errors {[f'{e:.1e}' for e in errors]}")

    print("\n--- RAPIDS: optimal configuration per overhead budget ---")
    print("omega   m_j            expected error   achieved overhead")
    for omega in (0.05, 0.10, 0.20, 0.35, 0.50):
        problem = FTProblem(
            n=N, p=P, sizes=sizes, errors=errors,
            original_size=obj.paper_bytes, omega=omega,
        )
        try:
            sol = heuristic(problem)
        except ValueError:
            print(f"{omega:.2f}   infeasible (budget below the minimal "
                  f"m=[{len(sizes)}..1] ladder)")
            continue
        print(f"{omega:.2f}   {str(sol.ms):14s} {sol.expected_error:.3e}"
              f"        {sol.overhead:.3f}")

    print("\n--- baselines at comparable availability ---")
    bw = np.full(N, 1e9)
    for method in (DuplicationMethod(2), DuplicationMethod(3)):
        rep = method.prepare(obj.paper_bytes, bw, p=P)
        print(f"DP x{method.replicas}: expected error {rep.expected_error:.3e}, "
              f"overhead {rep.storage_overhead:.2f}")
    for m in (2, 3, 4):
        method = PlainECMethod(N - m, m)
        rep = method.prepare(obj.paper_bytes, bw, p=P)
        print(f"EC({N - m}+{m}): expected error {rep.expected_error:.3e}, "
              f"overhead {rep.storage_overhead:.3f}")

    print(
        "\nReading the table: RAPIDS at omega=0.10 already beats EC(13+3)'s"
        "\nexpected error while using less than half its storage overhead —"
        "\nthe Fig. 2 result."
    )


if __name__ == "__main__":
    main()
