"""Planning protection for a long-running campaign.

Works backwards from requirements, the way a facility operator would:

1. "analyses need expected error <= 1e-5 and blackout probability <=
   1e-9" — the planner sweeps overhead budgets and returns the cheapest
   fault-tolerance configuration meeting both;
2. the chosen configuration is stress-tested with a Monte Carlo check of
   the analytic model and a year-long campaign simulation with
   persistent (Markov) outages;
3. a whole archive of snapshots is ingested under that configuration,
   two disks are lost, and the archive repairs itself.

Run:  python examples/campaign_planning.py
"""

import tempfile

import numpy as np

from repro.core import RAPIDS, Archive, ProtectionPlanner, ProtectionRequirement
from repro.datasets import get_object
from repro.metadata import MetadataCatalog
from repro.refactor import Refactorer
from repro.sim import CampaignConfig, run_campaign, simulate_expected_error
from repro.storage import StorageCluster
from repro.transfer import paper_bandwidth_profile

N, P = 16, 0.01


def main() -> None:
    # --- profile the data, then plan ------------------------------------
    obj = get_object("SCALE:T")
    proxy = obj.proxy((49, 49, 49))
    refactored = Refactorer(4, num_planes=22).refactor(proxy)
    sizes = [s / proxy.nbytes * obj.paper_bytes for s in refactored.sizes]

    planner = ProtectionPlanner(N, P, sizes, refactored.errors, obj.paper_bytes)
    print("overhead-vs-quality frontier:")
    for pt in planner.frontier():
        print(
            f"  omega<={pt.omega:.2f}: m={pt.solution.ms} "
            f"E[err]={pt.solution.expected_error:.2e} "
            f"P[blackout]={pt.blackout_probability:.1e} "
            f"overhead={pt.solution.overhead:.3f}"
        )

    req = ProtectionRequirement(
        max_expected_error=1e-5, max_blackout_probability=1e-9
    )
    choice = planner.recommend(req)
    print(
        f"\nrecommended: m = {choice.solution.ms} at overhead "
        f"{choice.solution.overhead:.3f} "
        f"(E[err] {choice.solution.expected_error:.2e}, "
        f"P[blackout] {choice.blackout_probability:.1e})"
    )

    # --- validate the analytic model behind the choice ---------------------
    mc = simulate_expected_error(
        N, 0.05, choice.solution.ms, list(refactored.errors),
        trials=100_000, seed=1,
    )
    print(
        f"Monte Carlo check at p=0.05: analytic {mc.analytic:.3e}, "
        f"empirical {mc.empirical:.3e} (z = {mc.z_score:+.2f})"
    )

    # --- campaign simulation with persistent outages -------------------------
    cfg = CampaignConfig(
        n=N, p_fail=0.001, p_repair=0.099,  # steady state p = 0.01
        ms=tuple(choice.solution.ms), errors=tuple(refactored.errors),
        epochs=50_000, requests_per_epoch=1,
    )
    stats = run_campaign(cfg, seed=2)
    print(
        f"50k-epoch campaign: availability {stats.availability:.6f}, "
        f"full accuracy {stats.full_accuracy_fraction:.4f}, "
        f"mean error {stats.mean_error:.2e}, "
        f"worst concurrent outages {stats.max_concurrent_failures}"
    )

    # --- operate an archive under the plan ------------------------------------
    cluster = StorageCluster(paper_bandwidth_profile(N))
    with tempfile.TemporaryDirectory() as tmp:
        with MetadataCatalog(f"{tmp}/meta") as catalog:
            rapids = RAPIDS(
                cluster, catalog, refactorer=Refactorer(4, num_planes=22),
                omega=choice.omega,
            )
            archive = Archive(rapids)
            snapshots = {
                f"scale:T.{i:03d}": obj.proxy((33, 33, 33), seed=i)
                for i in range(4)
            }
            archive.ingest(snapshots)
            print(
                f"\ningested {len(snapshots)} snapshots, archive overhead "
                f"{archive.storage_overhead():.3f}"
            )
            # lose two disks, repair, verify health
            for sid in (3, 11):
                for frag in list(cluster[sid]._store.values()):
                    cluster[sid].delete(*frag.key)
            before = archive.health()
            rebuilt = archive.repair()
            after = archive.health()
            print(
                f"disk loss on 2 systems: {sum(o.fragments_lost for o in before.objects)} "
                f"fragments lost, {rebuilt} rebuilt, "
                f"{after.fully_healthy}/{after.total} objects fully healthy"
            )


if __name__ == "__main__":
    main()
