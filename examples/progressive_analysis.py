"""Error-controlled progressive analysis: fetch only what the task needs.

A visualization pass can tolerate percent-level error; a derived-
quantity computation needs much tighter accuracy.  With RAPIDS, both
read the *same* stored object but gather different prefixes of its
hierarchy — the error-controlled retrieval pMGARD enables (§2.2).

This example:

1. refactors a cosmology field and prints its retrieval frontier
   (bytes vs error);
2. answers "how many bytes does a 1% analysis need?" vs full accuracy;
3. runs both restores through the pipeline with ``target_error`` and
   compares gathered bytes and simulated WAN latency.

Run:  python examples/progressive_analysis.py
"""

import tempfile

from repro import RAPIDS, MetadataCatalog, StorageCluster, relative_linf_error
from repro.datasets import nyx_velocity
from repro.refactor import Refactorer, RetrievalPlan, components_for_error
from repro.transfer import paper_bandwidth_profile


def main() -> None:
    data = nyx_velocity((49, 49, 49))
    refactorer = Refactorer(4, num_planes=24)
    obj = refactorer.refactor(data)

    plan = RetrievalPlan.for_object(obj)
    print("retrieval frontier (cumulative bytes -> rel. L-inf error):")
    for nbytes, err in plan.points:
        print(f"  {nbytes:>8d} B   {err:.3e}")

    for target in (1e-1, 1e-2, 1e-3):
        try:
            j = components_for_error(obj, target)
        except ValueError:
            print(f"target {target:.0e}: unreachable at this plane budget")
            continue
        saved = plan.savings_vs_full(target)
        print(
            f"target {target:.0e}: {j} component(s), "
            f"{plan.budget_for_error(target)} B "
            f"({saved:.0%} of retrieval bytes saved)"
        )

    # End to end through the pipeline.
    cluster = StorageCluster(paper_bandwidth_profile(16))
    with tempfile.TemporaryDirectory() as tmp:
        with MetadataCatalog(f"{tmp}/meta") as catalog:
            rapids = RAPIDS(cluster, catalog, refactorer=refactorer, omega=0.3)
            prep = rapids.prepare("nyx:velocity_x", data)

            quick = rapids.restore(
                "nyx:velocity_x", strategy="naive", target_error=1e-1
            )
            full = rapids.restore("nyx:velocity_x", strategy="naive")
            err_quick = relative_linf_error(data, quick.data)
            err_full = relative_linf_error(data, full.data)
            print(
                f"\nquick-look restore: {quick.levels_used}/4 levels, "
                f"error {err_quick:.2e}, "
                f"simulated gather {quick.gathering_latency * 1e3:.2f} ms"
            )
            print(
                f"full restore:       {full.levels_used}/4 levels, "
                f"error {err_full:.2e}, "
                f"simulated gather {full.gathering_latency * 1e3:.2f} ms"
            )
            speedup = full.gathering_latency / max(quick.gathering_latency, 1e-12)
            print(f"quick-look gathers {speedup:.0f}x faster")


if __name__ == "__main__":
    main()
