"""Riding out a facility-wide maintenance window without going dark.

Scheduled maintenance is announced in advance, and an operator can use
that: stage the payloads of at-risk hierarchy levels on surviving
systems *before* the window, serve full-accuracy restores *during* it,
and drop the staging copies after.  Staging cost is tiny for the top
levels — exactly the levels the RAPIDS hierarchy makes most valuable.

Run:  python examples/maintenance_staging.py
"""

import tempfile

import numpy as np

from repro.core import RAPIDS, Archive, ProactiveOperator
from repro.datasets import nyx_temperature, scale_pressure
from repro.metadata import MetadataCatalog
from repro.refactor import relative_linf_error
from repro.storage import MaintenanceSchedule, StorageCluster
from repro.transfer import paper_bandwidth_profile


def main() -> None:
    cluster = StorageCluster(paper_bandwidth_profile(16))
    with tempfile.TemporaryDirectory() as tmp:
        with MetadataCatalog(f"{tmp}/meta") as catalog:
            rapids = RAPIDS(cluster, catalog, omega=0.25)
            archive = Archive(rapids)
            objects = {
                "nyx:T": nyx_temperature((33, 33, 33)),
                "scale:P": scale_pressure((33, 33, 33)),
            }
            reports = archive.ingest(objects)
            ms = reports["nyx:T"].ft_config
            print(f"archive protected with m = {ms}")

            # The facility announces: systems 0..m_l+1 down next Tuesday.
            n_down = ms[-1] + 2
            sched = MaintenanceSchedule()
            for sid in range(n_down):
                sched.add_window(sid, 100.0, 200.0)
            op = ProactiveOperator(archive, sched)
            risky = op.at_risk(100.0, 200.0)
            print(f"window takes {n_down} systems down -> "
                  f"{len(risky)} (object, level) pairs at risk: {risky}")

            created = op.stage_for_window(100.0, 200.0)
            staged_bytes = sum(c.nbytes for c in created)
            total_bytes = archive.stored_bytes()
            print(f"staged {len(created)} level payload(s), "
                  f"{staged_bytes} B ({staged_bytes / total_bytes:.1%} of "
                  "archive bytes)")

            # Tuesday arrives.
            cluster.fail(range(n_down))
            for name, data in objects.items():
                plain = rapids.restore(name, strategy="naive")
                staged, levels = op.restore_with_staging(name)
                err_plain = (
                    relative_linf_error(data, plain.data)
                    if plain.data is not None else 1.0
                )
                err_staged = relative_linf_error(data, staged)
                print(
                    f"  {name}: without staging {plain.levels_used}/4 levels "
                    f"(err {err_plain:.1e}); with staging {levels}/4 "
                    f"(err {err_staged:.1e})"
                )

            # Window over: systems return, staging copies are dropped.
            cluster.restore_all()
            dropped = op.unstage()
            print(f"window over: dropped {dropped} staging copies")


if __name__ == "__main__":
    main()
