"""Archiving hurricane-simulation output with self-describing fragments.

The scenario the paper's introduction motivates: a climate campaign
produces pressure and temperature fields that must stay accessible
through storage-system outages and scheduled maintenance windows.  This
example exercises the file-backed path of the pipeline:

* fragments are written as self-describing container files (the
  HDF5/ADIOS substitute), so every fragment file carries the object
  name, level, and EC parameters it belongs to;
* the metadata catalog persists across "sessions" (process restarts);
* a maintenance schedule takes systems down at different times and the
  restore quality is reported per window.

Run:  python examples/climate_archival.py
"""

import tempfile
from pathlib import Path

from repro import RAPIDS, MetadataCatalog, StorageCluster, relative_linf_error
from repro.datasets import hurricane_pressure, hurricane_temperature
from repro.formats import read_fragment_file
from repro.storage import MaintenanceSchedule
from repro.transfer import paper_bandwidth_profile

OBJECTS = {
    "hurricane:Pf48": hurricane_pressure((33, 65, 65)),
    "hurricane:TCf48": hurricane_temperature((33, 65, 65)),
}


def main() -> None:
    bw = paper_bandwidth_profile(16)
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        cluster = StorageCluster(bw)

        # --- archival session -------------------------------------------
        with MetadataCatalog(tmp / "metadata") as catalog:
            rapids = RAPIDS(cluster, catalog, omega=0.3)
            for name, field in OBJECTS.items():
                rep = rapids.prepare(name, field, fragment_dir=tmp / "fragments")
                print(
                    f"archived {name}: m={rep.ft_config}, "
                    f"overhead {rep.storage_overhead:.3f}, "
                    f"distribution latency {rep.distribution_latency:.1f}s "
                    f"(simulated WAN)"
                )

        # Fragment files are self-describing: any file identifies itself.
        sample = sorted((tmp / "fragments").glob("*.rdc"))[0]
        attrs, payload = read_fragment_file(sample)
        print(
            f"\nself-describing fragment {sample.name}: object="
            f"{attrs['object_name']!r} level={attrs['level']} "
            f"index={attrs['index']} (k={attrs['k']}, m={attrs['m']}), "
            f"{len(payload)} bytes"
        )

        # --- maintenance calendar ----------------------------------------
        sched = MaintenanceSchedule()
        sched.add_window(0, 0.0, 48.0)    # site 0 down for two days
        sched.add_window(1, 24.0, 72.0)   # overlapping window at site 1
        sched.add_window(2, 24.0, 30.0)
        sched.add_window(7, 60.0, 96.0)
        # A coordinated facility upgrade takes five sites down at once —
        # more than the lower levels tolerate, so quality degrades
        # gracefully instead of the data going dark.
        for sid in (3, 4, 5, 6, 8):
            sched.add_window(sid, 25.0, 29.0)

        # --- analysis sessions reopen the catalog from disk ---------------
        with MetadataCatalog(tmp / "metadata") as catalog:
            rapids = RAPIDS(cluster, catalog, omega=0.3)
            print("\nhour  down systems      object           levels  rel.err")
            for hour in (12.0, 26.0, 66.0):
                down = sched.down_at(hour)
                cluster.restore_all()
                cluster.fail(down)
                for name, field in OBJECTS.items():
                    res = rapids.restore(name, strategy="naive")
                    err = (
                        relative_linf_error(field, res.data)
                        if res.data is not None
                        else 1.0
                    )
                    print(
                        f"{hour:4.0f}  {str(down):16s} {name:16s} "
                        f"{res.levels_used}/4     {err:.2e}"
                    )


if __name__ == "__main__":
    main()
