"""Repairing lost fragments onto replacement storage (§4.2's repair path).

When a fragment is permanently lost (disk failure rather than a
transient outage), RAPIDS rebuilds it from the surviving fragments via
erasure decoding and re-places it on a new system, updating the
fragment's location in the metadata catalog.  This example:

1. prepares an object across 16 systems;
2. permanently destroys the fragments on two systems;
3. repairs every lost fragment onto spare systems and relocates the
   metadata;
4. proves a later restore works even after *additional* outages that
   would have exceeded the original tolerance had the repair not run.

Run:  python examples/fragment_repair.py
"""

import tempfile

import numpy as np

from repro import RAPIDS, MetadataCatalog, StorageCluster, relative_linf_error
from repro.ec import ECConfig
from repro.datasets import scale_pressure
from repro.storage import StoredFragment
from repro.transfer import paper_bandwidth_profile


def main() -> None:
    data = scale_pressure((33, 33, 33))
    cluster = StorageCluster(paper_bandwidth_profile(16))
    with tempfile.TemporaryDirectory() as tmp:
        catalog = MetadataCatalog(f"{tmp}/meta")
        rapids = RAPIDS(cluster, catalog, omega=0.3)
        prep = rapids.prepare("scale:PRES", data)
        ms = prep.ft_config
        print(f"prepared with m = {ms}")

        # Two systems lose their disks: fragments gone for good.
        lost_systems = [2, 5]
        for sid in lost_systems:
            for frag in list(cluster[sid]._store.values()):
                cluster[sid].delete(*frag.key)
        print(f"destroyed all fragments on systems {lost_systems}")

        # Repair: rebuild each lost fragment from any k survivors and
        # re-place it on the same systems (now with fresh disks).
        rec = catalog.get_object("scale:PRES")
        repaired = 0
        for level in range(rec.num_levels):
            cfg = ECConfig(cluster.n, rec.ft_config[level])
            available = {
                idx: np.frombuffer(
                    cluster.fetch("scale:PRES", level, idx).payload, np.uint8
                )
                for idx in sorted(cluster.locate("scale:PRES", level))[: cfg.k]
            }
            for sid in lost_systems:
                rebuilt = rapids.codec.repair_fragment(cfg, available, sid)
                cluster[sid].put(
                    StoredFragment(
                        "scale:PRES", level, sid, rebuilt.nbytes,
                        rebuilt.tobytes(),
                    )
                )
                catalog.relocate_fragment("scale:PRES", level, sid, sid)
                repaired += 1
        print(f"repaired {repaired} fragments via erasure decoding")

        # Now additional outages happen.  Combined with the two lost
        # disks this would have exceeded the bottom level's tolerance —
        # but the repair restored full redundancy.
        extra = [0, 1, 9]
        cluster.fail(extra)
        res = rapids.restore("scale:PRES", strategy="naive")
        err = relative_linf_error(data, res.data)
        print(
            f"after {len(extra)} further outages: {res.levels_used}/"
            f"{rec.num_levels} levels restored, rel. error {err:.2e}"
        )
        assert res.levels_used == rec.num_levels
        catalog.close()


if __name__ == "__main__":
    main()
