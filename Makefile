# Convenience targets for the RAPIDS reproduction.

PYTHON ?= python

.PHONY: install test test-sanitized lint bench bench-assert bench-smoke bench-refactor examples tables figures all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Tier-1 tests with the runtime thread sanitizer shadow-tracking every
# pooled thread_map callable (see repro/analysis/sanitizer.py).
test-sanitized:
	RAPIDS_THREAD_SANITIZER=1 $(PYTHON) -m pytest tests/

# rapidslint: project-specific static analysis (rules RPD101-RPD110).
# Fails on any non-suppressed finding; suppressions need justifications.
lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli lint src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-assert:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable

# Fast kernel regression checks at reduced sizes: seed vs current
# implementations, byte-identical output verified, BENCH_kernels.json
# and BENCH_refactor.json emitted.
bench-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_kernels.py --smoke
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_refactor.py --smoke

# Full refactoring-pipeline benchmark (64 MiB array; asserts the >= 2x
# refactor+reconstruct speedup and the sublinear measure_errors cost).
bench-refactor:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_refactor.py

examples:
	for ex in examples/*.py; do $(PYTHON) $$ex; done

# Regenerate every paper table/figure as text reports.
tables:
	$(PYTHON) benchmarks/run_all.py

all: lint test bench-assert tables

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
