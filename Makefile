# Convenience targets for the RAPIDS reproduction.

PYTHON ?= python

.PHONY: install test bench bench-assert bench-smoke examples tables figures all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-assert:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable

# Fast EC-kernel regression check: seed vs planned kernels at reduced
# sizes, byte-identical output verified, BENCH_kernels.json emitted.
bench-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_kernels.py --smoke

examples:
	for ex in examples/*.py; do $(PYTHON) $$ex; done

# Regenerate every paper table/figure as text reports.
tables:
	$(PYTHON) benchmarks/run_all.py

all: test bench-assert tables

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
