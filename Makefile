# Convenience targets for the RAPIDS reproduction.

PYTHON ?= python

.PHONY: install test test-sanitized lint lint-full bench-lint chaos chaos-soak scrub-smoke serve-smoke scenarios bench bench-assert bench-smoke bench-refactor bench-procpipe examples tables figures all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Tier-1 tests with the runtime thread sanitizer shadow-tracking every
# pooled thread_map callable (see repro/analysis/sanitizer.py).
test-sanitized:
	RAPIDS_THREAD_SANITIZER=1 $(PYTHON) -m pytest tests/

# rapidslint: project-specific static analysis (rules RPD101-RPD117,
# including the whole-program call-graph/CFG rules).  Fails on any
# non-suppressed finding; suppressions need justifications.  `lint`
# goes through the content-hash incremental cache
# (.rapidslint-cache.json); `lint-full` recomputes everything.
lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli lint src tests benchmarks examples

lint-full:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli lint --no-cache src tests benchmarks examples

# Cache performance contract: incremental re-lint of a one-file change
# must finish in < 25% of the cold full-tree wall time.
bench-lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_lint.py

# One seeded chaos round (RAPIDS_CHAOS_SEED, default 7) plus the
# fault-injection test files, thread sanitizer on — what CI's chaos job
# runs per seed.
chaos:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} RAPIDS_THREAD_SANITIZER=1 \
		$(PYTHON) -m pytest tests/test_chaos.py \
		tests/test_kvstore_stateful.py tests/test_integration_chaos.py
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli \
		chaos --seed $${RAPIDS_CHAOS_SEED:-7} --verify-replay || test $$? -eq 2

# End-to-end self-healing smoke (thread sanitizer on): prepare a
# file-backed workspace, inflict at-rest damage plus an outage from a
# crafted plan (one outage + bit rot + a deletion stays inside every
# level's parity budget m_j, so the archive is heal-able by
# construction — a random high-intensity plan routinely exceeds the
# deepest level's m and is unrecoverable by design), heal it
# (rapids scrub --repair must leave the archive healthy), then prove a
# clean follow-up scrub and a full restore.  RAPIDS_CHAOS_SEED
# (default 7) seeds the plan's probability draws.
SCRUB_WS := scrub-smoke-ws
scrub-smoke: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
scrub-smoke: export RAPIDS_THREAD_SANITIZER := 1
scrub-smoke:
	rm -rf $(SCRUB_WS)
	$(PYTHON) -c "import numpy as np; rng = np.random.default_rng(7); \
		np.save('$(SCRUB_WS)-field.npy', \
		rng.standard_normal((33, 33, 33)).astype(np.float32))"
	$(PYTHON) -c "from repro.chaos import FaultPlan, FaultSpec; \
		FaultPlan(seed=int('$${RAPIDS_CHAOS_SEED:-7}'), specs=( \
		FaultSpec(site='system.outage', effect='outage', \
			where={'system_id': 5}), \
		FaultSpec(site='storage.read', effect='corrupt', \
			where={'system_id': 3}), \
		FaultSpec(site='storage.read', effect='error', \
			where={'system_id': 7, 'level': 0}), \
		)).save('$(SCRUB_WS)-plan.json')"
	$(PYTHON) -m repro.cli prepare $(SCRUB_WS)-field.npy smoke:field \
		--workspace $(SCRUB_WS)
	$(PYTHON) -m repro.cli chaos --plan $(SCRUB_WS)-plan.json \
		--workspace $(SCRUB_WS)
	$(PYTHON) -m repro.cli scrub --workspace $(SCRUB_WS) --repair
	$(PYTHON) -m repro.cli scrub --workspace $(SCRUB_WS) --report json
	$(PYTHON) -m repro.cli restore smoke:field $(SCRUB_WS)-out.npy \
		--workspace $(SCRUB_WS)
	rm -rf $(SCRUB_WS) $(SCRUB_WS)-field.npy $(SCRUB_WS)-out.npy \
		$(SCRUB_WS)-plan.json
	@echo "scrub-smoke: damaged, healed, verified clean"

# Archive-service smoke: a seeded hog-vs-steady drive round with one
# backend outage (exit 4 = cross-tenant starvation, 5 = unclean
# shutdown), one threaded round against the started worker pool, then
# the service benchmark in smoke mode (replay-verified per mix; writes
# BENCH_service.json).  RAPIDS_CHAOS_SEED (default 7) seeds the round.
serve-smoke: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
serve-smoke:
	$(PYTHON) -m repro.cli serve --drive --mix hog --outage 1 \
		--requests 60 --seed $${RAPIDS_CHAOS_SEED:-7} \
		--emit-report serve-smoke-report.json
	$(PYTHON) -m repro.cli serve --drive --threaded --mix balanced \
		--requests 40 --seed $${RAPIDS_CHAOS_SEED:-7}
	$(PYTHON) benchmarks/bench_service.py --smoke \
		--seed $${RAPIDS_CHAOS_SEED:-7}
	@echo "serve-smoke: no starvation, clean shutdown, replay verified"

# Online-reconfiguration scenario suite at reduced scale: the four
# seeded chaos campaigns (region loss, bandwidth drift, flash crowd,
# correlated failures) with replay verification and the safety-breach
# gate.  Exit 3 = replay divergence, exit 4 = breach; both fail the
# target.  RAPIDS_CHAOS_SEED (default 7) seeds every campaign;
# trajectory artifacts land in scenario-artifacts/.
scenarios:
	rm -rf scenario-artifacts
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli \
		scenarios --epochs 24 --seed $${RAPIDS_CHAOS_SEED:-7} \
		--verify-replay --outdir scenario-artifacts
	@echo "scenarios: four campaigns replayed byte-identical, no breaches"

# Time-boxed randomised soak (RAPIDS_CHAOS_SOAK_SECONDS, default 60).
# Opt-in only: the soak is excluded from tier-1 by its env-var gate.
chaos-soak:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} RAPIDS_CHAOS_SOAK=1 \
		$(PYTHON) -m pytest tests/test_chaos.py::test_chaos_soak -v

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-assert:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable

# Fast kernel regression checks at reduced sizes: seed vs current
# implementations, byte-identical output verified, BENCH_kernels.json,
# BENCH_refactor.json and BENCH_procpipe.json emitted.
bench-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_kernels.py --smoke
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_refactor.py --smoke
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_procpipe.py --smoke

# Full refactoring-pipeline benchmark (64 MiB array; asserts the >= 2x
# refactor+reconstruct speedup and the sublinear measure_errors cost).
bench-refactor:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_refactor.py

# Process-parallel streaming pipeline benchmark (64 MiB float64):
# verifies pooled output bit-identical to serial, then asserts the
# >= 2x end-to-end prepare speedup over the threaded path and the
# O(tiles-in-flight) peak-RSS bound.  CI passes BENCH_ARGS=--smoke to
# check identity and schedule sanity only.
bench-procpipe:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_procpipe.py $(BENCH_ARGS)

examples:
	for ex in examples/*.py; do $(PYTHON) $$ex; done

# Regenerate every paper table/figure as text reports.
tables:
	$(PYTHON) benchmarks/run_all.py

all: lint test bench-assert tables

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
