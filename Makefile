# Convenience targets for the RAPIDS reproduction.

PYTHON ?= python

.PHONY: install test test-sanitized lint chaos chaos-soak bench bench-assert bench-smoke bench-refactor examples tables figures all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Tier-1 tests with the runtime thread sanitizer shadow-tracking every
# pooled thread_map callable (see repro/analysis/sanitizer.py).
test-sanitized:
	RAPIDS_THREAD_SANITIZER=1 $(PYTHON) -m pytest tests/

# rapidslint: project-specific static analysis (rules RPD101-RPD110).
# Fails on any non-suppressed finding; suppressions need justifications.
lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli lint src tests benchmarks examples

# One seeded chaos round (RAPIDS_CHAOS_SEED, default 7) plus the
# fault-injection test files, thread sanitizer on — what CI's chaos job
# runs per seed.
chaos:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} RAPIDS_THREAD_SANITIZER=1 \
		$(PYTHON) -m pytest tests/test_chaos.py \
		tests/test_kvstore_stateful.py tests/test_integration_chaos.py
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli \
		chaos --seed $${RAPIDS_CHAOS_SEED:-7} --verify-replay || test $$? -eq 2

# Time-boxed randomised soak (RAPIDS_CHAOS_SOAK_SECONDS, default 60).
# Opt-in only: the soak is excluded from tier-1 by its env-var gate.
chaos-soak:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} RAPIDS_CHAOS_SOAK=1 \
		$(PYTHON) -m pytest tests/test_chaos.py::test_chaos_soak -v

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-assert:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable

# Fast kernel regression checks at reduced sizes: seed vs current
# implementations, byte-identical output verified, BENCH_kernels.json
# and BENCH_refactor.json emitted.
bench-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_kernels.py --smoke
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_refactor.py --smoke

# Full refactoring-pipeline benchmark (64 MiB array; asserts the >= 2x
# refactor+reconstruct speedup and the sublinear measure_errors cost).
bench-refactor:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_refactor.py

examples:
	for ex in examples/*.py; do $(PYTHON) $$ex; done

# Regenerate every paper table/figure as text reports.
tables:
	$(PYTHON) benchmarks/run_all.py

all: lint test bench-assert tables

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
