"""Synthetic scientific datasets and the Table 2 catalog."""

from .catalog import TABLE2, DataObject, get_object, object_names
from .synthetic import (
    gaussian_random_field,
    hurricane_pressure,
    hurricane_temperature,
    nyx_temperature,
    nyx_velocity,
    scale_pressure,
    scale_temperature,
)
from .timeseries import advected_sequence, decaying_turbulence, snapshot_stack

__all__ = [
    "TABLE2",
    "DataObject",
    "get_object",
    "object_names",
    "gaussian_random_field",
    "nyx_temperature",
    "nyx_velocity",
    "scale_pressure",
    "scale_temperature",
    "hurricane_pressure",
    "hurricane_temperature",
    "advected_sequence",
    "decaying_turbulence",
    "snapshot_stack",
]
