"""The Table 2 dataset catalog.

Registers the six evaluation data objects with their *paper-scale* byte
sizes (used verbatim by the transfer/availability math, which only needs
byte counts) and a local proxy generator producing a laptop-scale
float32 field with the matching spectral character (used wherever real
array contents are required: refactoring, EC round trips, accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import synthetic

__all__ = ["DataObject", "TABLE2", "get_object", "object_names"]

TB = 1024**4


@dataclass(frozen=True)
class DataObject:
    """One evaluation data object (a row of Table 2)."""

    dataset: str
    object_name: str
    paper_bytes: float
    generator: Callable[..., np.ndarray]
    per_core_bytes: float

    @property
    def full_name(self) -> str:
        return f"{self.dataset}:{self.object_name}"

    def proxy(self, shape=(64, 64, 64), *, seed: int | None = None) -> np.ndarray:
        """A local-scale field with this object's character (seeded)."""
        kwargs = {} if seed is None else {"seed": seed}
        return self.generator(shape, **kwargs)


#: The six objects of Table 2 with their reported total sizes.  Per-core
#: sizes follow the paper's weak-scaling setup (32,768 cores; NYX is
#: quoted at 512 MB/core, the others scale proportionally).
TABLE2: list[DataObject] = [
    DataObject("NYX", "temperature", 16 * TB, synthetic.nyx_temperature, 512 * 1024**2),
    DataObject("NYX", "velocity_x", 16 * TB, synthetic.nyx_velocity, 512 * 1024**2),
    DataObject("SCALE", "PRES", 16.82 * TB, synthetic.scale_pressure, 538.2 * 1024**2),
    DataObject("SCALE", "T", 16.82 * TB, synthetic.scale_temperature, 538.2 * 1024**2),
    DataObject("hurricane", "Pf48.bin", 2.98 * TB, synthetic.hurricane_pressure, 95.4 * 1024**2),
    DataObject("hurricane", "TCf48.bin", 2.98 * TB, synthetic.hurricane_temperature, 95.4 * 1024**2),
]

_BY_NAME = {obj.full_name: obj for obj in TABLE2}


def object_names() -> list[str]:
    """Full names of the six Table 2 objects, in paper order."""
    return [obj.full_name for obj in TABLE2]


def get_object(full_name: str) -> DataObject:
    """Look up a Table 2 object by ``dataset:object`` name."""
    try:
        return _BY_NAME[full_name]
    except KeyError:
        raise KeyError(
            f"unknown data object {full_name!r}; known: {object_names()}"
        ) from None
