"""Time-evolving synthetic fields (simulation snapshot sequences).

Campaigns store *sequences* of snapshots, and the refactorer handles 4-D
(t, z, y, x) arrays exactly like 3-D ones — the time axis is just
another coarsenable dimension, and temporal smoothness compresses the
same way spatial smoothness does.  These generators produce physically
flavoured evolution so time-correlation is realistic:

* :func:`advected_sequence` — a base field advected along a constant
  velocity with gradual decorrelation (frozen-turbulence flavour);
* :func:`decaying_turbulence` — energy decays while small scales fade
  first (Kolmogorov-ish spin-down);
* :func:`snapshot_stack` — stack any per-seed generator into (T, ...)
  with per-step perturbations.
"""

from __future__ import annotations

import numpy as np

from .synthetic import gaussian_random_field

__all__ = ["advected_sequence", "decaying_turbulence", "snapshot_stack"]


def advected_sequence(
    steps: int,
    shape: tuple[int, ...] = (33, 33, 33),
    *,
    velocity: tuple[float, ...] | None = None,
    decorrelation: float = 0.02,
    slope: float = 4.0,
    seed: int = 0,
) -> np.ndarray:
    """A field advected by a uniform velocity, slowly decorrelating.

    Returns a float32 array of shape ``(steps, *shape)``.  ``velocity``
    is in grid cells per step (defaults to ~1 cell/step along the first
    axis); ``decorrelation`` is the fraction of field variance replaced
    by fresh noise each step.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if not 0.0 <= decorrelation < 1.0:
        raise ValueError("decorrelation must be in [0, 1)")
    if velocity is None:
        velocity = (1.0,) + (0.0,) * (len(shape) - 1)
    if len(velocity) != len(shape):
        raise ValueError("velocity must match the field dimensionality")
    rng = np.random.default_rng(seed)
    field = gaussian_random_field(shape, slope=slope, seed=seed, dtype=np.float64)
    out = np.empty((steps,) + tuple(shape), dtype=np.float32)
    offset = np.zeros(len(shape))
    for t in range(steps):
        out[t] = field.astype(np.float32)
        offset += np.asarray(velocity)
        shift = tuple(int(round(o)) for o in offset)
        advected = np.roll(field, shift, axis=tuple(range(len(shape))))
        offset -= np.round(offset)
        if decorrelation > 0:
            fresh = gaussian_random_field(
                shape, slope=slope, seed=seed + 1000 + t, dtype=np.float64
            )
            advected = (
                np.sqrt(1 - decorrelation) * advected
                + np.sqrt(decorrelation) * fresh
            )
        field = advected
    return out


def decaying_turbulence(
    steps: int,
    shape: tuple[int, ...] = (33, 33, 33),
    *,
    decay_rate: float = 0.1,
    small_scale_bias: float = 2.0,
    seed: int = 0,
) -> np.ndarray:
    """Turbulence spin-down: total energy decays, small scales fastest.

    Implemented in spectral space: mode amplitudes are damped by
    ``exp(-decay_rate * (1 + bias * k / k_max) * t)``.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if decay_rate < 0 or small_scale_bias < 0:
        raise ValueError("decay_rate and small_scale_bias must be >= 0")
    base = gaussian_random_field(shape, slope=3.0, seed=seed, dtype=np.float64)
    spec0 = np.fft.rfftn(base)
    grids = np.meshgrid(
        *[np.fft.fftfreq(n) for n in shape[:-1]],
        np.fft.rfftfreq(shape[-1]),
        indexing="ij",
    )
    k = np.sqrt(sum(g**2 for g in grids))
    k_max = float(k.max()) or 1.0
    out = np.empty((steps,) + tuple(shape), dtype=np.float32)
    axes = tuple(range(len(shape)))
    for t in range(steps):
        damp = np.exp(-decay_rate * (1.0 + small_scale_bias * k / k_max) * t)
        out[t] = np.fft.irfftn(spec0 * damp, s=shape, axes=axes).astype(
            np.float32
        )
    return out


def snapshot_stack(
    generator,
    steps: int,
    shape: tuple[int, ...] = (33, 33, 33),
    *,
    base_seed: int = 0,
) -> np.ndarray:
    """Stack per-seed snapshots of any named generator into (T, ...)."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    return np.stack(
        [generator(shape, seed=base_seed + t) for t in range(steps)]
    )
