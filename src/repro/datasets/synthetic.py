"""Synthetic scientific datasets (NYX / SCALE-LETKF / Hurricane substitutes).

The real evaluation datasets are multi-terabyte 3-D float32 fields from
cosmology (NYX), weather (SCALE-LETKF) and climate (Hurricane Isabel)
simulations.  What the refactorer cares about is their *spectral
character* — smooth large-scale structure with power-law small-scale
content — so each generator below synthesises a seeded 3-D float32 field
with the qualitative signature of its namesake:

* :func:`gaussian_random_field` — the shared engine: FFT-filtered white
  noise with a ``k**(-slope/2)`` amplitude spectrum.
* :func:`nyx_temperature` / :func:`nyx_velocity` — lognormal-contrast
  cosmological density-like field / smoother velocity component.
* :func:`scale_pressure` / :func:`scale_temperature` — stratified
  atmosphere: strong vertical gradient plus GRF weather perturbations.
* :func:`hurricane_pressure` / :func:`hurricane_temperature` — an
  idealised vortex (pressure minimum, warm core) plus GRF turbulence.

All generators accept ``shape`` and ``seed`` and are deterministic.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gaussian_random_field",
    "nyx_temperature",
    "nyx_velocity",
    "scale_pressure",
    "scale_temperature",
    "hurricane_pressure",
    "hurricane_temperature",
]


def gaussian_random_field(
    shape: tuple[int, ...],
    *,
    slope: float = 3.0,
    seed: int = 0,
    dtype=np.float32,
) -> np.ndarray:
    """Isotropic Gaussian random field with power spectrum ~ k**-slope.

    Unit variance, zero mean.  Larger ``slope`` means smoother fields
    (more energy at large scales).
    """
    if any(n < 2 for n in shape):
        raise ValueError(f"every axis needs >= 2 points, got {shape}")
    if slope < 0:
        raise ValueError("slope must be >= 0")
    rng = np.random.default_rng(seed)
    white = rng.normal(size=shape)
    spec = np.fft.rfftn(white)
    grids = np.meshgrid(
        *[np.fft.fftfreq(n) for n in shape[:-1]],
        np.fft.rfftfreq(shape[-1]),
        indexing="ij",
    )
    k2 = sum(g**2 for g in grids)
    k2[(0,) * len(shape)] = np.inf  # kill the DC mode
    spec *= k2 ** (-slope / 4.0)  # amplitude ~ k**(-slope/2)
    field = np.fft.irfftn(spec, s=shape, axes=tuple(range(len(shape))))
    field -= field.mean()
    std = field.std()
    if std > 0:
        field /= std
    return field.astype(dtype)


def nyx_temperature(shape=(64, 64, 64), *, seed: int = 0) -> np.ndarray:
    """Cosmology-like baryon temperature: lognormal contrast over a GRF.

    Reproduces the heavy-tailed positive field typical of NYX outputs
    (temperature concentrated in collapsed structures).
    """
    base = gaussian_random_field(shape, slope=4.0, seed=seed, dtype=np.float64)
    field = 1e4 * np.exp(0.8 * base)  # Kelvin-ish scale
    return field.astype(np.float32)


def nyx_velocity(shape=(64, 64, 64), *, seed: int = 1) -> np.ndarray:
    """Cosmology-like velocity component: smoother, signed, ~100 km/s."""
    base = gaussian_random_field(shape, slope=4.5, seed=seed, dtype=np.float64)
    return (1e2 * base).astype(np.float32)


def _vertical_profile(shape, surface: float, scale_height_frac: float):
    """Exponential vertical decay along axis 0 (the model-level axis)."""
    z = np.linspace(0.0, 1.0, shape[0])
    profile = surface * np.exp(-z / scale_height_frac)
    return profile[(slice(None),) + (None,) * (len(shape) - 1)]


def scale_pressure(shape=(64, 64, 64), *, seed: int = 2) -> np.ndarray:
    """Weather-model pressure: exponential stratification + perturbations."""
    pert = gaussian_random_field(shape, slope=4.0, seed=seed, dtype=np.float64)
    field = _vertical_profile(shape, 1.013e5, 0.45) * (1.0 + 0.02 * pert)
    return field.astype(np.float32)


def scale_temperature(shape=(64, 64, 64), *, seed: int = 3) -> np.ndarray:
    """Weather-model temperature: lapse-rate profile + perturbations."""
    z = np.linspace(0.0, 1.0, shape[0])
    profile = 288.0 - 75.0 * z  # ~lapse to the model top
    pert = gaussian_random_field(shape, slope=4.0, seed=seed, dtype=np.float64)
    field = profile[(slice(None),) + (None,) * (len(shape) - 1)] + 3.0 * pert
    return field.astype(np.float32)


def _vortex(shape, *, seed: int, strength: float):
    """A 2-D idealised vortex profile broadcast through the vertical axis."""
    rng = np.random.default_rng(seed)
    ny, nx = shape[-2], shape[-1]
    cy, cx = rng.uniform(0.35, 0.65), rng.uniform(0.35, 0.65)
    y = np.linspace(0, 1, ny)[:, None]
    x = np.linspace(0, 1, nx)[None, :]
    r2 = (y - cy) ** 2 + (x - cx) ** 2
    core = np.exp(-r2 / 0.02)
    decay = np.linspace(1.0, 0.3, shape[0])
    return strength * decay[:, None, None] * core[None, :, :]


def hurricane_pressure(shape=(64, 64, 64), *, seed: int = 4) -> np.ndarray:
    """Hurricane-like pressure: ambient field minus a deep vortex core."""
    pert = gaussian_random_field(shape, slope=4.2, seed=seed, dtype=np.float64)
    field = 1.005e5 + 150.0 * pert - _vortex(shape, seed=seed + 100, strength=6e3)
    return field.astype(np.float32)


def hurricane_temperature(shape=(64, 64, 64), *, seed: int = 5) -> np.ndarray:
    """Hurricane-like temperature: warm-core anomaly over a lapse profile."""
    z = np.linspace(0.0, 1.0, shape[0])
    profile = 300.0 - 70.0 * z
    pert = gaussian_random_field(shape, slope=4.2, seed=seed, dtype=np.float64)
    field = (
        profile[:, None, None]
        + 2.0 * pert
        + _vortex(shape, seed=seed + 100, strength=8.0)
    )
    return field.astype(np.float32)
