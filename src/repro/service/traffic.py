"""Synthetic multi-tenant traffic for the archive service.

Scientific archive traffic is bursty and heavy-tailed: most objects are
small, a few are enormous, and tenants arrive in open-loop bursts that
do not wait for the service.  This module generates such workloads
deterministically from a seed — bounded-Pareto object sizes, weighted
tenant selection, exponential interarrivals — and drives them through an
:class:`~repro.service.frontend.ArchiveService` in two modes:

* :func:`drive_open_loop` — simulated time on a
  :class:`~repro.service.request.ManualClock`.  Arrivals never wait for
  completions; the service "speed" is the pump budget (how many queued
  requests execute per arrival batch), so overload, shedding and
  deadline dynamics replay byte-identically per seed.
* :func:`drive_threaded` — wall-clock open loop against a started
  service, for throughput/latency benchmarking.

Both return a :class:`TrafficReport` with per-tenant latency
percentiles — the numbers ``benchmarks/bench_service.py`` publishes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from .request import Deadline, ServiceRequest, ServiceRejected

__all__ = [
    "TrafficMix",
    "STANDARD_MIXES",
    "synthetic_field",
    "ScheduledRequest",
    "TrafficReport",
    "bounded_pareto",
    "make_schedule",
    "drive_open_loop",
    "drive_threaded",
]


def bounded_pareto(u: float, alpha: float, lo: float, hi: float) -> float:
    """Inverse-CDF draw from a bounded Pareto(alpha) on [lo, hi]."""
    if not 0.0 <= u < 1.0:
        raise ValueError("u must be in [0, 1)")
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    la, ha = lo**alpha, hi**alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def synthetic_field(seed: int, size: int) -> np.ndarray:
    """Deterministic compressible test payload of roughly ``size``
    elements: a separable low-frequency field plus 5% noise, the same
    family of inputs the refactoring tests use.  (Pure white noise is
    *not* representative — it has no decaying wavelet spectrum, so the
    FT optimizer correctly reports it infeasible under omega.)"""
    rng = np.random.default_rng(seed)
    planes = max(16, size // 256)
    shape = (planes, 16, 16)
    axes = [np.linspace(0.0, 1.0, n) for n in shape]
    field = (
        np.sin((2.0 + 3.0 * rng.random()) * np.pi * axes[0])[:, None, None]
        * np.cos((1.0 + 2.0 * rng.random()) * np.pi * axes[1])[None, :, None]
        * np.sin((1.0 + 2.0 * rng.random()) * np.pi * axes[2])[None, None, :]
    )
    return (field + 0.05 * rng.normal(size=shape)).astype(np.float32)


@dataclass(frozen=True)
class TrafficMix:
    """One named tenant mix: who sends how much of what."""

    name: str
    #: tenant -> arrival weight (relative share of requests).
    tenants: dict
    #: Fraction of requests that are restores (the rest are prepares).
    restore_fraction: float = 0.75
    #: Mean open-loop interarrival gap, in service-clock seconds.
    mean_interarrival: float = 0.02
    #: Bounded-Pareto shape/bounds for prepare object *element* counts.
    size_alpha: float = 1.3
    size_lo: int = 1 << 10
    size_hi: int = 1 << 14
    #: Deadline attached to each request (None = no deadline).
    deadline: float | None = 5.0
    #: Fraction of prepares that carry an idempotency key drawn from a
    #: small pool — so duplicates actually occur and coalesce/replay.
    keyed_fraction: float = 0.5
    key_pool: int = 8


#: The named mixes ``rapids serve --drive`` and the service benchmark
#: share.  ``balanced`` is three equal-weight tenants at a moderate
#: rate; ``hog`` is the bulkhead stress — one tenant submitting 8x the
#: traffic of the other, at twice the arrival rate.
STANDARD_MIXES = {
    "balanced": TrafficMix(
        name="balanced",
        tenants={"astro": 1.0, "climate": 1.0, "fusion": 1.0},
        restore_fraction=0.75,
        mean_interarrival=0.02,
    ),
    "hog": TrafficMix(
        name="hog",
        tenants={"hog": 8.0, "steady": 1.0},
        restore_fraction=0.7,
        mean_interarrival=0.01,
    ),
}


@dataclass(frozen=True)
class ScheduledRequest:
    """One arrival: everything needed to build the request at submit
    time (the deadline must bind to the service clock *then*)."""

    at: float
    tenant: str
    op: str
    name: str
    size: int = 0
    data_seed: int = 0
    idempotency_key: str | None = None
    deadline: float | None = None
    target_error: float | None = None

    def build(self, clock) -> ServiceRequest:
        data = None
        if self.op == "prepare":
            data = synthetic_field(self.data_seed, self.size)
        dl = (
            Deadline(self.deadline, clock=clock)
            if self.deadline is not None
            else None
        )
        return ServiceRequest(
            tenant=self.tenant,
            op=self.op,
            name=self.name,
            data=data,
            idempotency_key=self.idempotency_key,
            deadline=dl,
            target_error=self.target_error,
        )


def make_schedule(
    mix: TrafficMix,
    *,
    objects: list[str],
    count: int,
    seed: int,
) -> list[ScheduledRequest]:
    """Deterministic arrival schedule for ``mix``: same seed ⇒ same
    tenants, ops, sizes, keys and arrival times, byte for byte.

    ``objects`` are the names restores draw from (prepared beforehand by
    the driver's setup phase); prepares target fresh per-mix names.
    """
    if not objects:
        raise ValueError("need at least one prepared object for restores")
    rng = np.random.default_rng(seed)
    tenants = sorted(mix.tenants)
    weights = np.array([mix.tenants[t] for t in tenants], dtype=np.float64)
    weights /= weights.sum()
    schedule: list[ScheduledRequest] = []
    t = 0.0
    for i in range(count):
        t += float(rng.exponential(mix.mean_interarrival))
        tenant = tenants[int(rng.choice(len(tenants), p=weights))]
        if rng.random() < mix.restore_fraction:
            name = objects[int(rng.integers(len(objects)))]
            schedule.append(
                ScheduledRequest(
                    at=t, tenant=tenant, op="restore", name=name,
                    deadline=mix.deadline,
                )
            )
        else:
            size = int(
                bounded_pareto(
                    float(rng.random()), mix.size_alpha,
                    float(mix.size_lo), float(mix.size_hi),
                )
            )
            key = None
            if rng.random() < mix.keyed_fraction:
                key = f"{mix.name}-k{int(rng.integers(mix.key_pool)):02d}"
            # Keyed prepares reuse the key's object name so duplicates
            # are true duplicates (same name, same bytes).
            tag = key if key is not None else f"i{i:05d}"
            schedule.append(
                ScheduledRequest(
                    at=t, tenant=tenant, op="prepare",
                    name=f"{mix.name}/{tenant}/{tag}",
                    size=size,
                    data_seed=seed ^ _hash_tag(f"{mix.name}|{tenant}|{tag}"),
                    idempotency_key=key,
                    deadline=mix.deadline,
                )
            )
    return schedule


def _hash_tag(s: str) -> int:
    """Stable 31-bit tag hash (``hash()`` is salted per process)."""
    import hashlib

    return int.from_bytes(
        hashlib.sha256(s.encode()).digest()[:4], "big"
    ) & 0x7FFFFFFF


@dataclass
class TrafficReport:
    """What one drive produced: results, sheds, and latency stats."""

    mix: str
    seed: int
    duration: float = 0.0
    results: list = field(default_factory=list)
    sheds: list = field(default_factory=list)  # (tenant, reason, retry_after)

    @property
    def completed(self) -> int:
        return len(self.results)

    @property
    def ops_per_second(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def latencies(self, tenant: str | None = None) -> list[float]:
        return sorted(
            r.elapsed
            for r in self.results
            if tenant is None or r.tenant == tenant
        )

    @staticmethod
    def percentile(values: list[float], q: float) -> float:
        if not values:
            return 0.0
        idx = min(len(values) - 1, int(round(q * (len(values) - 1))))
        return values[idx]

    def summary(self) -> dict:
        lat = self.latencies()
        tenants = sorted({r.tenant for r in self.results})
        statuses: dict[str, int] = {}
        for r in self.results:
            statuses[r.status] = statuses.get(r.status, 0) + 1
        shed_reasons: dict[str, int] = {}
        for _tenant, reason, _after in self.sheds:
            shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
        return {
            "mix": self.mix,
            "seed": self.seed,
            "completed": self.completed,
            "shed": len(self.sheds),
            "shed_reasons": shed_reasons,
            "duration_s": round(self.duration, 6),
            "ops_per_s": round(self.ops_per_second, 3),
            "latency_p50_s": round(self.percentile(lat, 0.50), 6),
            "latency_p99_s": round(self.percentile(lat, 0.99), 6),
            "by_status": statuses,
            "by_tenant": {
                t: {
                    "completed": sum(1 for r in self.results if r.tenant == t),
                    "p50_s": round(
                        self.percentile(self.latencies(t), 0.50), 6
                    ),
                    "p99_s": round(
                        self.percentile(self.latencies(t), 0.99), 6
                    ),
                }
                for t in tenants
            },
        }


def drive_open_loop(
    service,
    clock,
    schedule: list[ScheduledRequest],
    *,
    mix_name: str = "",
    seed: int = 0,
    pump_interval: int = 1,
    pump_batch: int = 1,
    service_tick: float = 0.005,
) -> TrafficReport:
    """Drive a schedule in simulated time (deterministic replay mode).

    Arrivals advance the :class:`~repro.service.request.ManualClock` to
    their timestamps and submit without waiting.  After every
    ``pump_interval`` arrivals the service executes up to ``pump_batch``
    queued requests inline, advancing the clock ``service_tick`` seconds
    per execution — so a pump budget below the arrival rate *is* the
    overload, and queue growth, shedding, deadline expiry and bulkhead
    contention all follow deterministically from the seed.
    """
    report = TrafficReport(mix=mix_name, seed=seed)
    start = clock()
    tickets = []

    def pump(batch: int | None) -> None:
        budget = batch
        while budget is None or budget > 0:
            n = service.pump(1)
            if n == 0:
                break
            clock.advance(service_tick)
            if budget is not None:
                budget -= 1

    for i, item in enumerate(schedule):
        if clock() < item.at:
            clock.advance(item.at - clock())
        req = item.build(clock)
        try:
            tickets.append(service.submit(req))
        except ServiceRejected as exc:
            report.sheds.append((req.tenant, exc.reason, exc.retry_after))
        if (i + 1) % pump_interval == 0:
            pump(pump_batch)
    pump(None)  # drain the backlog
    report.duration = max(clock() - start, 1e-9)
    seen = set()
    for t in tickets:
        if id(t) in seen:  # coalesced duplicates share a ticket
            continue
        seen.add(id(t))
        report.results.append(t.result(timeout=0))
    return report


def drive_threaded(
    service,
    schedule: list[ScheduledRequest],
    *,
    mix_name: str = "",
    seed: int = 0,
    time_scale: float = 1.0,
    result_timeout: float = 60.0,
) -> TrafficReport:
    """Drive a schedule in wall-clock time against a *started* service.

    Open loop: a submitter thread fires arrivals on schedule (scaled by
    ``time_scale``) regardless of completions; sheds are recorded and
    dropped.  Returns once every admitted ticket resolves.
    """
    import time as _time

    report = TrafficReport(mix=mix_name, seed=seed)
    tickets = []
    lock = threading.Lock()

    def submitter() -> None:
        t0 = _time.monotonic()
        for item in schedule:
            delay = item.at * time_scale - (_time.monotonic() - t0)
            if delay > 0:
                _time.sleep(delay)
            req = item.build(service.clock)
            try:
                ticket = service.submit(req)
            except ServiceRejected as exc:
                with lock:
                    report.sheds.append(
                        (req.tenant, exc.reason, exc.retry_after)
                    )
                continue
            with lock:
                tickets.append(ticket)

    start = _time.monotonic()
    thread = threading.Thread(target=submitter, name="traffic-submitter")
    thread.start()
    thread.join()
    seen = set()
    for t in list(tickets):
        if id(t) in seen:
            continue
        seen.add(id(t))
        report.results.append(t.result(timeout=result_timeout))
    report.duration = max(_time.monotonic() - start, 1e-9)
    return report
