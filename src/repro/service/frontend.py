"""The archive service: a multi-tenant front end over the RAPIDS pipeline.

:class:`ArchiveService` turns the one-shot library into a long-running
request server.  A request's path::

    submit ──► admission (token bucket → bounded queue, shed on overflow)
           ──► dequeue   (round-robin across tenants, bulkhead slots)
           ──► journal   (idempotency begin, cached replay short-circuit)
           ──► pipeline  (RAPIDS.prepare / RAPIDS.restore, breaker-aware)
           ──► journal commit ──► ticket resolution

Robustness properties, each deterministically provable under a seeded
:class:`~repro.chaos.FaultPlan` (sites ``service.admit`` /
``service.dequeue`` / ``service.journal``):

* overload sheds — :meth:`submit` raises
  :class:`~repro.service.request.ServiceRejected` with a retry-after
  hint rather than buffering without bound;
* bulkheads isolate — a tenant saturating its worker-slot quota never
  blocks another tenant's admitted requests;
* keyed prepares are exactly-once — the durable journal plus in-flight
  coalescing mean duplicates mutate the workspace once and observe one
  result;
* deadlines propagate — every stage boundary consults the request
  deadline, and an over-deadline restore degrades to the affordable
  level prefix via ``restore(degrade=True)`` instead of failing;
* backend outages trip per-system circuit breakers fed by
  ``RetryPolicy`` exhaustion, steering later restores away.

The service runs in two modes: :meth:`start` spawns real worker threads
(the benchmark / ``rapids serve`` mode) while :meth:`pump` executes
queued requests inline on the caller's thread — the deterministic mode
chaos campaigns and property tests replay byte-for-byte.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass, field

from ..chaos.injector import InjectedFault
from .admission import AdmissionQueue, Bulkhead, TokenBucket
from .breaker import BreakerBoard
from .journal import IdempotencyConflict, RequestJournal, request_fingerprint
from .request import ServiceRejected, ServiceRequest, ServiceResult

__all__ = ["ServiceConfig", "Ticket", "ArchiveService"]

#: Failure classes the executor converts into a typed ``failed`` result
#: instead of letting them kill a worker.  Mirrors the pipeline's
#: degradable set; anything outside it is a programming error and
#: propagates.
_SERVABLE_ERRORS = (
    InjectedFault,
    IdempotencyConflict,
    KeyError,
    ValueError,
    OSError,
    RuntimeError,
)


@dataclass
class ServiceConfig:
    """Tuning knobs for one :class:`ArchiveService`.

    Defaults suit tests and the smoke benchmark; ``rapids serve`` maps
    its flags straight onto these fields.
    """

    #: Global bound on queued (admitted but not yet executing) requests.
    queue_capacity: int = 64
    #: Default per-tenant token rate (requests/second) and burst size.
    rate: float = 50.0
    burst: float = 20.0
    #: Per-tenant ``(rate, burst)`` overrides.
    tenant_rates: dict = field(default_factory=dict)
    #: Default per-tenant worker-slot quota and per-tenant overrides.
    bulkhead_slots: int = 2
    tenant_slots: dict = field(default_factory=dict)
    #: Worker threads spawned by :meth:`ArchiveService.start`.
    workers: int = 2
    #: Deadline applied to requests that carry none (``None`` = unbounded).
    default_deadline: float | None = None
    #: Fraction of the remaining deadline budgeted for transfer when
    #: picking the affordable level prefix of a restore.
    deadline_safety: float = 0.8
    #: Retry-after hint attached to shed requests, in service-clock
    #: seconds; queue pressure scales it (deeper queue → longer hint).
    shed_retry_after: float = 0.25
    #: Circuit-breaker trip threshold and open→half-open decay.
    breaker_threshold: int = 3
    breaker_reset: float = 30.0
    #: How long an idle worker waits on the queue per loop iteration.
    poll_interval: float = 0.05
    #: The service clock; inject a ManualClock for deterministic runs.
    clock: object = time.monotonic


class Ticket:
    """The caller's handle on a submitted request — a minimal future.

    Duplicate in-flight submissions with the same idempotency key
    coalesce onto one ticket; every holder observes the same
    :class:`~repro.service.request.ServiceResult`.
    """

    __slots__ = ("request", "coalesced", "_event", "_result")

    def __init__(self, request: ServiceRequest):
        self.request = request
        #: How many duplicate submissions were folded onto this ticket.
        self.coalesced = 0
        self._event = threading.Event()
        self._result: ServiceResult | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, result: ServiceResult) -> None:
        self._result = result
        self._event.set()

    def result(self, timeout: float | None = None) -> ServiceResult:
        """The request's result; blocks up to ``timeout`` seconds.

        In :meth:`ArchiveService.pump` mode tickets resolve before
        :meth:`~ArchiveService.submit` returns control, so ``timeout=0``
        suffices; threaded callers size the timeout off their deadline.
        """
        if not self._event.wait(timeout=timeout):
            raise TimeoutError(
                f"request {self.request.request_id} still pending"
            )
        assert self._result is not None
        return self._result


def _payload_digest(data) -> str:
    """Stable digest of a prepare payload (array bytes or source path)."""
    if data is None:
        return "none"
    if isinstance(data, (str, bytes)):
        raw = data if isinstance(data, bytes) else data.encode()
        return hashlib.sha256(b"path|" + raw).hexdigest()[:32]
    try:
        import numpy as np

        arr = np.ascontiguousarray(data)
        h = hashlib.sha256()
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
        return h.hexdigest()[:32]
    except (TypeError, ValueError):
        return hashlib.sha256(repr(data).encode()).hexdigest()[:32]


class ArchiveService:
    """Multi-tenant admission, execution, and journaling over ``RAPIDS``.

    Parameters
    ----------
    rapids:
        The pipeline instance to serve (its catalog's KV store also
        hosts the request journal).
    config:
        A :class:`ServiceConfig`; defaults are test-sized.
    injector:
        Optional chaos injector consulted at the service's own seams
        (``service.admit`` / ``service.dequeue`` / ``service.journal``)
        in addition to whatever is attached to the pipeline beneath.
    """

    def __init__(self, rapids, *, config: ServiceConfig | None = None,
                 injector=None):
        self.rapids = rapids
        self.config = config or ServiceConfig()
        self.clock = self.config.clock
        self.injector = injector
        self.queue = AdmissionQueue(self.config.queue_capacity)
        self.bulkhead = Bulkhead(
            self.config.bulkhead_slots,
            quotas=self.config.tenant_slots,
            on_release=self.queue.notify,
        )
        self.journal = RequestJournal(
            rapids.catalog.store, injector=injector
        )
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            reset_after=self.config.breaker_reset,
            clock=self.clock,
        )
        # Feed the breakers from the pipeline's per-fetch retry outcomes.
        rapids.fetch_observer = self._observe_fetch
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[tuple[str, str], Ticket] = {}
        #: request_id -> Ticket for queued-but-unresolved requests.
        self._tickets: dict[str, Ticket] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self.metrics: dict[str, object] = {
            "submitted": 0,
            "completed": 0,
            "shed": {},            # reason -> count
            "coalesced": 0,
            "by_status": {},       # status -> count
            "by_tenant": {},       # tenant -> completed count
        }

    def attach_injector(self, injector) -> None:
        self.injector = injector
        self.journal.attach_injector(injector)

    # -- admission (caller thread) -----------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            b = self._buckets.get(tenant)
            if b is None:
                rate, burst = self.config.tenant_rates.get(
                    tenant, (self.config.rate, self.config.burst)
                )
                b = self._buckets[tenant] = TokenBucket(
                    rate, burst, clock=self.clock
                )
            return b

    def _shed_hint(self) -> float:
        depth = self.queue.depth()
        scale = 1.0 + depth / max(1, self.config.queue_capacity)
        return self.config.shed_retry_after * scale

    def _shed(self, reason: str, tenant: str, retry_after: float):
        with self._lock:
            shed = self.metrics["shed"]
            shed[reason] = shed.get(reason, 0) + 1
        return ServiceRejected(reason, retry_after=retry_after, tenant=tenant)

    def submit(self, request: ServiceRequest) -> Ticket:
        """Admit a request; returns its :class:`Ticket`.

        Raises :class:`~repro.service.request.ServiceRejected` when the
        request is shed — rate limit exceeded, queue full, admission
        fault, or shutdown — always promptly, never by blocking.
        """
        with self._lock:
            self.metrics["submitted"] += 1
            if not request.request_id:
                request.request_id = f"req-{next(self._ids):06d}"
        request.submitted_at = self.clock()
        if request.deadline is None and self.config.default_deadline:
            from .request import Deadline

            request.deadline = Deadline(
                self.config.default_deadline, clock=self.clock
            )

        if self.injector is not None:
            try:
                self.injector.check(
                    "service.admit", tenant=request.tenant, op=request.op
                )
            except InjectedFault:
                raise self._shed(
                    "admit-fault", request.tenant, self._shed_hint()
                ) from None

        wait = self._bucket(request.tenant).try_acquire()
        if wait > 0:
            raise self._shed("rate-limited", request.tenant, wait)

        # In-flight duplicates coalesce onto the live ticket *before*
        # consuming queue capacity.
        key = request.idempotency_key
        if key is not None:
            ik = (request.tenant, key)
            with self._lock:
                live = self._inflight.get(ik)
                if live is not None and not live.done:
                    live.coalesced += 1
                    self.metrics["coalesced"] += 1
                    return live

        ticket = Ticket(request)
        if key is not None:
            with self._lock:
                self._inflight[(request.tenant, key)] = ticket
        try:
            self.queue.offer(request, retry_after=self._shed_hint())
        except ServiceRejected as exc:
            if key is not None:
                with self._lock:
                    self._inflight.pop((request.tenant, key), None)
            raise self._shed(exc.reason, request.tenant, exc.retry_after)
        with self._lock:
            self._tickets[request.request_id] = ticket
        return ticket

    # -- execution ----------------------------------------------------------

    def pump(self, max_requests: int | None = None) -> int:
        """Execute queued requests inline until the queue drains (or
        ``max_requests`` ran); returns how many executed.  This is the
        deterministic single-threaded mode: the submit order plus the
        round-robin dequeue fully determine the execution sequence.
        """
        done = 0
        while max_requests is None or done < max_requests:
            req = self.queue.take(self.bulkhead, timeout=0.0)
            if req is None:
                break
            try:
                self._run_one(req)
            finally:
                self.bulkhead.release(req.tenant)
            done += 1
        return done

    def start(self, workers: int | None = None) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        self._stopping.clear()
        n = workers if workers is not None else self.config.workers
        for i in range(n):
            t = threading.Thread(
                target=self._worker_loop, name=f"archive-worker-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)

    def stop(self, *, drain: bool = True) -> None:
        """Shut down: close admission, optionally drain, join workers."""
        self.queue.close()
        if not drain:
            self._stopping.set()
        for t in self._threads:
            t.join()
        self._threads.clear()
        self._stopping.set()
        # Anything still queued after a no-drain stop resolves as shed.
        while True:
            req = self.queue.take(self.bulkhead, timeout=0.0)
            if req is None:
                break
            self.bulkhead.release(req.tenant)
            self._resolve(req, ServiceResult(
                request_id=req.request_id, tenant=req.tenant, op=req.op,
                name=req.name, status="failed", error="service stopped",
                deadline_met=False,
            ))

    def _worker_loop(self) -> None:
        while True:
            if self._stopping.is_set():
                return
            req = self.queue.take(
                self.bulkhead, timeout=self.config.poll_interval
            )
            if req is None:
                if self.queue.closed and self.queue.depth() == 0:
                    return
                continue
            try:
                self._run_one(req)
            finally:
                self.bulkhead.release(req.tenant)

    # -- the handler --------------------------------------------------------

    def _resolve(self, req: ServiceRequest, result: ServiceResult) -> None:
        with self._lock:
            ticket = self._tickets.pop(req.request_id, None)
            if req.idempotency_key is not None:
                self._inflight.pop((req.tenant, req.idempotency_key), None)
            self.metrics["completed"] += 1
            by_status = self.metrics["by_status"]
            by_status[result.status] = by_status.get(result.status, 0) + 1
            by_tenant = self.metrics["by_tenant"]
            by_tenant[req.tenant] = by_tenant.get(req.tenant, 0) + 1
        if ticket is not None:
            ticket.resolve(result)

    def _run_one(self, req: ServiceRequest) -> ServiceResult:
        started = self.clock()
        queue_wait = max(0.0, started - req.submitted_at)

        def finish(result: ServiceResult) -> ServiceResult:
            result.queue_wait = queue_wait
            result.service_time = max(0.0, self.clock() - started)
            if req.deadline is not None and req.deadline.expired:
                result.deadline_met = False
            self._resolve(req, result)
            return result

        base = dict(request_id=req.request_id, tenant=req.tenant,
                    op=req.op, name=req.name)
        if self.injector is not None:
            try:
                self.injector.check(
                    "service.dequeue", tenant=req.tenant, op=req.op
                )
            except InjectedFault as exc:
                return finish(ServiceResult(
                    status="failed", error=repr(exc), **base
                ))
        # Stage boundary: a request whose deadline lapsed in the queue is
        # answered typed, without burning a pipeline run.
        if req.deadline is not None and req.deadline.expired:
            return finish(ServiceResult(status="deadline", **base))
        try:
            if req.op == "prepare":
                return finish(self._run_prepare(req, base))
            return finish(self._run_restore(req, base))
        except _SERVABLE_ERRORS as exc:
            return finish(ServiceResult(
                status="failed", error=repr(exc), **base
            ))

    def _run_prepare(self, req: ServiceRequest, base: dict) -> ServiceResult:
        key = req.idempotency_key
        fingerprint = None
        if key is not None:
            fingerprint = request_fingerprint(
                req.op, req.name, _payload_digest(req.data)
            )
            prior = self.journal.begin(
                req.tenant, key, op=req.op, name=req.name,
                fingerprint=fingerprint,
            )
            if prior is not None and prior.state == "done":
                # Exactly-once: the keyed request already committed —
                # serve the journaled result, touch nothing.
                return ServiceResult(
                    status="cached", replayed=True,
                    levels_used=int(prior.result.get("levels_used", 0)),
                    achieved_error=prior.result.get("achieved_error"),
                    extra=dict(prior.result), **base,
                )
        report = self.rapids.prepare(req.name, req.data)
        result = ServiceResult(
            status="ok",
            levels_used=len(report.ft_config),
            achieved_error=report.expected_error,
            extra={"ft_config": list(report.ft_config)},
            **base,
        )
        if key is not None:
            self.journal.commit(
                req.tenant, key, fingerprint=fingerprint, op=req.op,
                name=req.name,
                result={
                    "levels_used": result.levels_used,
                    "achieved_error": result.achieved_error,
                    "ft_config": list(report.ft_config),
                },
            )
        return result

    def _affordable_levels(self, rec, remaining: float) -> int:
        """Deepest level prefix whose modeled transfer fits the budget."""
        bw = self.rapids.cluster.bandwidths
        agg = float(sum(float(b) for b in bw)) or 1.0
        budget = remaining * self.config.deadline_safety
        total = 0.0
        affordable = 0
        for size in rec.level_sizes:
            total += float(size)
            if total / agg > budget:
                break
            affordable += 1
        return affordable

    def _run_restore(self, req: ServiceRequest, base: dict) -> ServiceResult:
        rec = self.rapids.catalog.get_object(req.name)
        n_levels = len(rec.level_errors)
        target = req.target_error
        wanted = n_levels
        if target is not None:
            wanted = next(
                (j + 1 for j, e in enumerate(rec.level_errors) if e <= target),
                n_levels,
            )
        deadline_limited = False
        if req.deadline is not None:
            affordable = self._affordable_levels(rec, req.deadline.remaining())
            if affordable < wanted:
                # Degrade to the affordable prefix instead of blowing
                # the deadline: ask for the error the prefix delivers.
                deadline_limited = True
                wanted = max(affordable, 1)
                target = rec.level_errors[wanted - 1]
        avoid = self.breakers.avoid()
        report = self.rapids.restore(
            req.name,
            strategy=req.strategy,
            target_error=target,
            degrade=True,
            avoid_systems=avoid,
            record_access=False,
        )
        status = "ok"
        if (
            deadline_limited
            or report.degraded is not None
            or report.levels_used < wanted
        ):
            status = "degraded"
        extra: dict = {"wanted_levels": wanted}
        if deadline_limited:
            extra["deadline_limited"] = True
        if avoid:
            extra["avoided_systems"] = list(avoid)
        if report.degraded is not None:
            extra["failures"] = [
                f"{f.stage}@{f.level}" for f in report.degraded.failures
            ]
        return ServiceResult(
            status=status,
            levels_used=report.levels_used,
            achieved_error=report.achieved_error,
            extra=extra,
            **base,
        )

    # -- breaker feed -------------------------------------------------------

    def _observe_fetch(self, system_id: int, outcome) -> None:
        """Pipeline hook: per-fetch RetryPolicy outcomes feed breakers."""
        if outcome.ok:
            self.breakers.record_success(system_id)
        else:
            self.breakers.record_exhaustion(system_id)

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time service state for logs and the smoke driver."""
        with self._lock:
            m = {
                "submitted": self.metrics["submitted"],
                "completed": self.metrics["completed"],
                "coalesced": self.metrics["coalesced"],
                "shed": dict(self.metrics["shed"]),
                "by_status": dict(self.metrics["by_status"]),
                "by_tenant": dict(self.metrics["by_tenant"]),
            }
        m["queue_depth"] = self.queue.depth()
        m["breakers"] = {
            str(sid): state for sid, state in self.breakers.states().items()
        }
        return m
