"""Admission control: token buckets, bulkheads, and the bounded queue.

Three robustness patterns compose here:

* **Throttling / rate limiting** — a :class:`TokenBucket` per tenant
  caps sustained request rate while allowing bursts;
* **Bulkhead isolation** — a :class:`Bulkhead` grants each tenant a
  bounded number of worker slots, so one tenant saturating its quota
  cannot occupy the whole pool and starve the rest;
* **Queue-based load leveling with shedding** — the
  :class:`AdmissionQueue` is *bounded*: an offer beyond capacity is
  rejected immediately (:class:`~repro.service.request.ServiceRejected`
  with a retry-after hint), never buffered without bound.

Everything takes an injectable clock so admission decisions replay
deterministically under a :class:`~repro.service.request.ManualClock`.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from .request import ServiceRejected, ServiceRequest

__all__ = ["TokenBucket", "Bulkhead", "AdmissionQueue"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    :meth:`try_acquire` is non-blocking — it either takes a token and
    returns ``0.0``, or returns the seconds until one will be available
    (the caller's retry-after hint).  Refill is computed lazily from the
    clock, so a :class:`~repro.service.request.ManualClock` drives it
    deterministically.
    """

    def __init__(self, rate: float, burst: float, *, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        if now > self._stamp:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available; else seconds until they are."""
        with self._lock:
            self._refill()
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate


class Bulkhead:
    """Per-tenant worker-slot quotas over the shared execution pool.

    ``default_slots`` bounds every tenant; ``quotas`` overrides specific
    tenants.  Acquisition is non-blocking (the dispatcher simply skips
    tenants at quota and serves someone else — that *is* the isolation);
    ``on_release`` lets the admission queue wake waiting workers when a
    slot frees up.
    """

    def __init__(
        self,
        default_slots: int = 2,
        *,
        quotas: dict[str, int] | None = None,
        on_release=None,
    ):
        if default_slots < 1:
            raise ValueError("default_slots must be >= 1")
        self.default_slots = int(default_slots)
        self.quotas = dict(quotas or {})
        for tenant, q in self.quotas.items():
            if q < 1:
                raise ValueError(f"quota for tenant {tenant!r} must be >= 1")
        self.on_release = on_release
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}

    def quota(self, tenant: str) -> int:
        return self.quotas.get(tenant, self.default_slots)

    def inflight(self, tenant: str) -> int:
        with self._lock:
            return self._inflight.get(tenant, 0)

    def try_acquire(self, tenant: str) -> bool:
        with self._lock:
            used = self._inflight.get(tenant, 0)
            if used >= self.quota(tenant):
                return False
            self._inflight[tenant] = used + 1
            return True

    def release(self, tenant: str) -> None:
        with self._lock:
            used = self._inflight.get(tenant, 0)
            if used <= 0:
                raise RuntimeError(f"release without acquire for {tenant!r}")
            if used == 1:
                del self._inflight[tenant]
            else:
                self._inflight[tenant] = used - 1
        if self.on_release is not None:
            self.on_release()


class AdmissionQueue:
    """Bounded multi-tenant FIFO with round-robin, bulkhead-aware take.

    One deque per tenant plus a global bound: :meth:`offer` rejects
    (never blocks, never buffers unboundedly) once ``capacity`` requests
    are queued across all tenants.  :meth:`take` serves tenants
    round-robin, skipping any whose bulkhead is at quota — the scheduling
    half of the isolation story: a deep queue for tenant A never delays
    tenant B's next request as long as B has slot headroom.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._queues: dict[str, deque[ServiceRequest]] = {}
        self._order: deque[str] = deque()  # round-robin tenant cursor
        self._depth = 0
        self._closed = False

    # -- producer side -----------------------------------------------------

    def depth(self, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is None:
                return self._depth
            return len(self._queues.get(tenant, ()))

    def offer(self, req: ServiceRequest, *, retry_after: float) -> None:
        """Enqueue or shed.  Raises :class:`ServiceRejected` when the
        queue is at capacity (reason ``queue-full``) or the service is
        shutting down (reason ``shutdown``)."""
        with self._lock:
            if self._closed:
                raise ServiceRejected(
                    "shutdown", retry_after=retry_after, tenant=req.tenant
                )
            if self._depth >= self.capacity:
                raise ServiceRejected(
                    "queue-full", retry_after=retry_after, tenant=req.tenant
                )
            q = self._queues.get(req.tenant)
            if q is None:
                q = self._queues[req.tenant] = deque()
                self._order.append(req.tenant)
            q.append(req)
            self._depth += 1
            self._ready.notify()

    def close(self) -> None:
        """Stop accepting offers and wake every waiting worker."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def notify(self) -> None:
        """Wake waiting workers (bulkhead release / external event)."""
        with self._lock:
            self._ready.notify_all()

    # -- consumer side -----------------------------------------------------

    def _pop_eligible(self, bulkhead: Bulkhead) -> ServiceRequest | None:
        """Round-robin over tenants; pop the first whose bulkhead has a
        free slot (slot acquired atomically with the pop)."""
        for _ in range(len(self._order)):
            tenant = self._order[0]
            self._order.rotate(-1)
            q = self._queues.get(tenant)
            if not q:
                continue
            if not bulkhead.try_acquire(tenant):
                continue
            req = q.popleft()
            self._depth -= 1
            return req
        return None

    def take(
        self, bulkhead: Bulkhead, *, timeout: float
    ) -> ServiceRequest | None:
        """Next eligible request (its bulkhead slot already held), or
        ``None`` after ``timeout`` seconds with nothing eligible.

        The timeout bounds the wait unconditionally (workers re-check
        their shutdown flag between takes), so a worker never blocks
        forever on an empty or fully-quota'd queue.
        """
        with self._lock:
            req = self._pop_eligible(bulkhead)
            if req is not None:
                return req
            if self._closed and self._depth == 0:
                return None
            self._ready.wait(timeout=timeout)
            return self._pop_eligible(bulkhead)
