"""The durable request journal: exactly-once prepares over the KV store.

Idempotency-key pattern over the metadata plane.  Before executing a
keyed prepare the service writes a ``pending`` journal record; after the
pipeline commits, a ``done`` record with the result.  A retried or
replayed request then observes exactly-once workspace mutation:

* ``done``    — served straight from the journal, no pipeline run;
* ``pending`` — a prior attempt crashed somewhere between the journal
  write and the commit; the prepare re-executes *over* the partial
  state.  ``RAPIDS.prepare`` overwrites every fragment, catalog record
  and ledger entry for the object deterministically, so replaying a
  half-done prepare converges on the same bytes a single clean run
  produces (the crash-safe-resume contract the property suite checks);
* absent      — first time through.

A key is bound to its request *fingerprint* (op, object name, payload
digest): reusing a key for different bytes is a caller bug and surfaces
as :class:`IdempotencyConflict` instead of silently serving the wrong
cached result.

Key layout (in the metadata catalog's KV store, so journal writes ride
the existing ``kvstore.put``/``kvstore.fsync`` chaos seams)::

    svc/req/<tenant>/<key>   -> {"state", "fingerprint", "op", "name",
                                 "result"?}
"""

from __future__ import annotations

import hashlib
import json

__all__ = [
    "RequestJournal",
    "JournalEntry",
    "IdempotencyConflict",
    "request_fingerprint",
]


class IdempotencyConflict(ValueError):
    """The same idempotency key was reused for a different request."""


class JournalEntry:
    """One journal record, decoded."""

    __slots__ = ("state", "fingerprint", "op", "name", "result")

    def __init__(self, state, fingerprint, op, name, result=None):
        self.state = state
        self.fingerprint = fingerprint
        self.op = op
        self.name = name
        self.result = result

    @classmethod
    def from_json(cls, raw: bytes) -> "JournalEntry":
        d = json.loads(raw)
        return cls(
            d["state"], d["fingerprint"], d["op"], d["name"], d.get("result")
        )

    def to_json(self) -> bytes:
        d = {
            "state": self.state,
            "fingerprint": self.fingerprint,
            "op": self.op,
            "name": self.name,
        }
        if self.result is not None:
            d["result"] = self.result
        return json.dumps(d, sort_keys=True).encode()


def request_fingerprint(op: str, name: str, payload_digest: str) -> str:
    """Stable identity of a request's *content* (not its key)."""
    h = hashlib.sha256(f"{op}|{name}|{payload_digest}".encode())
    return h.hexdigest()[:32]


class RequestJournal:
    """Durable idempotency journal over a KV-store-like object.

    ``store`` needs ``get``/``put`` over ``bytes`` — the embedded
    :class:`~repro.metadata.kvstore.KVStore` or its replicated variant.
    The optional injector is consulted at the declared chaos site
    ``service.journal`` on every journal write, so seeded campaigns can
    fail or stall the journal independently of the store beneath it.
    """

    def __init__(self, store, *, injector=None):
        self.store = store
        self.injector = injector

    def attach_injector(self, injector) -> None:
        self.injector = injector

    @staticmethod
    def _key(tenant: str, key: str) -> bytes:
        return f"svc/req/{tenant}/{key}".encode()

    def lookup(self, tenant: str, key: str) -> JournalEntry | None:
        raw = self.store.get(self._key(tenant, key))
        if raw is None:
            return None
        return JournalEntry.from_json(raw)

    def _write(self, tenant: str, key: str, entry: JournalEntry) -> None:
        if self.injector is not None:
            self.injector.check(
                "service.journal", tenant=tenant, key=key, state=entry.state
            )
        self.store.put(self._key(tenant, key), entry.to_json())

    def begin(
        self, tenant: str, key: str, *, op: str, name: str, fingerprint: str
    ) -> JournalEntry | None:
        """Record intent to execute; returns the prior entry, if any.

        A prior ``done`` with a matching fingerprint short-circuits the
        execution (the caller serves the recorded result); a prior
        ``pending`` means crash replay (the caller re-executes); a
        fingerprint mismatch raises :class:`IdempotencyConflict`.
        """
        prior = self.lookup(tenant, key)
        if prior is not None:
            if prior.fingerprint != fingerprint:
                raise IdempotencyConflict(
                    f"idempotency key {key!r} of tenant {tenant!r} was "
                    f"previously used for a different request "
                    f"({prior.op} {prior.name!r})"
                )
            if prior.state == "done":
                return prior
        self._write(
            tenant, key,
            JournalEntry("pending", fingerprint, op, name),
        )
        return prior

    def commit(
        self, tenant: str, key: str, *, fingerprint: str, op: str,
        name: str, result: dict,
    ) -> None:
        """Mark the keyed request complete, recording its result."""
        self._write(
            tenant, key,
            JournalEntry("done", fingerprint, op, name, result=result),
        )

    def pending(self) -> list[tuple[str, str]]:
        """(tenant, key) pairs whose execution never committed — the
        crash-recovery worklist an operator can inspect."""
        out: list[tuple[str, str]] = []
        for k in self.store.keys(b"svc/req/"):
            raw = self.store.get(k)
            if raw is None:
                continue
            if JournalEntry.from_json(raw).state == "pending":
                _, _, tenant, key = k.decode().split("/", 3)
                out.append((tenant, key))
        return out
