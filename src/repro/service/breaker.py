"""Circuit breakers over backend storage systems.

The service watches the pipeline's retry layer: every time a
:class:`~repro.chaos.RetryPolicy` exhausts its attempts against a
backend system, the system's breaker records a failure.  After
``threshold`` consecutive exhaustions the breaker *opens* — the service
stops routing reads at that system (it is merged into the ``avoid``
set handed to :meth:`repro.core.RAPIDS.restore`) instead of burning
every request's deadline rediscovering the same outage.  After
``reset_after`` seconds the breaker moves to *half-open* and lets one
probe through; a success closes it, a failure re-opens it.

The breaker is advisory placement pressure, not a hard fence: restore's
spare-fragment path may still touch an avoided system when nothing else
can serve a stripe, which is exactly the availability-first behaviour
the paper argues for.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One backend system's failure gate (closed / open / half-open)."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        reset_after: float = 30.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_after <= 0:
            raise ValueError("reset_after must be positive")
        self.threshold = int(threshold)
        self.reset_after = float(reset_after)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = CLOSED
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._probe_state()

    def _probe_state(self) -> str:
        # Lock held.  Open breakers decay to half-open on the clock.
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_after
        ):
            self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May traffic be routed at this backend right now?

        ``closed`` and ``half-open`` allow (half-open is the probe);
        ``open`` denies.
        """
        with self._lock:
            return self._probe_state() != OPEN

    def record_failure(self) -> None:
        with self._lock:
            state = self._probe_state()
            if state == HALF_OPEN:
                # The probe failed: straight back to open.
                self._state = OPEN
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.threshold:
                self._state = OPEN
                self._opened_at = self._clock()

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = CLOSED


class BreakerBoard:
    """The per-system breaker map the service consults before restores."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        reset_after: float = 30.0,
        clock=time.monotonic,
    ):
        self.threshold = threshold
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[int, CircuitBreaker] = {}

    def _get(self, system_id: int) -> CircuitBreaker:
        with self._lock:
            br = self._breakers.get(system_id)
            if br is None:
                br = self._breakers[system_id] = CircuitBreaker(
                    threshold=self.threshold,
                    reset_after=self.reset_after,
                    clock=self._clock,
                )
            return br

    def record_exhaustion(self, system_id: int) -> None:
        """A RetryPolicy ran out of attempts against ``system_id``."""
        self._get(system_id).record_failure()

    def record_success(self, system_id: int) -> None:
        self._get(system_id).record_success()

    def avoid(self) -> tuple[int, ...]:
        """System ids whose breaker is currently open (sorted)."""
        with self._lock:
            items = list(self._breakers.items())
        return tuple(
            sid for sid, br in sorted(items) if not br.allow()
        )

    def states(self) -> dict[int, str]:
        with self._lock:
            items = list(self._breakers.items())
        return {sid: br.state for sid, br in items}
