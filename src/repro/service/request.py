"""Request/response types for the archive service (``repro.service``).

The service front end speaks in :class:`ServiceRequest` /
:class:`ServiceResult` values.  A request carries everything robustness
needs end to end: the *tenant* it bills against (bulkheads, rate
limits), an optional *idempotency key* (exactly-once prepare), and an
optional :class:`Deadline` that every stage boundary consults — the
admission check, the dequeue, the journal write, and the pipeline call
itself, where an over-deadline restore degrades to the affordable level
prefix instead of failing.

Time never comes from ``time.monotonic`` directly: every component takes
an injectable ``clock`` callable so chaos campaigns and property tests
drive a :class:`ManualClock` and replay byte-identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "ManualClock",
    "Deadline",
    "ServiceRequest",
    "ServiceResult",
    "ServiceRejected",
]


class ManualClock:
    """A hand-advanced clock: deterministic time for tests and campaigns.

    Calling the instance reads the current time; :meth:`advance` moves
    it forward.  Handing one instance to the service, its token buckets,
    breakers and deadlines puts the whole front end on a single
    simulated time axis.
    """

    __slots__ = ("t",)

    def __init__(self, t: float = 0.0) -> None:
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("time only moves forward")
        self.t += float(dt)
        return self.t


class Deadline:
    """An absolute completion deadline on an injectable clock.

    ``Deadline(2.5, clock=clk)`` means "2.5 seconds from now on ``clk``".
    Handlers consult :meth:`remaining` before every blocking step and
    pass it as the step's timeout — the discipline rapidslint rule
    RPD117 (``service-blocking-no-deadline``) enforces across
    ``repro.service``.
    """

    __slots__ = ("at", "_clock")

    def __init__(
        self,
        seconds: float | None = None,
        *,
        clock=time.monotonic,
        at: float | None = None,
    ) -> None:
        if (seconds is None) == (at is None):
            raise ValueError("pass exactly one of seconds= or at=")
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline must be positive")
        self._clock = clock
        self.at = float(at) if at is not None else clock() + float(seconds)

    def remaining(self) -> float:
        """Seconds left before the deadline (clamped at 0)."""
        return max(0.0, self.at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(at={self.at:.3f}, remaining={self.remaining():.3f})"


@dataclass
class ServiceRequest:
    """One tenant request against the archive service.

    ``op`` is ``"prepare"`` or ``"restore"``.  For prepares, ``data``
    holds the array (or a ``.npy`` path) and ``idempotency_key`` makes
    retried submissions safe; for restores, ``target_error`` and
    ``strategy`` pass straight through to :meth:`repro.core.RAPIDS.restore`.
    """

    tenant: str
    op: str
    name: str
    data: object | None = None
    idempotency_key: str | None = None
    deadline: Deadline | None = None
    target_error: float | None = None
    strategy: str = "naive"
    request_id: str = ""
    submitted_at: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in ("prepare", "restore"):
            raise ValueError(f"unknown service op {self.op!r}")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.op == "prepare" and self.data is None:
            raise ValueError("prepare requests need data")


#: Terminal request statuses.
#:
#: * ``ok``        — executed cleanly;
#: * ``degraded``  — executed, but the restore delivered a shorter level
#:   prefix (faults or deadline pressure); carries the degraded report;
#: * ``cached``    — idempotent replay served from the request journal,
#:   no pipeline execution;
#: * ``deadline``  — the deadline expired before useful work could start;
#: * ``failed``    — the handler raised (the error string says why).
STATUSES = ("ok", "degraded", "cached", "deadline", "failed")


@dataclass
class ServiceResult:
    """What one admitted request produced, plus latency accounting."""

    request_id: str
    tenant: str
    op: str
    name: str
    status: str
    levels_used: int = 0
    achieved_error: float | None = None
    error: str | None = None
    replayed: bool = False
    deadline_met: bool = True
    queue_wait: float = 0.0
    service_time: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "degraded", "cached")

    @property
    def elapsed(self) -> float:
        return self.queue_wait + self.service_time

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "op": self.op,
            "name": self.name,
            "status": self.status,
            "levels_used": self.levels_used,
            "achieved_error": self.achieved_error,
            "error": self.error,
            "replayed": self.replayed,
            "deadline_met": self.deadline_met,
        }


class ServiceRejected(RuntimeError):
    """Typed admission rejection — the load-shedding contract.

    The service never buffers beyond its bounds: a request that cannot
    be admitted is rejected *promptly* with a ``reason`` and a
    ``retry_after`` hint (seconds on the service clock).  Callers back
    off and retry; nothing ever hangs in an unbounded queue.
    """

    def __init__(self, reason: str, *, retry_after: float, tenant: str = ""):
        self.reason = reason
        self.retry_after = max(0.0, float(retry_after))
        self.tenant = tenant
        super().__init__(
            f"request rejected ({reason}); retry after "
            f"{self.retry_after:.3f}s"
        )
