"""``repro.service`` — the archive-as-a-service front end.

The robustness layer over :class:`repro.core.RAPIDS`: bounded admission
with load shedding, per-tenant token buckets and bulkheads, a durable
idempotency journal in the metadata KV store, end-to-end deadline
propagation with degrade-under-pressure restores, and per-backend
circuit breakers — all clock-injectable and chaos-instrumented so every
invariant is provable under a seeded
:class:`~repro.chaos.FaultPlan`.
"""

from .admission import AdmissionQueue, Bulkhead, TokenBucket
from .breaker import BreakerBoard, CircuitBreaker
from .frontend import ArchiveService, ServiceConfig, Ticket
from .journal import IdempotencyConflict, JournalEntry, RequestJournal
from .request import (
    Deadline,
    ManualClock,
    ServiceRejected,
    ServiceRequest,
    ServiceResult,
)
from .traffic import (
    STANDARD_MIXES,
    ScheduledRequest,
    TrafficMix,
    TrafficReport,
    drive_open_loop,
    drive_threaded,
    make_schedule,
    synthetic_field,
)

__all__ = [
    "STANDARD_MIXES",
    "AdmissionQueue",
    "ArchiveService",
    "BreakerBoard",
    "Bulkhead",
    "CircuitBreaker",
    "Deadline",
    "IdempotencyConflict",
    "JournalEntry",
    "ManualClock",
    "RequestJournal",
    "ScheduledRequest",
    "ServiceConfig",
    "ServiceRejected",
    "ServiceRequest",
    "ServiceResult",
    "Ticket",
    "TokenBucket",
    "TrafficMix",
    "TrafficReport",
    "drive_open_loop",
    "drive_threaded",
    "make_schedule",
    "synthetic_field",
]
