"""Protection planning: turn campaign requirements into configurations.

The FT optimiser answers "best accuracy under a storage budget".  Real
campaigns start from the other end: "we need expected error below E and
blackout probability below B — what is the cheapest configuration?"
The planner inverts the models: it sweeps the overhead budget, solves
the FT problem at each point, and returns the frontier plus the cheapest
configuration meeting the requirements.
"""

from __future__ import annotations

from dataclasses import dataclass

from .availability import prob_more_than_k_failures
from .ft_optimizer import FTProblem, FTSolution, heuristic

__all__ = ["ProtectionRequirement", "PlanPoint", "ProtectionPlanner"]


@dataclass(frozen=True)
class ProtectionRequirement:
    """What the campaign needs from its stored data."""

    max_expected_error: float
    max_blackout_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.max_expected_error <= 0:
            raise ValueError("max_expected_error must be positive")
        if not 0 < self.max_blackout_probability <= 1:
            raise ValueError("max_blackout_probability must be in (0, 1]")


@dataclass(frozen=True)
class PlanPoint:
    """One point of the overhead-vs-quality frontier."""

    omega: float
    solution: FTSolution
    blackout_probability: float

    @property
    def meets(self) -> bool:
        return False  # overwritten per requirement in evaluate()


class ProtectionPlanner:
    """Sweeps overhead budgets and recommends the cheapest config.

    Parameters
    ----------
    n, p:
        Cluster size and per-system outage probability.
    sizes, errors, original_size:
        The object's refactoring profile (paper-scale bytes).
    """

    def __init__(
        self,
        n: int,
        p: float,
        sizes: list[float],
        errors: list[float],
        original_size: float,
    ) -> None:
        self.n = n
        self.p = p
        self.sizes = tuple(float(s) for s in sizes)
        self.errors = tuple(float(e) for e in errors)
        self.original_size = float(original_size)

    def frontier(
        self, *, omegas: list[float] | None = None
    ) -> list[PlanPoint]:
        """Solve the FT problem across a sweep of overhead budgets.

        Infeasible budgets are skipped.  Points are returned in
        ascending omega order.
        """
        if omegas is None:
            omegas = [0.02 * 2**i for i in range(7)]  # 0.02 .. 1.28
        points = []
        for omega in sorted(omegas):
            if omega <= 0:
                raise ValueError("omega values must be positive")
            problem = FTProblem(
                n=self.n, p=self.p, sizes=self.sizes, errors=self.errors,
                original_size=self.original_size, omega=omega,
            )
            try:
                sol = heuristic(problem)
            except ValueError:
                continue
            blackout = prob_more_than_k_failures(self.n, sol.ms[0], self.p)
            points.append(PlanPoint(omega, sol, blackout))
        return points

    def recommend(
        self,
        requirement: ProtectionRequirement,
        *,
        omegas: list[float] | None = None,
    ) -> PlanPoint:
        """Cheapest frontier point meeting the requirement.

        "Cheapest" means lowest achieved overhead (not budget).  Raises
        :class:`ValueError` when nothing on the frontier qualifies —
        callers should then raise the budget sweep or refactor with more
        accuracy headroom.
        """
        candidates = [
            pt
            for pt in self.frontier(omegas=omegas)
            if pt.solution.expected_error <= requirement.max_expected_error
            and pt.blackout_probability <= requirement.max_blackout_probability
        ]
        if not candidates:
            raise ValueError(
                "no configuration meets the requirement within the sweep; "
                "widen the omega range or relax the targets"
            )
        return min(candidates, key=lambda pt: pt.solution.overhead)
