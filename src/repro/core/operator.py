"""Maintenance-aware proactive operation.

Scheduled maintenance is *known in advance* (§1 counts it among the
availability threats), which an operator can exploit: if an upcoming
window takes more systems down than a level tolerates (|W| > m_j), the
level will be unreachable for the whole window — unless its payload is
staged somewhere that stays up beforehand.

:class:`ProactiveOperator` implements that loop over an archive:

* :meth:`at_risk` — which (object, level) pairs a window would take out;
* :meth:`stage_for_window` — decode each at-risk level *now* (all
  fragments are still reachable) and park the payload on surviving
  systems as temporary staging copies, cheapest levels first, under a
  staging-capacity budget;
* :meth:`restore_with_staging` — restoration that falls back to staged
  payloads for levels the cluster cannot serve;
* :meth:`unstage` — drop the staging copies once the window passes.

Staging the top levels is cheap (s_1 << s_l) and protects exactly the
accuracy the paper's hierarchy prioritises, so the operator degrades
the window's impact instead of going dark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..storage import MaintenanceSchedule, StoredFragment
from .archive import Archive

__all__ = ["StagedCopy", "ProactiveOperator"]

#: Object-name prefix marking staged payload copies in the cluster.
_STAGE_PREFIX = "__staged__/"


@dataclass(frozen=True)
class StagedCopy:
    """One staged level payload: where it is parked."""

    object_name: str
    level: int
    system_id: int
    nbytes: int


@dataclass
class ProactiveOperator:
    """Operates an archive against a maintenance calendar."""

    archive: Archive
    schedule: MaintenanceSchedule
    staged: list[StagedCopy] = field(default_factory=list)

    # -- risk analysis -----------------------------------------------------

    def window_systems(self, start: float, end: float) -> list[int]:
        """Systems down at any point during [start, end)."""
        down: set[int] = set()
        for sid, windows in self.schedule.windows.items():
            if any(s < end and e > start for s, e in windows):
                down.add(sid)
        return sorted(down)

    def at_risk(self, start: float, end: float) -> list[tuple[str, int]]:
        """(object, level) pairs unrecoverable during the window."""
        down = set(self.window_systems(start, end))
        out = []
        for name in self.archive.names():
            rec = self.archive.rapids.catalog.get_object(name)
            for j, m in enumerate(rec.ft_config):
                if len(down) > m:
                    out.append((name, j))
        return out

    # -- staging ------------------------------------------------------------

    def stage_for_window(
        self, start: float, end: float, *, budget_bytes: float = float("inf")
    ) -> list[StagedCopy]:
        """Stage at-risk levels on surviving systems before the window.

        Levels are staged cheapest-first (the paper's hierarchy makes the
        top levels both cheapest and most valuable per byte), stopping at
        ``budget_bytes``.  Returns the copies created in this call.
        """
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        down = set(self.window_systems(start, end))
        cluster = self.archive.rapids.cluster
        survivors = [s for s in cluster.available_ids() if s not in down]
        if not survivors:
            raise RuntimeError("no system survives the window; cannot stage")
        rapids = self.archive.rapids
        todo = []
        for name, level in self.at_risk(start, end):
            rec = rapids.catalog.get_object(name)
            todo.append((rec.level_sizes[level], name, level))
        todo.sort()
        created: list[StagedCopy] = []
        spent = 0.0
        rr = 0
        already = {(c.object_name, c.level) for c in self.staged}
        for size, name, level in todo:
            if (name, level) in already:
                continue
            if spent + size > budget_bytes:
                continue
            payload = self._decode_level(name, level)
            target = survivors[rr % len(survivors)]
            rr += 1
            cluster[target].put(
                StoredFragment(
                    _STAGE_PREFIX + name, level, 0, len(payload), payload
                )
            )
            copy = StagedCopy(name, level, target, len(payload))
            created.append(copy)
            self.staged.append(copy)
            spent += size
        return created

    def _decode_level(self, name: str, level: int) -> bytes:
        from ..ec import ECConfig

        rapids = self.archive.rapids
        rec = rapids.catalog.get_object(name)
        cfg = ECConfig(rapids.cluster.n, rec.ft_config[level])
        sname = rec.level_storage_name(level)
        present = rapids.cluster.locate(sname, level)
        idx = sorted(present)[: cfg.k]
        if len(idx) < cfg.k:
            raise RuntimeError(
                f"level {level} of {name!r} already unrecoverable"
            )
        frags = {
            i: np.frombuffer(
                # rapidslint: disable-next=RPD111 -- fetch() goes through StorageSystem.get, which raises CorruptFragmentError on CRC mismatch
                rapids.cluster.fetch(sname, level, i).payload, np.uint8
            )
            for i in idx
        }
        return rapids.codec.decode_level(config=cfg, fragments=frags)

    # -- window-time restoration ----------------------------------------------

    def staged_payload(self, name: str, level: int) -> bytes | None:
        """Fetch a staged copy if one is reachable."""
        cluster = self.archive.rapids.cluster
        for copy in self.staged:
            if copy.object_name != name or copy.level != level:
                continue
            sys = cluster[copy.system_id]
            if sys.available and sys.has(_STAGE_PREFIX + name, level, 0):
                # rapidslint: disable-next=RPD111 -- StorageSystem.get verifies the stored CRC before returning the payload
                return sys.get(_STAGE_PREFIX + name, level, 0).payload
        return None

    def restore_with_staging(self, name: str):
        """Restore using fragments where possible and staged payloads for
        levels the failures took out.  Returns (data, levels_used)."""
        rapids = self.archive.rapids
        rec = rapids.catalog.get_object(name)
        from ..ec import ECConfig
        from .gathering import recoverable_levels

        failed = rapids.cluster.failed_ids()
        reachable = set(
            recoverable_levels(rec.ft_config, failed, rapids.cluster.n)
        )
        payloads: list[bytes] = []
        for j in range(rec.num_levels):
            if j in reachable:
                payloads.append(self._decode_level(name, j))
                continue
            staged = self.staged_payload(name, j)
            if staged is None:
                break  # components must form a prefix
            payloads.append(staged)
        if not payloads:
            return None, 0
        data = rapids._reconstruct(rec, payloads)
        return data, len(payloads)

    # -- cleanup ---------------------------------------------------------------

    def unstage(self) -> int:
        """Delete every staged copy that is still reachable; returns count."""
        cluster = self.archive.rapids.cluster
        removed = 0
        remaining = []
        for copy in self.staged:
            sys = cluster[copy.system_id]
            if sys.available and sys.has(
                _STAGE_PREFIX + copy.object_name, copy.level, 0
            ):
                sys.delete(_STAGE_PREFIX + copy.object_name, copy.level, 0)
                removed += 1
            else:
                remaining.append(copy)
        self.staged = remaining
        return removed
