"""Related-work baseline: demand-aware erasure-coding tiers (Zebra-like).

The paper's §6 contrasts RAPIDS with CoREC and Zebra, which diversify
redundancy *per object* by predicted access demand: hot objects get more
parity, cold ones less, under a global overhead budget.  The paper's
critique is twofold — demand must be predicted (and drifts), and the
approach ignores the *information content* of the data (an object is
still all-or-nothing).

This module implements that family faithfully enough to quantify the
critique: a :class:`DemandAwareTiering` scheme that (like Zebra) takes
only the overhead budget and demand estimates and assigns per-tier
parity automatically, plus the demand-weighted expected-error metric
that makes it comparable to RAPIDS on the same axis.  The companion
bench shows the two regimes: with oracle demand the tiering baseline is
competitive; when demand drifts, its weighted error degrades while
RAPIDS (which never consults demand) is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .availability import ec_unavailability

__all__ = ["DemandAwareTiering", "TierAssignment"]


@dataclass(frozen=True)
class TierAssignment:
    """Per-object erasure configuration chosen by the tiering scheme."""

    object_sizes: tuple[float, ...]
    demands: tuple[float, ...]
    ms: tuple[int, ...]  # parity per object
    n: int

    def storage_overhead(self) -> float:
        """Aggregate parity bytes over aggregate data bytes."""
        parity = sum(
            m / (self.n - m) * s for m, s in zip(self.ms, self.object_sizes)
        )
        return parity / sum(self.object_sizes)

    def weighted_expected_error(self, p: float, demands=None) -> float:
        """Demand-weighted expected error: requests to an unavailable
        object score 1.0 (all-or-nothing), available ones 0.0."""
        demands = self.demands if demands is None else tuple(demands)
        total = sum(demands)
        if total <= 0:
            raise ValueError("demands must have positive mass")
        return (
            sum(
                d * ec_unavailability(self.n, m, p)
                for d, m in zip(demands, self.ms)
            )
            / total
        )


class DemandAwareTiering:
    """Assign per-object parity by demand under an overhead budget.

    Greedy marginal allocation (the spirit of Zebra's automatic
    parameter selection): starting from one parity everywhere, repeatedly
    grant one more parity fragment to the object with the largest
    demand-weighted unavailability reduction per overhead byte, while
    the budget holds.
    """

    def __init__(self, n: int, p: float) -> None:
        if n < 3:
            raise ValueError("need at least 3 systems")
        if not 0 < p < 1:
            raise ValueError("p must be in (0, 1)")
        self.n = n
        self.p = p

    def assign(
        self,
        object_sizes: list[float],
        demands: list[float],
        omega: float,
    ) -> TierAssignment:
        if len(object_sizes) != len(demands):
            raise ValueError("sizes and demands must align")
        if any(s <= 0 for s in object_sizes) or any(d < 0 for d in demands):
            raise ValueError("sizes must be positive, demands non-negative")
        if omega <= 0:
            raise ValueError("omega must be positive")
        sizes = np.asarray(object_sizes, dtype=np.float64)
        dem = np.asarray(demands, dtype=np.float64)
        total = sizes.sum()
        ms = np.ones(len(sizes), dtype=int)

        def overhead(ms_arr):
            return float(
                sum(m / (self.n - m) * s for m, s in zip(ms_arr, sizes)) / total
            )

        if overhead(ms) > omega + 1e-12:
            raise ValueError("budget below one parity fragment per object")
        while True:
            best, best_gain = None, 0.0
            cur_overhead = overhead(ms)
            for i in range(len(sizes)):
                if ms[i] + 1 >= self.n:
                    continue
                cand = ms.copy()
                cand[i] += 1
                extra = overhead(cand) - cur_overhead
                if cur_overhead + extra > omega + 1e-12:
                    continue
                gain = dem[i] * (
                    ec_unavailability(self.n, int(ms[i]), self.p)
                    - ec_unavailability(self.n, int(ms[i]) + 1, self.p)
                )
                if extra <= 0:
                    continue
                score = gain / extra
                if score > best_gain:
                    best, best_gain = i, score
            if best is None:
                break
            ms[best] += 1
        return TierAssignment(
            object_sizes=tuple(sizes.tolist()),
            demands=tuple(dem.tolist()),
            ms=tuple(int(m) for m in ms),
            n=self.n,
        )
