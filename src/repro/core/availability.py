"""Availability and expected-error models (Eqs. 1, 2, 4 and 5).

All formulas assume ``n`` independently operated storage systems, each
unavailable with probability ``p`` (i.i.d. Bernoulli outages, §2.1).
Binomial tails are computed with scipy's regularised beta survival
function rather than explicit binomial sums, which stays numerically
stable for the large-n sweeps in the Fig. 2 bench.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "prob_more_than_k_failures",
    "duplication_unavailability",
    "ec_unavailability",
    "level_recovery_probability",
    "expected_relative_error",
    "duplication_storage_overhead",
    "ec_storage_overhead",
    "refactored_storage_overhead",
]


def _check_np(n: int, p: float) -> None:
    if n < 1:
        raise ValueError(f"need at least one system, got n={n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")


def prob_more_than_k_failures(n: int, k: int, p: float) -> float:
    """P(N > k) for N ~ Binomial(n, p)."""
    _check_np(n, p)
    if k >= n:
        return 0.0
    if k < 0:
        return 1.0
    return float(stats.binom.sf(k, n, p))


def duplication_unavailability(n: int, m: int, p: float) -> float:
    """Eq. 1: P(unavailable) with ``m`` replicas on ``m`` of ``n`` systems.

    The data is lost exactly when all m replica hosts are down, and the
    binomial sum in Eq. 1 marginalises over how many of the other n - m
    systems also failed — so it collapses to p**m.
    """
    _check_np(n, p)
    if not 1 <= m <= n:
        raise ValueError(f"need 1 <= m <= n, got m={m}")
    return float(p**m)


def ec_unavailability(n: int, m: int, p: float) -> float:
    """Eq. 2: P(unavailable) for an EC code with m parity on n systems."""
    _check_np(n, p)
    if not 0 <= m < n:
        raise ValueError(f"need 0 <= m < n, got m={m}")
    return prob_more_than_k_failures(n, m, p)


def level_recovery_probability(n: int, m_j: int, m_next: int, p: float) -> float:
    """Eq. 4: P(m_next < N <= m_j) — the data reconstructs with error e_j.

    ``m_next`` is m_{j+1}; pass -1 for the bottom level so the band
    includes N = 0.
    """
    _check_np(n, p)
    if m_next >= m_j:
        raise ValueError(f"need m_next < m_j, got {m_next} >= {m_j}")
    return float(stats.binom.cdf(m_j, n, p) - stats.binom.cdf(m_next, n, p))


def expected_relative_error(
    n: int, p: float, ms: list[int], errors: list[float], *, e0: float = 1.0
) -> float:
    """Eq. 5: expectation of the relative L-infinity error.

    Parameters
    ----------
    ms:
        Fault-tolerance configuration [m_1, ..., m_l], strictly
        decreasing, with n > m_1 and m_l >= 1.
    errors:
        [e_1, ..., e_l]: error when reconstructing with levels 1..j.
    e0:
        Penalty error when no level is recoverable (1.0 in the paper).
    """
    _check_np(n, p)
    if len(ms) != len(errors):
        raise ValueError("ms and errors must align")
    if not ms:
        raise ValueError("need at least one level")
    if any(a <= b for a, b in zip(ms, ms[1:])):
        raise ValueError(f"ms must be strictly decreasing, got {ms}")
    if ms[0] >= n or ms[-1] < 1:
        raise ValueError(f"need n > m_1 and m_l >= 1, got {ms} with n={n}")
    total = e0 * prob_more_than_k_failures(n, ms[0], p)
    # Bottom level: N <= m_l.
    total += errors[-1] * float(stats.binom.cdf(ms[-1], n, p))
    for j in range(len(ms) - 1):
        total += errors[j] * level_recovery_probability(n, ms[j], ms[j + 1], p)
    return float(total)


# -- storage overheads (ratio of redundant bytes to original bytes) --------


def duplication_storage_overhead(m: int) -> float:
    """DP with m replicas total stores m - 1 redundant copies."""
    if m < 1:
        raise ValueError("need at least the original copy")
    return float(m - 1)


def ec_storage_overhead(k: int, m: int) -> float:
    """Plain EC with k data + m parity fragments wastes m/k."""
    if k < 1 or m < 0:
        raise ValueError(f"invalid EC config k={k}, m={m}")
    return m / k


def refactored_storage_overhead(
    sizes: list[float], ms: list[int], n: int, original_size: float
) -> float:
    """Eq. 6 numerator over S: sum_j (m_j / (n - m_j)) s_j / S.

    Note the paper counts only *parity* bytes as overhead, consistent
    with its definition for plain EC; the refactored data fragments
    themselves are smaller than the original data, which is where the
    additional savings beyond Eq. 6 come from.
    """
    if len(sizes) != len(ms):
        raise ValueError("sizes and ms must align")
    if original_size <= 0:
        raise ValueError("original_size must be positive")
    total = 0.0
    for s, m in zip(sizes, ms):
        if not 0 <= m < n:
            raise ValueError(f"invalid m={m} for n={n}")
        total += m / (n - m) * s
    return total / original_size
