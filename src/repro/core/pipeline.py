"""The RAPIDS pipeline: the paper's four components wired together (§4).

``prepare`` runs the data preparation phase — read, refactor (pMGARD
substitute), fault-tolerance optimisation (Algorithm 1), erasure coding
per level, fragment-file writes, metadata registration, and WAN
distribution — and ``restore`` runs the restoration phase — gathering
optimisation, fragment gathering, erasure decoding, and progressive
reconstruction.  Every step is individually timed so the Fig. 5/6
per-operation breakdowns fall out of the reports.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..chaos.degraded import DegradedRestore, LevelFailure
from ..chaos.injector import InjectedFault
from ..chaos.retry import RetryPolicy
from ..ec import ECConfig, ErasureCodec
from ..formats import crc32, write_fragment_file
from ..healing.ledger import DurabilityLedger, LedgerEntry
from ..metadata import FragmentRecord, MetadataCatalog, ObjectRecord
from ..metadata.kvstore import CorruptionError
from ..parallel.threads import default_workers, thread_map
from ..refactor import Refactorer
from ..storage import StorageCluster
from ..storage.system import CorruptFragmentError, UnavailableError
from ..transfer import phase_latency, refactored_distribution
from .availability import expected_relative_error, refactored_storage_overhead
from .ft_optimizer import FTProblem, FTSolution, heuristic
from .gathering import (
    GatheringOutcome,
    gathering_latency,
    naive_strategy,
    optimized_strategy,
    random_strategy,
    recoverable_levels,
)

__all__ = ["RAPIDS", "PrepareReport", "RestoreReport"]

#: Failure classes graceful degradation may absorb per level: injected
#: faults, outages, missing/corrupt fragments and records, and the
#: decode/deserialisation errors a corrupt payload can surface as.
#: Anything outside this tuple (a genuine programming error) propagates.
_DEGRADABLE = (
    InjectedFault,
    UnavailableError,
    CorruptionError,
    KeyError,
    ValueError,
    OSError,
    RuntimeError,
    struct.error,
    zlib.error,
)

#: Errors a single fragment fetch may fail with; each such fragment is
#: treated as an erasure and replaced from a spare system.
#: :class:`~repro.storage.system.CorruptFragmentError` is a
#: RuntimeError, so checksum failures — raised by the storage read path
#: itself or by the catalog cross-check below — are absorbed the same
#: way and additionally tallied on the degraded report.
_FETCH_ERRORS = (KeyError, ValueError, OSError, RuntimeError)


@dataclass
class PrepareReport:
    """Everything the preparation phase produced and how long it took."""

    name: str
    ft_config: list[int]
    level_sizes: list[int]
    level_errors: list[float]
    storage_overhead: float
    expected_error: float
    distribution_latency: float
    network_bytes: float
    timings: dict[str, float] = field(default_factory=dict)
    #: Engine-specific diagnostics (e.g. the process pipeline's arena
    #: stats and pipelined-archival schedule); empty for the thread path.
    extra: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())


@dataclass
class RestoreReport:
    """Result of the restoration phase.

    ``degraded`` is ``None`` for a clean restore; under faults it is the
    :class:`~repro.chaos.DegradedRestore` report describing what failed,
    what was retried, and which level prefix was actually delivered.
    """

    name: str
    data: np.ndarray | None
    levels_used: int
    achieved_error: float
    gathering_latency: float
    timings: dict[str, float] = field(default_factory=dict)
    degraded: DegradedRestore | None = None

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())


class RAPIDS:
    """The full RAPIDS system over a storage cluster and metadata catalog.

    Parameters
    ----------
    cluster:
        The geo-distributed storage systems (with bandwidth estimates).
    catalog:
        Metadata catalog; owns reconstruction info and fragment locations.
    refactorer:
        The progressive refactorer (defaults to 4 components).
    omega:
        Storage-overhead budget for the FT optimiser (Eq. 6).
    p:
        Per-system outage probability (0.01 per the OLCF report).
    ec_workers:
        Thread fan-out for erasure encode/decode across levels (and,
        through the codec, across fragment chunks).  ``None`` (the
        default) uses the machine's CPU count — the parallel path is the
        default; pass 1 to force the inline serial path.
    refactor_workers:
        Thread fan-out for the refactoring stages (transform tiles,
        per-plane zlib jobs, component (de)serialisation).  Defaults
        like ``ec_workers``; every worker count produces bit-identical
        refactored output.  When an explicit ``refactorer`` is supplied
        its own ``workers`` setting wins unless ``refactor_workers`` is
        also given explicitly.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        catalog: MetadataCatalog,
        *,
        refactorer: Refactorer | None = None,
        omega: float = 0.25,
        p: float = 0.01,
        ec_workers: int | None = None,
        refactor_workers: int | None = None,
        injector=None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.cluster = cluster
        self.catalog = catalog
        if refactorer is None:
            self.refactorer = Refactorer(4, workers=refactor_workers)
        else:
            self.refactorer = refactorer
            if refactor_workers is not None:
                self.refactorer.workers = refactor_workers
        self.refactor_workers = self.refactorer.workers
        self.omega = omega
        self.p = p
        self.ec_workers = ec_workers if ec_workers is not None else default_workers()
        self.codec = ErasureCodec(cluster.n)
        #: Per-fetch retry policy used by restoration; base=0 keeps the
        #: retries immediate (there is no simulated clock on this path).
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=3, base=0.0)
        #: Retry policy for WAN distribution through a transfer service
        #: (simulated clock; no backoff keeps the latency model pure).
        self.distribution_retry = RetryPolicy(max_attempts=32, base=0.0)
        #: Durability ledger (see :mod:`repro.healing`): ``prepare``
        #: records each level's expected fragment set; ``restore``
        #: consults the scrubbed headroom; the scrubber and repair
        #: engine keep it honest.
        self.ledger = DurabilityLedger(catalog)
        #: Optional per-fetch observability hook: called with
        #: ``(system_id, RetryOutcome)`` after every checked fragment
        #: fetch.  The archive service wires this to its per-system
        #: circuit breakers — retry exhaustion trips a breaker, a clean
        #: fetch closes it.
        self.fetch_observer = None
        self.injector = None
        if injector is not None:
            self.attach_injector(injector)

    def attach_injector(self, injector) -> None:
        """Attach (or clear) a chaos injector on the whole stack: the
        storage cluster, the metadata store, the codec, and the pipeline's
        own phase-boundary checks (sites ``pipeline.prepare``/``restore``)."""
        self.injector = injector
        self.cluster.attach_injector(injector)
        attach = getattr(self.catalog, "attach_injector", None)
        if attach is not None:
            attach(injector)
        self.codec.attach_injector(injector)

    # -- preparation phase -------------------------------------------------

    def prepare(
        self,
        name: str,
        data: np.ndarray | str | Path,
        *,
        fragment_dir: str | Path | None = None,
        distribute: bool = True,
        transfer_service=None,
        measure_errors: bool = True,
        parallelism: str | None = None,
        processes: int | None = None,
        tile_planes: int | None = None,
        max_inflight: int | None = None,
    ) -> PrepareReport:
        """Run the full data-preparation phase for one data object.

        ``data`` is the array itself or the path of a ``.npy`` file (the
        process engine streams file sources tile-by-tile, never holding
        the whole object resident).

        ``fragment_dir`` additionally writes every fragment to a
        self-describing file (the HDF5/ADIOS step of §4.1); fragments are
        always placed into the cluster when ``distribute`` is true.

        ``transfer_service`` optionally routes the distribution through a
        :class:`repro.transfer.globus.GlobusService` (one bundled task
        per destination, §4.2 style) instead of the closed-form latency
        model; failed tasks are retried until delivered and the service's
        clock advance is reported as the distribution latency.

        ``measure_errors=False`` reports the closed-form error bounds
        instead of measured per-prefix errors and switches to the
        *pipelined* preparation path: the fault-tolerance solver runs on
        the exact serialised sizes before any payload bytes exist, and
        component ``j``'s erasure encode overlaps component ``j + 1``'s
        serialisation.  Timing keys are unchanged; serialisation time is
        accounted under ``ec_encode`` (the window it overlaps).

        ``parallelism`` selects the execution engine: ``"process"`` runs
        the streaming tile pipeline of :mod:`repro.parallel.procpipe`
        (shared-memory transport, bounded peak RSS, bound-derived level
        errors), ``"thread"`` the in-process path above, ``"none"`` the
        thread path with every worker pool forced serial.  ``None``
        (the default) picks ``"process"`` for objects of at least
        ``AUTO_PROCESS_THRESHOLD`` bytes, else ``"thread"``; a
        ``transfer_service`` always uses the thread path (the service
        owns distribution).  ``processes``, ``tile_planes`` and
        ``max_inflight`` tune the process engine and are ignored by the
        other modes.
        """
        from ..parallel import procpipe

        is_path = isinstance(data, (str, Path))
        nbytes = os.path.getsize(data) if is_path else int(data.nbytes)
        mode = procpipe.resolve_mode(parallelism, nbytes)
        if mode == "process" and transfer_service is not None:
            mode = "thread"
        if mode == "process" and not is_path:
            data = np.asarray(data)
            if data.ndim < 1 or data.shape[0] < 2:
                mode = "thread"  # too small/degenerate to tile
        if mode == "process":
            return procpipe.prepare_tiled(
                self, name, data,
                processes=processes,
                tile_planes=tile_planes,
                max_inflight=max_inflight,
                distribute=distribute,
                fragment_dir=fragment_dir,
            )
        if is_path:
            data = np.load(data)
        if mode == "none":
            with self._serial_workers():
                return self._prepare_threaded(
                    name, data,
                    fragment_dir=fragment_dir, distribute=distribute,
                    transfer_service=transfer_service,
                    measure_errors=measure_errors,
                )
        return self._prepare_threaded(
            name, data,
            fragment_dir=fragment_dir, distribute=distribute,
            transfer_service=transfer_service, measure_errors=measure_errors,
        )

    @contextmanager
    def _serial_workers(self):
        """Force every worker pool to width 1 (``parallelism="none"``)."""
        saved = (self.ec_workers, self.refactor_workers, self.refactorer.workers)
        self.ec_workers = 1
        self.refactor_workers = 1
        self.refactorer.workers = 1
        try:
            yield
        finally:
            self.ec_workers, self.refactor_workers, self.refactorer.workers = saved

    def _prepare_threaded(
        self,
        name: str,
        data: np.ndarray,
        *,
        fragment_dir: str | Path | None = None,
        distribute: bool = True,
        transfer_service=None,
        measure_errors: bool = True,
    ) -> PrepareReport:
        """The in-process preparation engine (thread-level overlap only)."""
        timings: dict[str, float] = {}
        if self.injector is not None:
            self.injector.check("pipeline.prepare", name=name)

        t0 = time.perf_counter()
        data = np.ascontiguousarray(data)
        timings["read"] = time.perf_counter() - t0

        if measure_errors:
            t0 = time.perf_counter()
            obj = self.refactorer.refactor(data)
            timings["refactor"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            sol = self._optimize_ft(obj.sizes, obj.errors, data.nbytes)
            timings["ft_optimize"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            encoded = self._encode_levels(obj.payloads, sol.ms)
            timings["ec_encode"] = time.perf_counter() - t0
        else:
            t0 = time.perf_counter()
            stream = self.refactorer.refactor_stream(data)
            obj = stream.obj
            timings["refactor"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            sol = self._optimize_ft(stream.sizes, obj.errors, data.nbytes)
            timings["ft_optimize"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            encoded = self._encode_levels_streamed(stream, sol.ms)
            timings["ec_encode"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        if fragment_dir is not None:
            self._write_fragment_files(name, encoded, Path(fragment_dir))
        timings["write"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        self._register(name, obj, sol)
        for j, enc in enumerate(encoded):
            # Serialise each fragment exactly once; placement, checksum,
            # ledger, and (above) fragment files all share the same blobs.
            blobs = enc.fragment_blobs()
            checksums = [crc32(blob) for blob in blobs]
            if distribute:
                self.cluster.place_level(name, j, blobs, checksums=checksums)
            for idx, blob in enumerate(blobs):
                self.catalog.put_fragment(
                    FragmentRecord(
                        name, j, idx, idx, len(blob),
                        checksum=checksums[idx],
                    )
                )
            if distribute:
                # The durability ledger commits the expected fragment
                # set at full m_j headroom: the contract the scrubber
                # verifies and the repair engine restores.
                self.ledger.record(
                    LedgerEntry(
                        object_name=name,
                        level=j,
                        n=enc.config.n,
                        m=enc.config.m,
                        checksums=checksums,
                        nbytes=[len(blob) for blob in blobs],
                        placement=list(range(len(blobs))),
                        headroom=enc.config.m,
                    )
                )
        timings["metadata"] = time.perf_counter() - t0

        dist_latency = 0.0
        network_bytes = 0.0
        if distribute:
            reqs = refactored_distribution(
                [float(s) for s in obj.sizes], sol.ms, self.cluster.n,
                self.cluster.bandwidths,
            )
            if transfer_service is not None:
                dist_latency, network_bytes = self._distribute_via_service(
                    name, reqs, transfer_service
                )
            else:
                res = phase_latency(reqs, self.cluster.bandwidths)
                dist_latency = res.makespan
                network_bytes = res.total_bytes

        return PrepareReport(
            name=name,
            ft_config=sol.ms,
            level_sizes=obj.sizes,
            level_errors=obj.errors,
            storage_overhead=refactored_storage_overhead(
                [float(s) for s in obj.sizes], sol.ms, self.cluster.n,
                data.nbytes,
            ),
            expected_error=sol.expected_error,
            distribution_latency=dist_latency,
            network_bytes=network_bytes,
            timings=timings,
        )

    def _encode_levels(self, payloads, ms) -> list:
        """Erasure-code every level, fanning levels out over threads.

        The planned GF(256) kernels release the GIL in their gather/XOR
        inner loops, so a thread pool overlaps the per-level encodes
        without pickling fragment buffers; ``ec_workers=1`` runs inline.
        """
        jobs = list(enumerate(zip(payloads, ms)))

        def _encode(job):
            j, (payload, m) = job
            return self.codec.encode_level(payload, m, level_index=j)

        return thread_map(_encode, jobs, workers=min(self.ec_workers, len(jobs)))

    def _encode_levels_streamed(self, stream, ms) -> list:
        """Erasure-code levels as the refactor stream serialises them.

        The main thread drives the stream — serialising component ``j``
        appends its payload to ``stream.obj.payloads`` — and immediately
        submits the payload to a worker pool, so the GIL-releasing EC
        kernels encode level ``j`` while the main thread is still
        assembling level ``j + 1``'s bytes (the §4.1 preparation
        pipeline).  Results come back in level order.
        """
        workers = max(1, min(self.ec_workers, len(ms)))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(self.codec.encode_level, payload, ms[j], level_index=j)
                for j, payload in stream
            ]
            return [f.result() for f in futures]

    def _distribute_via_service(self, name, reqs, service) -> tuple[float, float]:
        """Push one bundled task per destination through a GlobusService,
        retrying failures under the shared retry policy until everything
        is delivered (§4.2)."""
        from ..transfer.globus import deliver_all

        # Local source endpoint: model the user site as destination 0's
        # peer — the service only needs *a* source id; contention among
        # these submissions models the shared uplink.
        source = 0
        try:
            return deliver_all(
                service,
                [
                    (source, r.system_id, r.nbytes, f"{name}->{r.system_id}")
                    for r in reqs
                ],
                policy=self.distribution_retry,
            )
        except RuntimeError as exc:
            raise RuntimeError(
                f"distribution of {name!r} kept failing: {exc}"
            ) from exc

    def _optimize_ft(
        self, sizes: list[int], errors: list[float], original_size: int
    ) -> FTSolution:
        problem = FTProblem(
            n=self.cluster.n,
            p=self.p,
            sizes=tuple(float(s) for s in sizes),
            errors=tuple(errors),
            original_size=float(original_size),
            omega=self.omega,
        )
        return heuristic(problem)

    def _write_fragment_files(self, name, encoded, outdir: Path) -> None:
        outdir.mkdir(parents=True, exist_ok=True)
        safe = name.replace("/", "_").replace(":", "_")
        for j, enc in enumerate(encoded):
            for idx, blob in enumerate(enc.fragment_blobs()):
                write_fragment_file(
                    outdir / f"{safe}.l{j}.f{idx}.rdc",
                    blob,
                    object_name=name,
                    level=j,
                    index=idx,
                    k=enc.config.k,
                    m=enc.config.m,
                )

    def _register(self, name, obj, sol: FTSolution) -> None:
        self.catalog.put_object(
            ObjectRecord(
                name=name,
                shape=list(obj.shape),
                dtype=obj.dtype,
                level_sizes=obj.sizes,
                level_errors=obj.errors,
                ft_config=sol.ms,
                n_systems=self.cluster.n,
                data_max=obj.data_max,
                correction=obj.correction,
                extra={
                    "plans": [
                        [list(p.fine_shape), list(p.coarse_shape), list(p.coarsened_axes)]
                        for p in obj.plans
                    ],
                    "expected_error": sol.expected_error,
                },
            )
        )

    # -- restoration phase ---------------------------------------------------

    def restore(
        self,
        name: str,
        *,
        strategy: str = "optimized",
        solver_budget: float = 1.0,
        charged_solver_time: float | None = None,
        seed: int | None = 0,
        target_error: float | None = None,
        degrade: bool = True,
        avoid_systems=(),
        parallelism: str | None = None,
        processes: int | None = None,
        max_inflight: int | None = None,
        record_access: bool = False,
    ) -> RestoreReport:
        """Run the restoration phase against the cluster's current failures.

        ``strategy`` is one of ``random`` / ``naive`` / ``optimized``.
        Restores as many levels as the surviving systems allow and
        reconstructs the best available approximation.

        ``target_error`` enables error-controlled retrieval: only the
        level prefix whose recorded error meets the target is gathered,
        saving the (dominant) lower-level transfer bytes when the
        analysis tolerates a looser accuracy.

        ``avoid_systems`` treats the listed system ids as failed for
        gathering purposes — the archive service passes its open
        circuit breakers here so restores stop rediscovering a down
        backend.  Advisory, not a fence: the spare-fragment path may
        still touch an avoided system when nothing else can serve a
        stripe (availability wins).

        ``degrade`` (the default) turns fault-driven failures into
        graceful degradation: when faults exceed a level's tolerance
        ``m_j``, restore delivers the deepest still-recoverable level
        prefix with its recorded error bound and attaches a structured
        :class:`~repro.chaos.DegradedRestore` report instead of raising.
        ``degrade=False`` restores raise-on-failure behaviour.  A missing
        object always raises :class:`KeyError` — that is a caller error,
        not a fault.

        Objects prepared by the process engine carry per-tile chunk
        metadata and restore through :mod:`repro.parallel.procpipe`
        (per-(level, tile) EC decode, pooled tile reconstruction into a
        shared output).  ``parallelism`` / ``processes`` /
        ``max_inflight`` tune that path the same way as in
        :meth:`prepare`; they are ignored for untiled objects.
        """
        timings: dict[str, float] = {}
        failures: list[LevelFailure] = []
        faults_before = len(self.injector.log) if self.injector is not None else 0
        if target_error is not None and target_error <= 0:
            raise ValueError("target_error must be positive")

        try:
            if self.injector is not None:
                self.injector.check("pipeline.restore", name=name)
        except InjectedFault as exc:
            if not degrade:
                raise
            failures.append(LevelFailure(-1, "pipeline", repr(exc)))
            return self._degraded_empty(name, failures, faults_before)

        meta = self.retry_policy.call(
            lambda: self.catalog.get_object(name),
            retry_on=(RuntimeError, OSError),
        )
        if not meta.ok:
            if not degrade:
                raise meta.error
            failures.append(
                LevelFailure(-1, "metadata", repr(meta.error),
                             attempts=meta.attempts, retried=meta.retried)
            )
            return self._degraded_empty(name, failures, faults_before)
        rec = meta.value
        if record_access:
            # Advisory access-frequency telemetry for the control
            # plane's flash-crowd detection.  Off by default so replay
            # digests of existing chaos plans are unperturbed (every
            # extra kvstore put shifts site-scoped occurrence counters).
            try:
                self.catalog.record_access(name)
            except _DEGRADABLE:
                if not degrade:
                    raise
        failed = self.cluster.failed_ids()
        if avoid_systems:
            failed = sorted(set(failed) | {int(s) for s in avoid_systems})
        n = self.cluster.n

        levels = recoverable_levels(rec.ft_config, failed, n)
        if target_error is not None and levels:
            needed = next(
                (
                    j + 1
                    for j, e in enumerate(rec.level_errors)
                    if e <= target_error
                ),
                len(rec.level_errors),
            )
            levels = levels[:needed]
        levels = self._cap_by_headroom(name, levels)
        if not levels:
            return RestoreReport(
                name=name, data=None, levels_used=0, achieved_error=1.0,
                gathering_latency=0.0, timings={"gather_optimize": 0.0},
            )

        sizes = [float(s) for s in rec.level_sizes]
        t0 = time.perf_counter()
        outcome = self._select(strategy, sizes, rec.ft_config, failed,
                               solver_budget, charged_solver_time, seed,
                               max_levels=len(levels))
        timings["gather_optimize"] = time.perf_counter() - t0
        # §4.3: record each selected transfer's (simulated) throughput so
        # future gathering optimisations adapt to bandwidth variation.
        # The telemetry is advisory — a metadata fault while recording it
        # must not take down the data path.
        try:
            self._record_throughputs(outcome)
        except _DEGRADABLE:
            if not degrade:
                raise

        t0 = time.perf_counter()
        level_ids = sorted(outcome.levels_included)
        gathered: dict[int, dict[int, np.ndarray]] = {}
        crc_erasures: list[int] = []
        for col, j in enumerate(level_ids):
            try:
                gathered[j] = self._gather_level(
                    j, col, outcome, rec, crc_erasures
                )
            except _DEGRADABLE as exc:
                if not degrade:
                    raise
                # Progressive reconstruction needs a contiguous level
                # prefix: a lost level makes every deeper one useless.
                failures.append(LevelFailure(j, "gather", repr(exc)))
                break
        timings["gather"] = time.perf_counter() - t0
        latency = gathering_latency(
            outcome, sizes, rec.ft_config, self.cluster.bandwidths
        )

        t0 = time.perf_counter()
        good_ids = sorted(gathered)
        if "procpipe" in rec.extra:
            from ..parallel import procpipe

            payload_rows = procpipe.decode_tiled(
                self, rec, good_ids, gathered, degrade, failures
            )
            timings["ec_decode"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            nbytes = int(
                np.prod(rec.shape, dtype=np.int64)
                * np.dtype(rec.dtype).itemsize
            )
            mode = procpipe.resolve_mode(parallelism, nbytes)
            data, used = procpipe.reconstruct_tiled(
                self, rec, good_ids, payload_rows,
                processes=processes if mode == "process" else 1,
                max_inflight=max_inflight,
                degrade=degrade, failures=failures,
            )
            timings["reconstruct"] = time.perf_counter() - t0
        else:
            payloads = self._decode_prefix(
                good_ids, gathered, rec, degrade, failures
            )
            timings["ec_decode"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            data = None
            while payloads:
                try:
                    data = self._reconstruct(rec, payloads)
                    break
                except _DEGRADABLE as exc:
                    if not degrade:
                        raise
                    failures.append(
                        LevelFailure(good_ids[len(payloads) - 1], "pipeline", repr(exc))
                    )
                    payloads = payloads[:-1]
            timings["reconstruct"] = time.perf_counter() - t0

            used = len(payloads) if data is not None else 0
        achieved = rec.level_errors[used - 1] if used else 1.0
        degraded = None
        if failures:
            recovered = good_ids[:used]
            degraded = DegradedRestore(
                name=name,
                requested_levels=level_ids,
                recovered_levels=recovered,
                abandoned_levels=[j for j in level_ids if j not in recovered],
                failures=failures,
                error_bound=achieved if used else None,
                injected_faults=self._injected_since(faults_before),
                corrupt_fragments=len(crc_erasures),
            )
        return RestoreReport(
            name=name,
            data=data,
            levels_used=used,
            achieved_error=achieved,
            gathering_latency=latency,
            timings=timings,
            degraded=degraded,
        )

    def _cap_by_headroom(self, name: str, levels: list[int]) -> list[int]:
        """Drop the level suffix the ledger knows to be unrecoverable.

        A scrubbed headroom below zero means more fragments of that
        level are damaged at rest than its ``m_j`` tolerates; gathering
        it (and, per progressive reconstruction, anything deeper) would
        only burn transfers before failing.  The ledger is advisory:
        any fault reading it leaves the level list untouched.
        """
        try:
            for pos, j in enumerate(levels):
                entry = self.ledger.get(name, j)
                if entry is not None and entry.headroom < 0:
                    return levels[:pos]
        except _DEGRADABLE:
            pass
        return levels

    def _degraded_empty(
        self, name: str, failures: list[LevelFailure], faults_before: int
    ) -> RestoreReport:
        """A nothing-recovered report for object-wide restore failures."""
        return RestoreReport(
            name=name, data=None, levels_used=0, achieved_error=1.0,
            gathering_latency=0.0, timings={"gather_optimize": 0.0},
            degraded=DegradedRestore(
                name=name,
                failures=failures,
                injected_faults=self._injected_since(faults_before),
            ),
        )

    def _injected_since(self, start: int) -> dict:
        """Counts per (site, effect) of faults injected since ``start``."""
        counts: dict[str, int] = {}
        if self.injector is not None:
            for fr in self.injector.log[start:]:
                k = f"{fr.site}:{fr.effect}"
                counts[k] = counts.get(k, 0) + 1
        return counts

    def _decode_prefix(
        self, level_ids, gathered, rec, degrade: bool, failures: list[LevelFailure]
    ) -> list[bytes]:
        """Decode the gathered levels, truncating at the first failure.

        Without an injector the levels decode on the thread pool as
        before; with one attached (or after a threaded failure, to find
        the surviving prefix) decoding runs serially in level order, so
        the plan's occurrence windows see a deterministic sequence and
        the injector is never consulted from worker threads.
        """
        if not level_ids:
            return []
        n = self.cluster.n

        def _decode(j: int) -> bytes:
            cfg = ECConfig(n, rec.ft_config[j])
            return self.codec.decode_level(
                config=cfg, fragments=gathered[j], level_index=j
            )

        if self.injector is None:
            try:
                return thread_map(
                    _decode, level_ids,
                    workers=min(self.ec_workers, len(level_ids)),
                )
            except _DEGRADABLE:
                if not degrade:
                    raise
        payloads: list[bytes] = []
        for j in level_ids:
            try:
                payloads.append(_decode(j))
            except _DEGRADABLE as exc:
                if not degrade:
                    raise
                failures.append(LevelFailure(j, "decode", repr(exc)))
                break
        return payloads

    def restore_progressive(
        self,
        name: str,
        *,
        strategy: str = "naive",
        solver_budget: float = 1.0,
        seed: int | None = 0,
    ):
        """Generator yielding successively refined reconstructions.

        Yields one :class:`RestoreReport` per recoverable level, in
        order — the Fig. 1(b) refinement loop: the first (tiny) level
        arrives quickly as a preview, and each further yield folds in
        the next level's fragments.  ``gathering_latency`` on the j-th
        yield accounts the transfers for levels 1..j only, so callers
        can plot quality-vs-time curves.
        """
        rec = self.catalog.get_object(name)
        failed = self.cluster.failed_ids()
        total = len(
            recoverable_levels(rec.ft_config, failed, self.cluster.n)
        )
        for j in range(1, total + 1):
            yield self.restore(
                name,
                strategy=strategy,
                solver_budget=solver_budget,
                seed=seed,
                target_error=rec.level_errors[j - 1],
            )

    def _record_throughputs(self, outcome: GatheringOutcome) -> None:
        per_system = outcome.x.sum(axis=1)
        bw = self.cluster.bandwidths
        for i in np.nonzero(per_system)[0]:
            # equal-share model: each of the c_i requests saw B_i / c_i,
            # and the component de-contends to the endpoint bandwidth.
            self.catalog.record_throughput(int(i), float(bw[i]))

    def _select(
        self, strategy, sizes, ms, failed, budget, charged, seed,
        *, max_levels: int | None = None,
    ) -> GatheringOutcome:
        if strategy == "adaptive":
            # use catalog EWMA estimates where history exists
            from .adaptive import BandwidthTracker

            tracker = BandwidthTracker(self.catalog, self.cluster.bandwidths)
            bw = tracker.estimates()
            return optimized_strategy(
                sizes, ms, bw, failed,
                time_budget=budget, charged_time=charged, seed=seed,
                max_levels=max_levels,
            )
        bw = self.cluster.bandwidths
        if strategy == "random":
            return random_strategy(
                sizes, ms, bw, failed, seed=seed, max_levels=max_levels
            )
        if strategy == "naive":
            return naive_strategy(sizes, ms, bw, failed, max_levels=max_levels)
        if strategy == "optimized":
            return optimized_strategy(
                sizes, ms, bw, failed,
                time_budget=budget, charged_time=charged, seed=seed,
                max_levels=max_levels,
            )
        raise ValueError(f"unknown gathering strategy: {strategy!r}")

    def _fetch_checked(
        self, name: str, j: int, i: int, crc_tally: list[int]
    ) -> np.ndarray:
        """Fetch fragment ``i`` of level ``j`` and verify its checksum.

        Runs under the pipeline retry policy, so *transient* injected
        faults (occurrence windows that close) heal in place; persistent
        ones exhaust the retries and surface to the caller as erasures.
        The storage read path already verifies the store's own CRC
        (raising :class:`CorruptFragmentError` before corrupt bytes get
        here); the catalog cross-check below additionally catches a
        stale or swapped fragment whose store record is self-consistent.
        Checksum failures are tallied into ``crc_tally`` for the
        degraded report's fault counts.
        """
        from ..formats import verify

        def attempt() -> np.ndarray:
            sf = self.cluster.fetch(name, j, i)
            try:
                expected = self.catalog.get_fragment(name, j, i).checksum
            except KeyError:
                expected = 0
            if expected and not verify(sf.payload, expected):
                raise CorruptFragmentError(
                    f"fragment {i} of level {j} failed its checksum"
                )
            return np.frombuffer(sf.payload, dtype=np.uint8)

        out = self.retry_policy.call(attempt, retry_on=_FETCH_ERRORS)
        if self.fetch_observer is not None:
            self.fetch_observer(i, out)
        if not out.ok:
            if isinstance(out.error, CorruptFragmentError):
                crc_tally.append(i)
            raise out.error
        return out.value

    def _gather_level(
        self, j: int, col: int,
        outcome: GatheringOutcome, rec: ObjectRecord,
        crc_tally: list[int],
    ) -> dict[int, np.ndarray]:
        """Fetch one level's selected fragments, verifying integrity.

        Fragment index i lives on system i (the default placement), so
        selecting system i for level j means fetching fragment i of j.
        A fragment that cannot be fetched cleanly — checksum mismatch
        (bit rot, torn write), injected read error, system that dropped
        out after selection — is treated as an *erasure*: it is dropped
        and replaced by a fragment from a spare available system, which
        the EC math tolerates exactly like an outage.  Raises when fewer
        than ``k`` clean fragments remain.
        """
        # Fragments live under the level's *storage name*: the object
        # name for generation 0, or the migration-bumped generation the
        # object record points at (the atomic-flip indirection of the
        # control plane's live re-encoding).
        sname = rec.level_storage_name(j)
        frags: dict[int, np.ndarray] = {}
        lost: list[int] = []
        selected = [int(i) for i in np.nonzero(outcome.x[:, col])[0]]
        for i in selected:
            try:
                frags[i] = self._fetch_checked(sname, j, i, crc_tally)
            except _FETCH_ERRORS:
                lost.append(i)
        needed = self.cluster.n - rec.ft_config[j]
        if lost:
            spares = [
                idx
                for idx in sorted(self.cluster.locate(sname, j))
                if idx not in set(selected)
            ]
            for idx in spares:
                if len(frags) >= needed:
                    break
                try:
                    frags[idx] = self._fetch_checked(sname, j, idx, crc_tally)
                except _FETCH_ERRORS:
                    continue
        if len(frags) < needed:
            raise RuntimeError(
                f"level {j} of {rec.name!r}: {len(lost)} fragment(s) lost, "
                f"{len(frags)}/{needed} clean after spares — cannot decode"
            )
        return frags

    def _reconstruct(self, rec: ObjectRecord, payloads: list[bytes]) -> np.ndarray:
        from ..refactor.grid import LevelPlan
        from ..refactor.refactorer import RefactoredObject

        plans = [
            LevelPlan(tuple(f), tuple(c), tuple(a))
            for f, c, a in rec.extra["plans"]
        ]
        obj = RefactoredObject(
            shape=tuple(rec.shape),
            dtype=rec.dtype,
            plans=plans,
            payloads=payloads,
            errors=rec.level_errors[: len(payloads)],
            bounds=[],
            data_max=rec.data_max,
            correction=rec.correction,
        )
        return self.refactorer.reconstruct(obj)
