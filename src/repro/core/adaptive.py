"""Adaptive bandwidth estimation for the gathering optimiser (§4.3).

The metadata component records the throughput of every transfer; those
observations refresh the ``B_i`` parameters of the Eq. 10 model, so the
optimiser adapts when WAN bandwidth drifts away from the historical
Globus-log averages.  :class:`BandwidthTracker` is that loop: it blends
the static prior with the catalog's EWMA history and feeds the result
into any gathering strategy.
"""

from __future__ import annotations

import numpy as np

from ..metadata import MetadataCatalog
from .gathering import GatheringOutcome, optimized_strategy

__all__ = ["BandwidthTracker", "adaptive_strategy"]


class BandwidthTracker:
    """Blends prior bandwidth estimates with observed transfer throughput.

    Parameters
    ----------
    catalog:
        The metadata catalog whose throughput history backs the EWMA.
    prior:
        Static per-system estimates used until observations arrive
        (the §5.1.2 log-derived profile).
    staleness_horizon:
        Age (in :meth:`tick` units) at which a system's EWMA estimate
        has decayed to ``1/e`` of its distance from the prior.  Without
        one (the default), an estimate pins forever — a system idle for
        a month still reports the throughput of its last transfer.  With
        one, ``estimates()`` blends ``prior + (ewma - prior) * exp(-age
        / horizon)``, so a long-idle system decays monotonically back
        toward its prior.  The clock is advanced explicitly via
        :meth:`tick` (the control plane ticks once per epoch); there is
        no wall clock, so replays stay deterministic.
    """

    def __init__(
        self,
        catalog: MetadataCatalog,
        prior: np.ndarray,
        *,
        staleness_horizon: float | None = None,
    ) -> None:
        prior = np.asarray(prior, dtype=np.float64)
        if np.any(prior <= 0):
            raise ValueError("prior bandwidths must be positive")
        if staleness_horizon is not None and staleness_horizon <= 0:
            raise ValueError("staleness_horizon must be positive")
        self.catalog = catalog
        self.prior = prior
        self.staleness_horizon = staleness_horizon
        self._clock = 0.0
        self._last_seen: dict[int, float] = {}

    @property
    def n(self) -> int:
        return len(self.prior)

    def observe(self, system_id: int, nbytes: float, seconds: float) -> None:
        """Record one completed transfer's user-perceived throughput."""
        if not 0 <= system_id < self.n:
            raise ValueError(f"unknown system {system_id}")
        if nbytes <= 0 or seconds <= 0:
            raise ValueError("need positive bytes and duration")
        self.catalog.record_throughput(system_id, nbytes / seconds)
        self._last_seen[system_id] = self._clock

    def tick(self, steps: float = 1.0) -> None:
        """Advance the staleness clock (one call per epoch/round)."""
        if steps < 0:
            raise ValueError("cannot tick backwards")
        self._clock += steps

    def age(self, system_id: int) -> float:
        """Ticks since the last observation of ``system_id`` (0 when the
        history predates this tracker instance: trust it until idle)."""
        return self._clock - self._last_seen.get(system_id, self._clock)

    def observe_outcome(
        self,
        outcome: GatheringOutcome,
        sizes: list[float],
        ms: list[int],
        true_bandwidths: np.ndarray,
    ) -> None:
        """Record the throughputs a gathering run would have observed
        under ``true_bandwidths`` (used by simulations: the tracker only
        ever sees per-transfer observations, never the ground truth)."""
        per_system = outcome.x.sum(axis=1)
        for col, j in enumerate(outcome.levels_included):
            frag = sizes[j] / (self.n - ms[j])
            for i in np.nonzero(outcome.x[:, col])[0]:
                # Equal-share model: the request saw B_i / c_i.  The
                # gathering component launched those c_i requests itself,
                # so it de-contends the observation and records the
                # inferred endpoint bandwidth B_i, not the share.
                share = true_bandwidths[i] / per_system[i]
                seconds = frag / share
                self.observe(int(i), frag * per_system[i], seconds)

    def estimates(self) -> np.ndarray:
        """Current per-system estimates: EWMA where history exists
        (decayed toward the prior by staleness), otherwise the prior."""
        out = self.prior.copy()
        for i in range(self.n):
            est = self.catalog.bandwidth_estimate(i)
            if est is None:
                continue
            if self.staleness_horizon is not None:
                weight = float(np.exp(-self.age(i) / self.staleness_horizon))
                est = self.prior[i] + (est - self.prior[i]) * weight
            out[i] = est
        return out

    def estimation_error(self, true_bandwidths: np.ndarray) -> float:
        """Mean relative estimation error against a ground truth."""
        est = self.estimates()
        true = np.asarray(true_bandwidths, dtype=np.float64)
        return float(np.mean(np.abs(est - true) / true))


def adaptive_strategy(
    tracker: BandwidthTracker,
    sizes: list[float],
    ms: list[int],
    failed: list[int] | None = None,
    **kwargs,
) -> GatheringOutcome:
    """The Optimized strategy running on the tracker's live estimates."""
    return optimized_strategy(
        sizes, ms, tracker.estimates(), failed, **kwargs
    )
