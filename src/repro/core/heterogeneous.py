"""Heterogeneous per-system outage probabilities (Poisson-binomial Eq. 5).

The paper's model assumes every system fails with the same p = 0.01,
but its own calibration data says otherwise: OLCF's Alpine was down
1.07% of 2020 while ALCF's Theta Lustre was down 5.2% (§5.1.4).  A real
geo-distributed deployment mixes facilities of very different
reliability.

Because the placement is symmetric (one fragment per system) and
Reed-Solomon tolerates *any* m losses, availability depends on the
failure-probability vector only through the distribution of the failure
*count* N — which for independent non-identical systems is
Poisson-binomial.  This module computes that pmf exactly (the standard
O(n^2) dynamic program) and generalises every availability quantity;
with a uniform vector it reproduces the binomial formulas bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "poisson_binomial_pmf",
    "prob_more_than_k_failures_hetero",
    "expected_relative_error_hetero",
]


def poisson_binomial_pmf(ps) -> np.ndarray:
    """pmf of N = number of failures among independent Bernoulli(p_i).

    Returns an array of length n + 1; entry k is P(N = k).  Exact DP:
    fold each system into the distribution one at a time.
    """
    ps = np.asarray(ps, dtype=np.float64)
    if ps.ndim != 1 or ps.size < 1:
        raise ValueError("ps must be a non-empty 1-D probability vector")
    if np.any((ps < 0) | (ps > 1)):
        raise ValueError("probabilities must be in [0, 1]")
    pmf = np.zeros(ps.size + 1)
    pmf[0] = 1.0
    for i, p in enumerate(ps):
        # P_new(k) = P(k) * (1 - p) + P(k - 1) * p
        pmf[1 : i + 2] = pmf[1 : i + 2] * (1.0 - p) + pmf[: i + 1] * p
        pmf[0] *= 1.0 - p
    return pmf


def prob_more_than_k_failures_hetero(ps, k: int) -> float:
    """P(N > k) under heterogeneous outage probabilities."""
    pmf = poisson_binomial_pmf(ps)
    if k >= len(pmf) - 1:
        return 0.0
    if k < 0:
        return 1.0
    return float(pmf[k + 1 :].sum())


def expected_relative_error_hetero(
    ps, ms: list[int], errors: list[float], *, e0: float = 1.0
) -> float:
    """Eq. 5 generalised to a per-system probability vector.

    Identical band structure: error e_j applies when
    ``m_{j+1} < N <= m_j``, e0 when ``N > m_1``, e_l when ``N <= m_l``.
    """
    ps = np.asarray(ps, dtype=np.float64)
    n = ps.size
    if len(ms) != len(errors) or not ms:
        raise ValueError("ms and errors must align and be non-empty")
    if any(a <= b for a, b in zip(ms, ms[1:])):
        raise ValueError(f"ms must be strictly decreasing, got {ms}")
    if ms[0] >= n or ms[-1] < 1:
        raise ValueError(f"need n > m_1 and m_l >= 1, got {ms} with n={n}")
    pmf = poisson_binomial_pmf(ps)
    total = e0 * float(pmf[ms[0] + 1 :].sum())
    total += errors[-1] * float(pmf[: ms[-1] + 1].sum())
    for j in range(len(ms) - 1):
        total += errors[j] * float(pmf[ms[j + 1] + 1 : ms[j] + 1].sum())
    return total
