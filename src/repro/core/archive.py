"""Campaign archive management: many objects, one cluster.

The RAPIDS pipeline handles one data object at a time; a real campaign
stores hundreds (every variable of every snapshot).  The archive layer
batches preparation, tracks aggregate storage accounting, assesses the
whole archive's health after outages, and orchestrates repairs —
re-encoding lost fragments from survivors (§4.2's repair path) across
every object at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ec import ECConfig
from ..storage import StoredFragment
from .gathering import recoverable_levels
from .pipeline import RAPIDS, PrepareReport

__all__ = ["Archive", "ArchiveHealth", "ObjectHealth"]


@dataclass
class ObjectHealth:
    """Health of one archived object under the current failures."""

    name: str
    levels_total: int
    levels_recoverable: int
    best_error: float
    fragments_lost: int

    @property
    def fully_healthy(self) -> bool:
        return self.levels_recoverable == self.levels_total

    @property
    def dark(self) -> bool:
        """True when not even level 1 is recoverable."""
        return self.levels_recoverable == 0


@dataclass
class ArchiveHealth:
    """Aggregate archive health report."""

    objects: list[ObjectHealth] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.objects)

    @property
    def fully_healthy(self) -> int:
        return sum(o.fully_healthy for o in self.objects)

    @property
    def degraded(self) -> int:
        return sum((not o.fully_healthy) and (not o.dark) for o in self.objects)

    @property
    def dark(self) -> int:
        return sum(o.dark for o in self.objects)

    @property
    def worst_error(self) -> float:
        return max((o.best_error for o in self.objects), default=0.0)


class Archive:
    """Multi-object archive over one RAPIDS pipeline instance."""

    def __init__(self, rapids: RAPIDS) -> None:
        self.rapids = rapids

    # -- ingestion ---------------------------------------------------------

    def ingest(
        self, objects: dict[str, np.ndarray], **prepare_kwargs
    ) -> dict[str, PrepareReport]:
        """Prepare every object; returns per-object reports."""
        if not objects:
            raise ValueError("nothing to ingest")
        out = {}
        for name, data in objects.items():
            out[name] = self.rapids.prepare(name, data, **prepare_kwargs)
        return out

    def names(self) -> list[str]:
        return self.rapids.catalog.list_objects()

    # -- accounting -----------------------------------------------------------

    def stored_bytes(self) -> int:
        """Total bytes resident across the cluster for all objects."""
        return self.rapids.cluster.total_stored_bytes()

    def storage_overhead(self) -> float:
        """Aggregate parity overhead across the archive (Eq. 6 summed)."""
        total_parity = 0.0
        total_original = 0.0
        n = self.rapids.cluster.n
        for name in self.names():
            rec = self.rapids.catalog.get_object(name)
            for s, m in zip(rec.level_sizes, rec.ft_config):
                total_parity += m / (n - m) * s
            total_original += float(np.prod(rec.shape)) * np.dtype(
                rec.dtype
            ).itemsize
        return total_parity / total_original if total_original else 0.0

    # -- health ------------------------------------------------------------------

    def health(self) -> ArchiveHealth:
        """Assess every object against the cluster's current failures."""
        failed = self.rapids.cluster.failed_ids()
        n = self.rapids.cluster.n
        report = ArchiveHealth()
        for name in self.names():
            rec = self.rapids.catalog.get_object(name)
            levels = recoverable_levels(rec.ft_config, failed, n)
            lost = 0
            for j in range(rec.num_levels):
                present = self.rapids.cluster.locate(name, j)
                lost += n - len(present)
            best = rec.level_errors[len(levels) - 1] if levels else 1.0
            report.objects.append(
                ObjectHealth(
                    name=name,
                    levels_total=rec.num_levels,
                    levels_recoverable=len(levels),
                    best_error=best,
                    fragments_lost=lost,
                )
            )
        return report

    # -- integrity scrub (fsck) ---------------------------------------------------

    def scrub(self, *, repair_corrupt: bool = True) -> dict:
        """Verify every fragment at rest against the durability ledger.

        Delegates to the anti-entropy stack (:mod:`repro.healing`): the
        scrubber sweeps the ledger and classifies damage, and — by
        default — the repair engine regenerates whatever was lost or
        rotten over the minimal-read path.  Returns the legacy
        ``{"checked", "corrupt", "repaired"}`` counts; use
        :func:`repro.healing.scrub_and_repair` directly for the full
        structured reports.
        """
        from ..healing import scrub_and_repair

        scrub_report, repair_report = scrub_and_repair(
            self.rapids.cluster,
            self.rapids.catalog,
            ledger=self.rapids.ledger,
            retry_policy=self.rapids.retry_policy,
            repair=repair_corrupt,
        )
        return {
            "checked": scrub_report.fragments_scanned,
            "corrupt": scrub_report.counts().get("corrupt", 0),
            "repaired": repair_report.repaired if repair_report else 0,
        }

    # -- repair --------------------------------------------------------------------

    def repair(self) -> int:
        """Rebuild every missing fragment reachable from survivors.

        Fragments whose level has fewer than k survivors are skipped
        (unrecoverable until more systems return).  Returns the number
        of fragments rebuilt.  Repaired fragments go back to their home
        system (fragment i on system i) when it is up.
        """
        n = self.rapids.cluster.n
        rebuilt = 0
        for name in self.names():
            rec = self.rapids.catalog.get_object(name)
            for level in range(rec.num_levels):
                cfg = ECConfig(n, rec.ft_config[level])
                present = self.rapids.cluster.locate(name, level)
                missing = [i for i in range(n) if i not in present]
                if not missing or len(present) < cfg.k:
                    continue
                # Gather exactly k clean sources; fetch() verifies the
                # store CRC, so a corrupt survivor raises and the next
                # present fragment takes its slot instead of poisoning
                # the rebuild.
                sources: dict[int, np.ndarray] = {}
                for idx in sorted(present):
                    if len(sources) >= cfg.k:
                        break
                    try:
                        # rapidslint: disable-next=RPD111 -- fetch() verifies the stored CRC and raises CorruptFragmentError, caught below
                        payload = self.rapids.cluster.fetch(
                            name, level, idx
                        ).payload
                    except (KeyError, ValueError, OSError, RuntimeError):
                        continue
                    sources[idx] = np.frombuffer(payload, dtype=np.uint8)
                if len(sources) < cfg.k:
                    continue
                for target in missing:
                    if not self.rapids.cluster[target].available:
                        continue
                    frag = self.rapids.codec.repair_fragment(
                        cfg, sources, target
                    )
                    self.rapids.cluster[target].put(
                        StoredFragment(
                            name, level, target, frag.nbytes, frag.tobytes()
                        )
                    )
                    self.rapids.catalog.relocate_fragment(
                        name, level, target, target
                    )
                    rebuilt += 1
        return rebuilt
