"""Fault-tolerance configuration optimization (§3.2, Algorithm 1).

Finds the per-level parity counts ``[m_1, ..., m_l]`` minimising the
expected relative L-infinity error (Eq. 5) subject to the storage
overhead budget (Eq. 6) and the ordering constraint
``n > m_1 > ... > m_l >= 1``.

Mathematically every parity increment strictly lowers the expected error
(by ``(e_j - e_{j-1}) * P(N = m_j + 1) < 0``), but at p = 0.01 the
improvements shrink below double precision within a few increments, so
the objective landscape is numerically flat near the optimum and many
configurations tie.  Both solvers therefore optimise
``(expected error, storage overhead)`` lexicographically — among the
minimal-error configurations, prefer the one wasting the least storage —
which makes the optimum essentially unique and is the comparison Table 3
implies when it reports that the heuristic finds "the same optimal
configurations" as brute force.

Two solvers:

* :func:`brute_force` enumerates every strictly decreasing configuration
  (O(U^4) candidates for the four-level case, Eq. 8);
* :func:`heuristic` implements the paper's Algorithm 1 idea: start from
  the minimal-overhead ladder derived from the Eq. 9 initialiser, then
  incrementally add parity level by level while the budget allows —
  realised here as best-improvement greedy (take the increment with the
  largest error reduction per pass) followed by a pruning pass that
  removes increments whose contribution is below numerical resolution.
  O(U * l^2) model evaluations versus the brute force's O(U^l).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

import numpy as np

from .availability import refactored_storage_overhead

__all__ = [
    "FTProblem",
    "FTSolution",
    "brute_force",
    "heuristic",
    "initial_configuration",
    "repair_configuration",
    "warm_start",
]


@dataclass(frozen=True)
class FTProblem:
    """One instance of the fault-tolerance configuration problem.

    Attributes
    ----------
    n:
        Number of geo-distributed storage systems.
    p:
        Per-system outage probability.
    sizes:
        Refactored level sizes s_1 < ... < s_l (bytes).
    errors:
        Reconstruction errors e_1 > ... > e_l.
    original_size:
        Size S of the original data object (bytes).
    omega:
        Storage-overhead budget (Eq. 6 threshold).
    """

    n: int
    p: "float | tuple[float, ...]"
    sizes: tuple[float, ...]
    errors: tuple[float, ...]
    original_size: float
    omega: float

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.errors):
            raise ValueError("sizes and errors must align")
        l = len(self.sizes)
        if l < 1:
            raise ValueError("need at least one level")
        if self.n <= l:
            raise ValueError(
                f"need n > l for a strictly decreasing config (n={self.n}, l={l})"
            )
        if self.omega <= 0:
            raise ValueError("omega must be positive")
        # Precompute the failure-count pmf once; the heuristic's
        # incremental error deltas are O(1) lookups into it.  A scalar p
        # gives the paper's binomial model; a per-system probability
        # vector gives the heterogeneous Poisson-binomial extension.
        if np.ndim(self.p) == 0:
            from scipy import stats

            pmf = stats.binom.pmf(range(self.n + 1), self.n, self.p)
        else:
            from .heterogeneous import poisson_binomial_pmf

            ps = tuple(float(v) for v in self.p)  # normalise for hashing
            object.__setattr__(self, "p", ps)
            if len(ps) != self.n:
                raise ValueError(
                    f"per-system probabilities must have length n={self.n}"
                )
            pmf = poisson_binomial_pmf(ps)
        object.__setattr__(self, "_pmf", tuple(float(v) for v in pmf))

    @property
    def l(self) -> int:
        return len(self.sizes)

    def overhead(self, ms: list[int]) -> float:
        return refactored_storage_overhead(
            list(self.sizes), ms, self.n, self.original_size
        )

    def objective(self, ms: list[int]) -> float:
        """Expected relative error (Eq. 5) from the precomputed pmf.

        Band structure: e0 = 1 for N > m_1, e_j for m_{j+1} < N <= m_j,
        e_l for N <= m_l — identical for binomial and Poisson-binomial
        failure-count distributions.
        """
        if any(a <= b for a, b in zip(ms, ms[1:])):
            raise ValueError(f"ms must be strictly decreasing, got {ms}")
        if ms[0] >= self.n or ms[-1] < 1:
            raise ValueError(f"invalid configuration {ms} for n={self.n}")
        pmf = self._pmf
        total = sum(pmf[ms[0] + 1 :])
        total += self.errors[-1] * sum(pmf[: ms[-1] + 1])
        for j in range(self.l - 1):
            total += self.errors[j] * sum(pmf[ms[j + 1] + 1 : ms[j] + 1])
        return float(total)

    def valid(self, ms: list[int]) -> bool:
        if len(ms) != self.l:
            return False
        if any(a <= b for a, b in zip(ms, ms[1:])):
            return False
        if ms[0] >= self.n or ms[-1] < 1:
            return False
        return self.overhead(ms) <= self.omega + 1e-12

    def error_delta(self, ms: list[int], x: int) -> float:
        """Exact change in expected error from incrementing m_x by one.

        Moving the band boundary at level x re-labels the N = m_x + 1
        failure count from error e_{x-1} (or e0 = 1 for the top level)
        down to e_x, so the delta is ``(e_x - e_above) * pmf(m_x + 1)``
        — always negative.  O(1) versus the O(n) full Eq. 5 evaluation,
        which is what makes the heuristic's Table 3 speedup possible.
        """
        e_above = 1.0 if x == 0 else self.errors[x - 1]
        return (self.errors[x] - e_above) * self._pmf[ms[x] + 1]


@dataclass
class FTSolution:
    """Solver output: the configuration, its objective, and search stats."""

    ms: list[int]
    expected_error: float
    overhead: float
    evaluations: int
    elapsed: float
    #: Which search produced the configuration: ``"cold"`` (Eq. 9
    #: initialiser) or ``"warm"`` (seeded from an incumbent config).
    origin: str = "cold"


#: Relative tolerance below which two expected errors are considered tied.
_REL_EPS = 1e-9


def _better(val: float, ovh: float, best_val: float, best_ovh: float) -> bool:
    """Lexicographic (expected error, overhead) comparison with tolerance."""
    if val < best_val * (1.0 - _REL_EPS):
        return True
    if val <= best_val * (1.0 + _REL_EPS) and ovh < best_ovh - 1e-15:
        return True
    return False


def brute_force(problem: FTProblem) -> FTSolution:
    """Enumerate all strictly decreasing configurations under the budget."""
    start = time.perf_counter()
    best_ms, best_val, best_ovh = None, float("inf"), float("inf")
    evals = 0
    # Strictly decreasing sequences == combinations of {1..n-1} sorted desc.
    for combo in itertools.combinations(range(problem.n - 1, 0, -1), problem.l):
        ms = list(combo)
        ovh = problem.overhead(ms)
        if ovh > problem.omega + 1e-12:
            continue
        val = problem.objective(ms)
        evals += 1
        if best_ms is None or _better(val, ovh, best_val, best_ovh):
            best_ms, best_val, best_ovh = ms, val, ovh
    if best_ms is None:
        raise ValueError(
            "no feasible configuration: the overhead budget is too tight "
            "even for the minimal ladder"
        )
    return FTSolution(
        best_ms, best_val, best_ovh, evals, time.perf_counter() - start
    )


def initial_configuration(problem: FTProblem) -> list[int]:
    """The Eq. 9 initialiser: the largest minimal ladder under the budget.

    Finds the maximum ``m*`` such that the tight ladder
    ``[m* + l - 1, ..., m* + 1, m*]`` satisfies the overhead constraint,
    which lets the heuristic skip every candidate with m_l < m*.
    """
    l = problem.l
    best = None
    for m_star in range(1, problem.n - l + 1):
        ladder = [m_star + l - 1 - j for j in range(l)]
        if ladder[0] >= problem.n:
            break
        if problem.overhead(ladder) <= problem.omega + 1e-12:
            best = ladder
        else:
            break  # overhead is monotone in m*, no larger m* can fit
    if best is None:
        raise ValueError(
            "no feasible configuration: even the m*=1 ladder exceeds omega"
        )
    return best


def _increment_feasible(problem: FTProblem, ms: list[int], x: int) -> bool:
    """Can level x take one more parity fragment without breaking the
    ordering or the budget?"""
    upper = problem.n - 1 if x == 0 else ms[x - 1] - 1
    if ms[x] + 1 > upper:
        return False
    cand = list(ms)
    cand[x] += 1
    return problem.overhead(cand) <= problem.omega + 1e-12


def heuristic(
    problem: FTProblem, *, initial: list[int] | None = None
) -> FTSolution:
    """Algorithm 1 realised as greedy growth + pruning from the Eq. 9 ladder.

    Phase 1 (grow): repeatedly apply the single feasible parity increment
    with the largest expected-error reduction, until every remaining
    increment's improvement is below numerical resolution or infeasible.
    Phase 2 (prune): repeatedly remove the parity increment whose removal
    keeps the expected error tied while freeing the most storage — this
    lands on the minimal-overhead representative of the optimal plateau,
    matching the brute force's lexicographic (error, overhead) objective.
    The fixpoint-termination mirrors the `M == M_prev` loop in the
    paper's pseudocode.
    """
    start = time.perf_counter()
    ms = list(initial) if initial is not None else initial_configuration(problem)
    if not problem.valid(ms):
        raise ValueError(f"initial configuration {ms} is infeasible")
    evals = 1
    cur_val = problem.objective(ms)

    # Phase 1: best-improvement growth using the O(1) analytic deltas.
    # Moves are *prefix increments* — raise m_1..m_x together, the move
    # shape of the paper's Algorithm 1 inner loop ("foreach 1 <= x <
    # l_curr: m_x += 1").  Single-level moves are the x-depth-one case;
    # deeper chains are what climb past the ordering staircase when the
    # initial ladder is tight (consecutive values block single steps).
    while True:
        best_depth, best_delta = None, 0.0
        for depth in range(problem.l):
            cand = list(ms)
            delta = 0.0
            for x in range(depth + 1):
                delta += problem.error_delta(cand, x)
                cand[x] += 1
            evals += 1
            if cand[0] >= problem.n:
                continue
            if problem.overhead(cand) > problem.omega + 1e-12:
                continue
            if delta < best_delta and -delta > _REL_EPS * cur_val:
                best_depth, best_delta = depth, delta
        if best_depth is None:
            break
        for x in range(best_depth + 1):
            ms[x] += 1
        cur_val += best_delta

    # Phase 2: prune numerically useless parity (minimise overhead among
    # ties).  Removing one parity from level x raises the error by
    # -error_delta(decremented config); accept while that stays below
    # numerical resolution, taking the largest overhead gain first.
    while True:
        best_x, best_gain = None, 0.0
        for x in range(problem.l):
            lower = ms[x + 1] + 1 if x < problem.l - 1 else 1
            if ms[x] - 1 < lower:
                continue
            cand = list(ms)
            cand[x] -= 1
            rise = -problem.error_delta(cand, x)
            evals += 1
            if rise > _REL_EPS * cur_val:
                continue  # removal would measurably hurt accuracy
            gain = problem.overhead(ms) - problem.overhead(cand)
            if gain > best_gain + 1e-15:
                best_x, best_gain = x, gain
        if best_x is None:
            break
        ms[best_x] -= 1
    return FTSolution(
        ms, problem.objective(ms), problem.overhead(ms), evals,
        time.perf_counter() - start,
    )


def repair_configuration(
    problem: FTProblem, ms: "list[int] | tuple[int, ...]"
) -> list[int] | None:
    """Project an incumbent configuration onto ``problem``'s feasible set.

    An incumbent solved under *yesterday's* parameters (different n, p,
    sizes, or omega) may violate today's ordering bounds or overhead
    budget.  This clamps each level into the strictly decreasing ladder
    ``n > m_1 > ... > m_l >= 1`` and then sheds parity — largest
    overhead relief first — until the Eq. 6 budget holds.  Returns
    ``None`` when no repair exists (wrong level count, or even the
    minimal ladder busts the budget), signalling the caller to fall back
    to a cold solve.
    """
    l = problem.l
    if len(ms) != l:
        return None
    out = [int(m) for m in ms]
    # Bottom-up clamp: m_l in [1, n-l], each higher level strictly above
    # the one below and at most n-1-x.  n > l guarantees the bounds are
    # non-empty, so this always yields a valid ladder.
    out[l - 1] = min(max(out[l - 1], 1), problem.n - l)
    for x in range(l - 2, -1, -1):
        out[x] = min(max(out[x], out[x + 1] + 1), problem.n - 1 - x)
    # Shed parity until the overhead budget holds: repeatedly decrement
    # the level whose decrement frees the most storage while keeping the
    # ladder strictly decreasing.
    while problem.overhead(out) > problem.omega + 1e-12:
        best_x, best_gain = None, 0.0
        for x in range(l):
            lower = out[x + 1] + 1 if x < l - 1 else 1
            if out[x] - 1 < lower:
                continue
            cand = list(out)
            cand[x] -= 1
            gain = problem.overhead(out) - problem.overhead(cand)
            if gain > best_gain + 1e-15:
                best_x, best_gain = x, gain
        if best_x is None:
            return None  # already the minimal ladder; budget infeasible
        out[best_x] -= 1
    return out


def warm_start(
    problem: FTProblem,
    incumbent: "list[int] | tuple[int, ...] | None",
    *,
    budget_evals: int | None = None,
) -> FTSolution:
    """Re-solve under drifted parameters, seeded from the incumbent.

    The incumbent ``(m_1, ..., m_l)`` is repaired onto the new problem's
    feasible set (see :func:`repair_configuration`) and used as the
    heuristic's starting point.  Because the grow phase only takes
    improving moves and the prune phase only removes parity whose
    contribution is below numerical resolution, the warm solution is
    never worse than the (repaired) incumbent under the drifted
    parameters — the property the control plane's reconfiguration loop
    relies on.

    ``budget_evals`` bounds the solve in *model evaluations* — the
    deterministic proxy for solve time (a wall-clock budget would make
    replay runs diverge).  When the warm solve leaves budget to spare
    (or no budget is set), a cold solve runs as well and the
    lexicographically better of the two wins; an unrepairable incumbent
    always falls back to the cold solve.
    """
    seed = repair_configuration(problem, incumbent) if incumbent is not None else None
    if seed is None:
        return heuristic(problem)
    warm = heuristic(problem, initial=seed)
    warm.origin = "warm"
    if budget_evals is not None and warm.evaluations >= budget_evals:
        return warm
    cold = heuristic(problem)
    if _better(cold.expected_error, cold.overhead,
               warm.expected_error, warm.overhead):
        cold.evaluations += warm.evaluations
        cold.elapsed += warm.elapsed
        return cold
    warm.evaluations += cold.evaluations
    warm.elapsed += cold.elapsed
    return warm
