"""Baseline methods: data duplication (DP) and plain erasure coding (EC).

These are the two existing approaches RAPIDS is evaluated against
(§2.1, §5.2).  Both implement the same prepare/restore interface as the
RAPIDS pipeline so every bench can sweep the three methods uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ec import ErasureCodec
from ..storage import StorageCluster
from ..transfer import (
    TransferRequest,
    duplication_distribution,
    ec_distribution,
    phase_latency,
)
from .availability import (
    duplication_storage_overhead,
    duplication_unavailability,
    ec_storage_overhead,
    ec_unavailability,
)

__all__ = ["MethodReport", "DuplicationMethod", "PlainECMethod"]


@dataclass
class MethodReport:
    """Common accounting emitted by every method's prepare/restore."""

    method: str
    storage_overhead: float
    network_bytes: float
    distribution_latency: float = 0.0
    gathering_latency: float = 0.0
    expected_error: float = float("nan")
    timings: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)


class DuplicationMethod:
    """Keep ``replicas`` full copies (original + extras) on m of n systems."""

    name = "DP"

    def __init__(self, replicas: int = 3) -> None:
        if replicas < 2:
            raise ValueError("duplication needs at least 2 replicas")
        self.replicas = replicas

    def expected_error(self, n: int, p: float) -> float:
        """E[e] = 1.0 * P(unavailable): the data is all-or-nothing."""
        return duplication_unavailability(n, self.replicas, p)

    def prepare(
        self,
        data_bytes: float,
        bandwidths: np.ndarray,
        *,
        n: int | None = None,
        p: float = 0.01,
    ) -> MethodReport:
        """Distribute the extra copies; returns overhead/latency accounting."""
        n = n if n is not None else len(bandwidths)
        reqs = duplication_distribution(data_bytes, self.replicas - 1, bandwidths)
        res = phase_latency(reqs, bandwidths)
        return MethodReport(
            method=self.name,
            storage_overhead=duplication_storage_overhead(self.replicas),
            network_bytes=res.total_bytes,
            distribution_latency=res.makespan,
            expected_error=self.expected_error(n, p),
        )

    def restore(
        self,
        data_bytes: float,
        bandwidths: np.ndarray,
        *,
        failed: list[int] | None = None,
    ) -> MethodReport:
        """Pull one replica from the fastest surviving replica holder."""
        failed = set(failed or [])
        order = np.argsort(bandwidths)[::-1]
        holders = [int(i) for i in order[: self.replicas - 1]]
        alive = [i for i in holders if i not in failed]
        if not alive:
            raise RuntimeError("all replica holders are unavailable")
        src = alive[0]
        res = phase_latency([TransferRequest(src, data_bytes)], bandwidths)
        return MethodReport(
            method=self.name,
            storage_overhead=duplication_storage_overhead(self.replicas),
            network_bytes=data_bytes,
            gathering_latency=res.makespan,
        )


class PlainECMethod:
    """A single (k, m) Reed-Solomon code over the whole object."""

    name = "EC"

    def __init__(self, k: int = 12, m: int = 4) -> None:
        if k < 1 or m < 0:
            raise ValueError(f"invalid EC parameters k={k}, m={m}")
        self.k = k
        self.m = m
        self.codec = ErasureCodec(k + m)

    @property
    def n_fragments(self) -> int:
        return self.k + self.m

    def expected_error(self, n: int, p: float) -> float:
        """E[e] = 1.0 * P(more than m concurrent failures)."""
        return ec_unavailability(n, self.m, p)

    def prepare(
        self,
        data_bytes: float,
        bandwidths: np.ndarray,
        *,
        n: int | None = None,
        p: float = 0.01,
    ) -> MethodReport:
        n = n if n is not None else len(bandwidths)
        reqs = ec_distribution(data_bytes, self.k, self.m, bandwidths)
        res = phase_latency(reqs, bandwidths)
        return MethodReport(
            method=self.name,
            storage_overhead=ec_storage_overhead(self.k, self.m),
            network_bytes=res.total_bytes,
            distribution_latency=res.makespan,
            expected_error=self.expected_error(n, p),
        )

    def restore(
        self,
        data_bytes: float,
        bandwidths: np.ndarray,
        *,
        failed: list[int] | None = None,
    ) -> MethodReport:
        """Gather k fragments from the fastest surviving systems."""
        failed = set(failed or [])
        alive = [i for i in range(self.n_fragments) if i not in failed]
        if len(alive) < self.k:
            raise RuntimeError(
                f"only {len(alive)} fragments reachable, need {self.k}"
            )
        order = sorted(alive, key=lambda i: -bandwidths[i])[: self.k]
        frag = data_bytes / self.k
        res = phase_latency(
            [TransferRequest(i, frag) for i in order], bandwidths
        )
        return MethodReport(
            method=self.name,
            storage_overhead=ec_storage_overhead(self.k, self.m),
            network_bytes=frag * self.k,
            gathering_latency=res.makespan,
        )

    # -- physical encode/decode (used by the end-to-end tests) ------------

    def encode_to_cluster(
        self, name: str, payload: bytes, cluster: StorageCluster
    ) -> None:
        enc = self.codec.encode_level(payload, self.m, level_index=0)
        cluster.place_level(name, 0, [f.tobytes() for f in enc.fragments])

    def decode_from_cluster(self, name: str, cluster: StorageCluster) -> bytes:
        loc = cluster.locate(name, 0)
        frags: dict[int, np.ndarray] = {}
        for idx in sorted(loc)[: self.k]:
            sf = cluster.fetch(name, 0, idx)
            # rapidslint: disable-next=RPD111 -- fetch() verifies the stored CRC in StorageSystem.get before returning
            frags[idx] = np.frombuffer(sf.payload, dtype=np.uint8)
        from ..ec import ECConfig

        return self.codec.decode_level(
            config=ECConfig(self.n_fragments, self.m), fragments=frags
        )
