"""RAPIDS core: availability models, FT-configuration optimisation,
gathering strategies, baselines, and the end-to-end pipeline."""

from .availability import (
    duplication_storage_overhead,
    duplication_unavailability,
    ec_storage_overhead,
    ec_unavailability,
    expected_relative_error,
    level_recovery_probability,
    prob_more_than_k_failures,
    refactored_storage_overhead,
)
from .adaptive import BandwidthTracker, adaptive_strategy
from .archive import Archive, ArchiveHealth, ObjectHealth
from .baselines import DuplicationMethod, MethodReport, PlainECMethod
from .ft_optimizer import (
    FTProblem,
    FTSolution,
    brute_force,
    heuristic,
    initial_configuration,
    repair_configuration,
    warm_start,
)
from .gathering import (
    GatheringOutcome,
    gathering_latency,
    naive_strategy,
    optimized_strategy,
    random_strategy,
    recoverable_levels,
)
from .heterogeneous import (
    expected_relative_error_hetero,
    poisson_binomial_pmf,
    prob_more_than_k_failures_hetero,
)
from .operator import ProactiveOperator, StagedCopy
from .pipeline import RAPIDS, PrepareReport, RestoreReport
from .planner import PlanPoint, ProtectionPlanner, ProtectionRequirement

__all__ = [
    "RAPIDS",
    "BandwidthTracker",
    "adaptive_strategy",
    "Archive",
    "ArchiveHealth",
    "ObjectHealth",
    "ProtectionPlanner",
    "ProtectionRequirement",
    "PlanPoint",
    "ProactiveOperator",
    "StagedCopy",
    "poisson_binomial_pmf",
    "prob_more_than_k_failures_hetero",
    "expected_relative_error_hetero",
    "PrepareReport",
    "RestoreReport",
    "FTProblem",
    "FTSolution",
    "brute_force",
    "heuristic",
    "initial_configuration",
    "repair_configuration",
    "warm_start",
    "GatheringOutcome",
    "random_strategy",
    "naive_strategy",
    "optimized_strategy",
    "gathering_latency",
    "recoverable_levels",
    "DuplicationMethod",
    "PlainECMethod",
    "MethodReport",
    "expected_relative_error",
    "duplication_unavailability",
    "ec_unavailability",
    "level_recovery_probability",
    "prob_more_than_k_failures",
    "duplication_storage_overhead",
    "ec_storage_overhead",
    "refactored_storage_overhead",
]
