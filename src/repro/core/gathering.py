"""Data-gathering strategies (§3.3, §5.4): Random, Naive, Optimized.

A strategy selects which storage system serves each fragment of each
recoverable level — the binary matrix x[i, j] of Eq. 10 — and the phase
latency is the slowest selected transfer under the equal-share
bandwidth model (plus the solver's own running time for the Optimized
strategy, exactly as the paper accounts for its 60-second MIDACO budget).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..optimize import ACOSolver, GatheringModel

__all__ = ["GatheringOutcome", "recoverable_levels", "random_strategy",
           "naive_strategy", "optimized_strategy", "gathering_latency"]


@dataclass
class GatheringOutcome:
    """A strategy's selection plus its accounting."""

    x: np.ndarray
    levels_included: list[int]
    solver_time: float = 0.0
    objective_value: float = float("nan")


def recoverable_levels(ms: list[int], failed: list[int], n: int) -> list[int]:
    """Which levels can still be reconstructed after ``failed`` outages.

    Level j (0-based here) needs k_j = n - m_j fragments; with N failed
    systems it is recoverable iff N <= m_j.  Because m is strictly
    decreasing, the recoverable levels are a prefix.
    """
    bad = [i for i in failed if not 0 <= i < n]
    if bad:
        raise ValueError(f"failed ids out of range: {bad}")
    N = len(set(failed))
    return [j for j, m in enumerate(ms) if N <= m]


def _build_model(
    sizes: list[float],
    ms: list[int],
    bandwidths: np.ndarray,
    failed: list[int],
    *,
    objective: str = "average",
    max_levels: int | None = None,
) -> tuple[GatheringModel | None, list[int]]:
    n = len(bandwidths)
    levels = recoverable_levels(ms, failed, n)
    if max_levels is not None:
        levels = levels[:max_levels]
    if not levels:
        return None, []
    available = np.ones(n, dtype=bool)
    available[list(set(failed))] = False
    model = GatheringModel(
        fragment_sizes=np.array([sizes[j] / (n - ms[j]) for j in levels]),
        needed=np.array([n - ms[j] for j in levels]),
        bandwidths=np.asarray(bandwidths, dtype=float),
        available=available,
        objective=objective,
    )
    return model, levels


def random_strategy(
    sizes: list[float],
    ms: list[int],
    bandwidths: np.ndarray,
    failed: list[int] | None = None,
    *,
    seed: int | None = None,
    max_levels: int | None = None,
) -> GatheringOutcome:
    """Uniformly random feasible selection (the paper's 'Random')."""
    model, levels = _build_model(
        sizes, ms, bandwidths, failed or [], max_levels=max_levels
    )
    if model is None:
        raise ValueError("no level is recoverable under these failures")
    x = model.random_solution(np.random.default_rng(seed))
    return GatheringOutcome(x, levels, 0.0, model.evaluate(x))


def naive_strategy(
    sizes: list[float],
    ms: list[int],
    bandwidths: np.ndarray,
    failed: list[int] | None = None,
    *,
    max_levels: int | None = None,
) -> GatheringOutcome:
    """Greedy fastest-systems-first selection (the paper's 'Naive')."""
    model, levels = _build_model(
        sizes, ms, bandwidths, failed or [], max_levels=max_levels
    )
    if model is None:
        raise ValueError("no level is recoverable under these failures")
    x = model.naive_solution()
    return GatheringOutcome(x, levels, 0.0, model.evaluate(x))


def optimized_strategy(
    sizes: list[float],
    ms: list[int],
    bandwidths: np.ndarray,
    failed: list[int] | None = None,
    *,
    time_budget: float = 60.0,
    charged_time: float | None = None,
    max_iterations: int = 10_000,
    seed: int | None = 0,
    objective: str = "average",
    max_levels: int | None = None,
) -> GatheringOutcome:
    """ACO-optimised selection warm-started from Naive (the 'Optimized').

    ``time_budget`` caps the solver's wall clock; ``charged_time``
    overrides what is *accounted* in the latency (the paper always
    charges the full 60 s budget regardless of convergence; benches pass
    ``charged_time=60.0`` with a small actual budget).
    """
    model, levels = _build_model(
        sizes, ms, bandwidths, failed or [], objective=objective,
        max_levels=max_levels,
    )
    if model is None:
        raise ValueError("no level is recoverable under these failures")
    warm = model.naive_solution()
    res = ACOSolver(seed=seed).solve(
        model, warm_start=warm, time_budget=time_budget,
        max_iterations=max_iterations,
    )
    charged = res.elapsed if charged_time is None else charged_time
    return GatheringOutcome(res.x, levels, charged, res.value)


def gathering_latency(
    outcome: GatheringOutcome,
    sizes: list[float],
    ms: list[int],
    bandwidths: np.ndarray,
) -> float:
    """End-to-end gathering latency: slowest transfer + solver time.

    Transfer times follow the paper's static equal-share model.
    """
    n = len(bandwidths)
    x = outcome.x
    per_system = x.sum(axis=1)
    worst = 0.0
    for col, j in enumerate(outcome.levels_included):
        frag = sizes[j] / (n - ms[j])
        for i in range(n):
            if x[i, col]:
                t = frag * per_system[i] / bandwidths[i]
                worst = max(worst, t)
    return worst + outcome.solver_time
