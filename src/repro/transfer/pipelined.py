"""Pipelined archival schedule: overlap EC encode with WAN shipping.

The sequential model of the preparation phase charges
``compute + transfer``: every fragment exists before the first byte
moves.  The streaming pipeline instead emits one *chunk* per encoded
(tile, level) work item — each destination's fragment share becomes
available the moment its chunk is encoded — so shipping of chunk ``c``
overlaps the encode of chunk ``c+1`` and archival completes near
``max(compute, transfer)``.

:func:`pipelined_archival` folds the engine's recorded
``(ready_time, chunk_nbytes)`` events through a per-destination FIFO
link model (each destination receives its own fragment copy of every
chunk over its estimated WAN bandwidth, in encode order) and reports
both completions so benchmarks can show the overlap win directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ArchivalSchedule", "pipelined_archival"]


@dataclass(frozen=True)
class ArchivalSchedule:
    """Completion times (seconds) of one archival run.

    ``completion`` is the pipelined finish: the last destination drains
    its FIFO of chunk transfers, each of which could start no earlier
    than its encode finished.  ``sequential_completion`` is the classic
    store-and-forward bound (all compute, then all transfer), and
    ``lower_bound = max(compute_finish, transfer_makespan)`` is the best
    any overlap schedule could do.
    """

    completion: float
    compute_finish: float
    transfer_makespan: float
    num_chunks: int
    total_bytes: float

    @property
    def sequential_completion(self) -> float:
        return self.compute_finish + self.transfer_makespan

    @property
    def lower_bound(self) -> float:
        return max(self.compute_finish, self.transfer_makespan)

    @property
    def overlap_saving(self) -> float:
        """Seconds saved versus the store-and-forward schedule."""
        return self.sequential_completion - self.completion

    def as_dict(self) -> dict:
        return {
            "completion": self.completion,
            "compute_finish": self.compute_finish,
            "transfer_makespan": self.transfer_makespan,
            "sequential_completion": self.sequential_completion,
            "lower_bound": self.lower_bound,
            "overlap_saving": self.overlap_saving,
            "num_chunks": self.num_chunks,
            "total_bytes": self.total_bytes,
        }


def pipelined_archival(
    events: list[tuple[float, float]],
    bandwidths,
) -> ArchivalSchedule:
    """Schedule chunk shipments against per-destination FIFO links.

    Parameters
    ----------
    events:
        One ``(ready_time_seconds, fragment_nbytes)`` pair per encoded
        chunk, where ``fragment_nbytes`` is the size of the share each
        destination receives (fragments of one level are equal-sized).
    bandwidths:
        Per-destination bandwidth estimates in bytes/second.

    The links are independent (geo-distributed endpoints), so per
    destination the finish recurrence is the standard FIFO queue
    ``finish = max(finish_prev, ready) + nbytes / bw``; completion is
    the max over destinations of the last finish.
    """
    bw = np.asarray(bandwidths, dtype=np.float64)
    if bw.size == 0 or np.any(bw <= 0):
        raise ValueError("bandwidths must be non-empty and positive")
    if not events:
        return ArchivalSchedule(0.0, 0.0, 0.0, 0, 0.0)
    order = sorted(events)
    ready = np.asarray([e[0] for e in order], dtype=np.float64)
    nbytes = np.asarray([e[1] for e in order], dtype=np.float64)
    if np.any(ready < 0) or np.any(nbytes < 0):
        raise ValueError("ready times and chunk sizes must be >= 0")

    # durations[c, d] = shipping time of chunk c on destination d's link.
    durations = nbytes[:, None] / bw[None, :]
    finish = np.zeros_like(bw)
    for c in range(ready.size):
        np.maximum(finish, ready[c], out=finish)
        finish += durations[c]
    compute_finish = float(ready[-1])
    # Transfer-only makespan: every link busy back-to-back from t=0.
    transfer_makespan = float(durations.sum(axis=0).max())
    return ArchivalSchedule(
        completion=float(finish.max()),
        compute_finish=compute_finish,
        transfer_makespan=transfer_makespan,
        num_chunks=int(ready.size),
        total_bytes=float(nbytes.sum() * bw.size),
    )
