"""A Globus-like transfer service façade.

The paper's distribution component is "a script that controls the file
transferring ... by calling the Command Line Interface (CLI) of Globus"
(§4.2): submit a transfer task between endpoints, poll its status, wait
for completion, cancel if needed.  This module reproduces that service
surface over the simulated WAN so the orchestration code paths — task
books, status polling, event logs, cancellation — exist and are tested,
not just the bandwidth math.

Time is simulated: the service owns a clock that advances on
:meth:`GlobusService.wait` / :meth:`poll_until`, with task completion
times computed by the equal-share model at submission.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["TaskStatus", "GlobusTask", "GlobusService", "deliver_all"]


class TaskStatus(Enum):
    ACTIVE = "ACTIVE"
    SUCCEEDED = "SUCCEEDED"
    CANCELED = "CANCELED"
    FAILED = "FAILED"


@dataclass
class GlobusTask:
    """One submitted transfer task."""

    task_id: str
    source: int
    destination: int
    nbytes: float
    label: str
    submitted_at: float
    completes_at: float = float("inf")
    status: TaskStatus = TaskStatus.ACTIVE

    @property
    def is_terminal(self) -> bool:
        return self.status is not TaskStatus.ACTIVE


@dataclass
class GlobusService:
    """Simulated transfer service over a set of endpoints.

    Parameters
    ----------
    bandwidths:
        Per-endpoint WAN bandwidth (bytes/s).  Transfers sharing a
        *source* endpoint split its bandwidth equally (static model);
        task completion times are fixed at submission from the source's
        concurrent active count, like the rest of the repository's
        latency math.
    failure_prob:
        Probability a submitted task fails instead of succeeding
        (evaluated at submission, surfaces at its completion time).
    """

    bandwidths: np.ndarray
    failure_prob: float = 0.0
    seed: int | None = None
    clock: float = 0.0
    injector: object | None = None
    tasks: dict[str, GlobusTask] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.bandwidths = np.asarray(self.bandwidths, dtype=np.float64)
        if np.any(self.bandwidths <= 0):
            raise ValueError("bandwidths must be positive")
        if not 0.0 <= self.failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)
        self._ids = itertools.count(1)

    def attach_injector(self, injector) -> None:
        """Attach (or clear) a chaos injector (site ``globus.submit``:
        ``error`` dooms the task, ``stall`` delays its completion)."""
        self.injector = injector

    # -- submission ------------------------------------------------------

    def submit(
        self, source: int, destination: int, nbytes: float, *, label: str = ""
    ) -> str:
        """Submit a transfer; returns the task id."""
        for ep in (source, destination):
            if not 0 <= ep < len(self.bandwidths):
                raise ValueError(f"unknown endpoint {ep}")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        task_id = f"task-{next(self._ids):06d}"
        active_from_source = 1 + sum(
            1
            for t in self.tasks.values()
            if t.status is TaskStatus.ACTIVE and t.source == source
        )
        share = self.bandwidths[source] / active_from_source
        duration = nbytes / share if nbytes else 0.0
        task = GlobusTask(
            task_id=task_id,
            source=source,
            destination=destination,
            nbytes=nbytes,
            label=label,
            submitted_at=self.clock,
            completes_at=self.clock + duration,
        )
        if self._rng.random() < self.failure_prob:
            task.status = TaskStatus.ACTIVE  # fails at completion time
            task.label += " [doomed]"
        if self.injector is not None:
            spec = self.injector.fault_at(
                "globus.submit", source=source, destination=destination,
                label=label,
            )
            if spec is not None:
                if spec.effect == "stall":
                    task.completes_at += float(spec.magnitude)
                elif not task.label.endswith("[doomed]"):
                    task.label += " [doomed]"
        self.tasks[task_id] = task
        self.events.append(
            f"t={self.clock:.1f} SUBMIT {task_id} {label!r} "
            f"{source}->{destination} {nbytes:.0f}B"
        )
        return task_id

    # -- queries ----------------------------------------------------------

    def status(self, task_id: str) -> TaskStatus:
        task = self._get(task_id)
        self._settle(task)
        return task.status

    def active_tasks(self) -> list[str]:
        for t in self.tasks.values():
            self._settle(t)
        return [tid for tid, t in self.tasks.items() if not t.is_terminal]

    # -- control -----------------------------------------------------------

    def cancel(self, task_id: str) -> bool:
        """Cancel a task; returns False if it already finished."""
        task = self._get(task_id)
        self._settle(task)
        if task.is_terminal:
            return False
        task.status = TaskStatus.CANCELED
        self.events.append(f"t={self.clock:.1f} CANCEL {task_id}")
        return True

    def wait(self, task_id: str) -> TaskStatus:
        """Advance the clock to the task's completion and return status."""
        task = self._get(task_id)
        if not task.is_terminal:
            self.clock = max(self.clock, task.completes_at)
            self._settle(task)
        return task.status

    def wait_all(self) -> float:
        """Advance the clock until no task is active; returns the clock."""
        pending = [t for t in self.tasks.values() if not t.is_terminal]
        if pending:
            self.clock = max(
                self.clock, max(t.completes_at for t in pending)
            )
            for t in pending:
                self._settle(t)
        return self.clock

    def advance(self, seconds: float) -> None:
        """Advance simulated time without waiting for anything."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.clock += seconds
        for t in self.tasks.values():
            self._settle(t)

    # -- internals -------------------------------------------------------------

    def _get(self, task_id: str) -> GlobusTask:
        try:
            return self.tasks[task_id]
        except KeyError:
            raise KeyError(f"no such task: {task_id}") from None

    def _settle(self, task: GlobusTask) -> None:
        if task.is_terminal or self.clock < task.completes_at:
            return
        if task.label.endswith("[doomed]"):
            task.status = TaskStatus.FAILED
        else:
            task.status = TaskStatus.SUCCEEDED
        self.events.append(
            f"t={task.completes_at:.1f} {task.status.value} {task.task_id}"
        )


def deliver_all(
    service: GlobusService,
    submissions,
    *,
    policy=None,
) -> tuple[float, float]:
    """Submit every transfer and retry failures until all are delivered.

    ``submissions`` is an iterable of ``(source, destination, nbytes,
    label)`` tuples.  Failed tasks are resubmitted under the shared
    :class:`~repro.chaos.RetryPolicy` — the same attempt/backoff/deadline
    semantics as the transfer task manager, on the service's *simulated*
    clock (each retry round advances the clock by the policy's backoff
    before resubmitting).  The default policy reproduces the historical
    submit-path behaviour: up to 32 attempts per task, no backoff.

    Returns ``(elapsed_seconds, total_bytes_submitted)``; retries cost
    bytes, so the second element exceeds the payload total when any task
    failed.  Raises :class:`RuntimeError` once any task exhausts the
    policy.
    """
    from ..chaos.retry import RetryPolicy

    if policy is None:
        policy = RetryPolicy(max_attempts=32, base=0.0)
    start = service.clock
    pending: dict[str, tuple[int, int, int, float, str]] = {}
    attempts: dict[int, int] = {}
    total = 0.0
    for idx, (src, dst, nbytes, label) in enumerate(submissions):
        tid = service.submit(src, dst, nbytes, label=label)
        pending[tid] = (idx, src, dst, nbytes, label)
        attempts[idx] = 1
        total += nbytes
    while pending:
        service.wait_all()
        retry: list[tuple[int, int, int, float, str]] = []
        backoff = 0.0
        for tid, (idx, src, dst, nbytes, label) in pending.items():
            if service.status(tid) is not TaskStatus.FAILED:
                continue
            elapsed = service.clock - start
            if not policy.should_retry(attempts[idx], elapsed):
                raise RuntimeError(
                    f"transfer {label!r} ({src}->{dst}) still failing "
                    f"after {attempts[idx]} attempt(s)"
                )
            backoff = max(backoff, policy.delay(attempts[idx] - 1))
            retry.append((idx, src, dst, nbytes, label))
        if not retry:
            break
        if backoff > 0:
            service.advance(backoff)
        pending = {}
        for idx, src, dst, nbytes, label in retry:
            attempts[idx] += 1
            tid = service.submit(src, dst, nbytes, label=f"{label} retry")
            pending[tid] = (idx, src, dst, nbytes, label)
            total += nbytes
    return service.clock - start, total
