"""Transfer task management: retries, failover, throughput reporting.

The distribution/gathering component "manages the transfer tasks"
through Globus (§4.2): tasks can fail mid-flight (an endpoint drops), be
retried, or be redirected to another system holding an equivalent
fragment.  This module simulates that management layer on top of the
bandwidth models:

* a :class:`TransferTask` tracks attempts and outcome;
* :class:`TransferTaskManager` executes a batch against a
  failure-injecting endpoint model, retrying with exponential backoff
  and failing over to alternate sources when provided;
* completed tasks report their observed throughput to an optional
  callback — the hook the metadata component uses to refresh bandwidth
  estimates (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["TransferTask", "TransferTaskManager", "TaskFailed"]


class TaskFailed(RuntimeError):
    """A task exhausted its retries on every candidate source."""


@dataclass
class TransferTask:
    """One managed transfer: ``nbytes`` from one of ``sources``.

    ``sources`` is ordered by preference; failover walks the list.
    """

    nbytes: float
    sources: list[int]
    tag: object = None
    attempts: int = 0
    completed: bool = False
    source_used: int | None = None
    elapsed: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if not self.sources:
            raise ValueError("a task needs at least one candidate source")

    @property
    def throughput(self) -> float:
        if not self.completed or self.elapsed <= 0:
            return 0.0
        return self.nbytes / self.elapsed


@dataclass
class TransferTaskManager:
    """Executes transfer tasks with retries and failover.

    Parameters
    ----------
    bandwidths:
        Per-endpoint bandwidth (bytes/s).
    failure_prob:
        Probability that any single attempt fails mid-flight (each
        failed attempt costs ``abort_fraction`` of the transfer time).
    max_retries:
        Attempts per source before failing over to the next candidate.
    backoff:
        Simulated seconds added per retry (exponential: backoff * 2**i).
    on_complete:
        Optional callback ``(source_id, nbytes, seconds)`` for finished
        tasks — wire this to :meth:`BandwidthTracker.observe`.
    """

    bandwidths: np.ndarray
    failure_prob: float = 0.0
    max_retries: int = 3
    backoff: float = 1.0
    abort_fraction: float = 0.5
    seed: int | None = None
    on_complete: Callable[[int, float, float], None] | None = None
    log: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.bandwidths = np.asarray(self.bandwidths, dtype=np.float64)
        if np.any(self.bandwidths <= 0):
            raise ValueError("bandwidths must be positive")
        if not 0.0 <= self.failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self._rng = np.random.default_rng(self.seed)

    def run(self, tasks: list[TransferTask]) -> float:
        """Execute all tasks; returns the makespan (simulated seconds).

        Tasks run concurrently; each endpoint's bandwidth is shared
        equally among the tasks *assigned* to it (first-choice source),
        matching the paper's static model.  Retries extend the affected
        task only.  Raises :class:`TaskFailed` if any task exhausts every
        source.
        """
        counts = np.zeros(len(self.bandwidths))
        for t in tasks:
            for src in t.sources:
                if not 0 <= src < len(self.bandwidths):
                    raise ValueError(f"unknown endpoint {src}")
            counts[t.sources[0]] += 1
        makespan = 0.0
        for t in tasks:
            elapsed = self._run_one(t, counts)
            makespan = max(makespan, elapsed)
        return makespan

    def _run_one(self, task: TransferTask, counts: np.ndarray) -> float:
        clock = 0.0
        for src in task.sources:
            if not 0 <= src < len(self.bandwidths):
                raise ValueError(f"unknown endpoint {src}")
            share = self.bandwidths[src] / max(1.0, counts[src])
            base_time = task.nbytes / share if task.nbytes else 0.0
            for attempt in range(self.max_retries):
                task.attempts += 1
                if self._rng.random() < self.failure_prob:
                    clock += base_time * self.abort_fraction
                    clock += self.backoff * (2**attempt)
                    self.log.append(
                        f"task {task.tag!r}: attempt {task.attempts} via "
                        f"endpoint {src} failed"
                    )
                    continue
                clock += base_time
                task.completed = True
                task.source_used = src
                task.elapsed = clock
                if self.on_complete is not None and base_time > 0:
                    self.on_complete(src, task.nbytes, base_time)
                return clock
            self.log.append(
                f"task {task.tag!r}: failing over away from endpoint {src}"
            )
        raise TaskFailed(
            f"task {task.tag!r} failed on all sources {task.sources}"
        )
