"""Transfer task management: retries, failover, throughput reporting.

The distribution/gathering component "manages the transfer tasks"
through Globus (§4.2): tasks can fail mid-flight (an endpoint drops), be
retried, or be redirected to another system holding an equivalent
fragment.  This module simulates that management layer on top of the
bandwidth models:

* a :class:`TransferTask` tracks attempts and outcome;
* :class:`TransferTaskManager` executes a batch against a
  failure-injecting endpoint model, retrying with exponential backoff
  and failing over to alternate sources when provided;
* completed tasks report their observed throughput to an optional
  callback — the hook the metadata component uses to refresh bandwidth
  estimates (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..chaos.retry import RetryPolicy

__all__ = ["TransferTask", "TransferTaskManager", "TaskFailed"]


class TaskFailed(RuntimeError):
    """A task exhausted its retries (or deadline) on every candidate source.

    ``attempts`` carries the total attempt count across all sources;
    ``deadline_hit`` distinguishes a time-budget abandonment from plain
    retry exhaustion.
    """

    def __init__(self, message: str, *, attempts: int = 0, deadline_hit: bool = False):
        super().__init__(message)
        self.attempts = attempts
        self.deadline_hit = deadline_hit


@dataclass
class TransferTask:
    """One managed transfer: ``nbytes`` from one of ``sources``.

    ``sources`` is ordered by preference; failover walks the list.
    ``failure`` records why an abandoned task stopped (``"deadline"`` or
    ``"exhausted"``); it stays ``None`` on success.
    """

    nbytes: float
    sources: list[int]
    tag: object = None
    attempts: int = 0
    completed: bool = False
    source_used: int | None = None
    elapsed: float = 0.0
    failure: str | None = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if not self.sources:
            raise ValueError("a task needs at least one candidate source")

    @property
    def throughput(self) -> float:
        if not self.completed or self.elapsed <= 0:
            return 0.0
        return self.nbytes / self.elapsed


@dataclass
class TransferTaskManager:
    """Executes transfer tasks with retries and failover.

    Parameters
    ----------
    bandwidths:
        Per-endpoint bandwidth (bytes/s).
    failure_prob:
        Probability that any single attempt fails mid-flight (each
        failed attempt costs ``abort_fraction`` of the transfer time).
    max_retries:
        Attempts per source before failing over to the next candidate.
        ``None`` means unlimited per-source attempts — then ``deadline``
        (or an explicit ``retry_policy`` with one) is mandatory, so a
        permanently failed endpoint cannot be retried forever.
    backoff:
        Simulated seconds added per retry (exponential: backoff * 2**i).
        Charged only when another attempt on the same source actually
        follows — never before a failover or a final abandonment.
    deadline:
        Total simulated-seconds budget per task across every attempt,
        backoff, and failover.  Once a task's clock reaches it, the task
        is abandoned with ``TaskFailed(deadline_hit=True)``.
    retry_policy:
        A :class:`~repro.chaos.RetryPolicy` overriding ``max_retries`` /
        ``backoff`` / ``deadline`` (those are ignored when it is set).
    injector:
        Optional chaos seam (see :mod:`repro.chaos`), consulted once per
        attempt at site ``transfer.attempt``; ``error`` faults fail the
        attempt, ``stall`` faults add ``magnitude`` simulated seconds.
    on_complete:
        Optional callback ``(source_id, nbytes, seconds)`` for finished
        tasks — wire this to :meth:`BandwidthTracker.observe`.
    """

    bandwidths: np.ndarray
    failure_prob: float = 0.0
    max_retries: int | None = 3
    backoff: float = 1.0
    abort_fraction: float = 0.5
    seed: int | None = None
    deadline: float | None = None
    retry_policy: RetryPolicy | None = None
    injector: object | None = None
    on_complete: Callable[[int, float, float], None] | None = None
    log: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.bandwidths = np.asarray(self.bandwidths, dtype=np.float64)
        if np.any(self.bandwidths <= 0):
            raise ValueError("bandwidths must be positive")
        if not 0.0 <= self.failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")
        if self.max_retries is not None and self.max_retries < 1:
            raise ValueError("max_retries must be >= 1 (or None for unlimited)")
        if (
            self.retry_policy is None
            and self.max_retries is None
            and self.deadline is None
        ):
            raise ValueError("max_retries=None (unlimited) requires a deadline")
        self._rng = np.random.default_rng(self.seed)

    def attach_injector(self, injector) -> None:
        """Attach (or clear) a chaos injector."""
        self.injector = injector

    def _policy(self) -> RetryPolicy:
        if self.retry_policy is not None:
            return self.retry_policy
        return RetryPolicy(
            max_attempts=self.max_retries,
            base=self.backoff,
            factor=2.0,
            deadline=self.deadline,
        )

    def run(self, tasks: list[TransferTask]) -> float:
        """Execute all tasks; returns the makespan (simulated seconds).

        Tasks run concurrently; each endpoint's bandwidth is shared
        equally among the tasks *assigned* to it (first-choice source),
        matching the paper's static model.  Retries extend the affected
        task only.  Raises :class:`TaskFailed` if any task exhausts every
        source.
        """
        counts = np.zeros(len(self.bandwidths))
        for t in tasks:
            for src in t.sources:
                if not 0 <= src < len(self.bandwidths):
                    raise ValueError(f"unknown endpoint {src}")
            counts[t.sources[0]] += 1
        makespan = 0.0
        for t in tasks:
            elapsed = self._run_one(t, counts)
            makespan = max(makespan, elapsed)
        return makespan

    def _run_one(self, task: TransferTask, counts: np.ndarray) -> float:
        policy = self._policy()
        clock = 0.0
        for src in task.sources:
            if not 0 <= src < len(self.bandwidths):
                raise ValueError(f"unknown endpoint {src}")
            share = self.bandwidths[src] / max(1.0, counts[src])
            base_time = task.nbytes / share if task.nbytes else 0.0
            attempts_here = 0
            while True:
                if policy.deadline is not None and clock >= policy.deadline:
                    task.elapsed = clock
                    task.failure = "deadline"
                    self.log.append(
                        f"task {task.tag!r}: deadline exhausted after "
                        f"{task.attempts} attempts"
                    )
                    raise TaskFailed(
                        f"task {task.tag!r} exceeded its "
                        f"{policy.deadline:.1f}s deadline after "
                        f"{task.attempts} attempts",
                        attempts=task.attempts,
                        deadline_hit=True,
                    )
                task.attempts += 1
                attempts_here += 1
                stall, failed = self._attempt_fate(task, src)
                clock += stall
                if not failed:
                    clock += base_time
                    task.completed = True
                    task.source_used = src
                    task.elapsed = clock
                    if self.on_complete is not None and base_time > 0:
                        self.on_complete(src, task.nbytes, base_time)
                    return clock
                clock += base_time * self.abort_fraction
                self.log.append(
                    f"task {task.tag!r}: attempt {task.attempts} via "
                    f"endpoint {src} failed"
                )
                if not policy.should_retry(attempts_here, clock):
                    break
                # Backoff is charged only because another attempt on this
                # source follows; failovers and abandonments start cold.
                u = self._rng.random() if policy.jitter else None
                clock += policy.delay(attempts_here - 1, u=u)
            self.log.append(
                f"task {task.tag!r}: failing over away from endpoint {src}"
            )
        task.elapsed = clock
        task.failure = "exhausted"
        raise TaskFailed(
            f"task {task.tag!r} failed on all sources {task.sources} "
            f"after {task.attempts} attempts",
            attempts=task.attempts,
        )

    def _attempt_fate(self, task: TransferTask, src: int) -> tuple[float, bool]:
        """Resolve one attempt: ``(stall seconds, failed?)``.

        An injected ``error`` fails the attempt outright (no RNG draw, so
        background flakiness stays on the same seeded sequence); a
        ``stall`` delays it and then lets the normal failure draw run.
        """
        stall = 0.0
        if self.injector is not None:
            spec = self.injector.fault_at(
                "transfer.attempt", tag=str(task.tag), source=int(src)
            )
            if spec is not None:
                if spec.effect != "stall":
                    return stall, True
                stall = float(spec.magnitude)
        return stall, bool(self._rng.random() < self.failure_prob)
