"""WAN transfer-time models.

Two models of the same physical situation — a user site gathering from /
distributing to remote storage endpoints whose WAN bandwidth is shared
equally among that endpoint's concurrent requests (§3.3's assumption):

:func:`static_transfer_times`
    The paper's closed-form model: every request to endpoint ``i`` gets
    ``B_i / c_i`` for its whole lifetime, where ``c_i`` is the number of
    requests assigned to endpoint ``i``.  This is what the gathering
    optimisation objective (Eq. 10) and the Fig. 3/4 latency numbers use.

:class:`FairShareSimulator`
    An exact event-driven simulation where an endpoint's bandwidth is
    re-divided among its *remaining* requests each time one finishes, so
    later requests speed up.  Strictly more realistic; the static model
    is an upper bound per request.  Used for the model-fidelity ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransferRequest", "TransferResult", "static_transfer_times", "FairShareSimulator"]


@dataclass(frozen=True)
class TransferRequest:
    """One fragment transfer: ``nbytes`` from endpoint ``system_id``."""

    system_id: int
    nbytes: float
    tag: object = None


@dataclass
class TransferResult:
    """Completion summary of a batch of transfers."""

    finish_times: list[float]
    makespan: float
    total_bytes: float

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.finish_times)) if self.finish_times else 0.0


def static_transfer_times(
    requests: list[TransferRequest], bandwidths: np.ndarray
) -> TransferResult:
    """The paper's equal-share model (no re-division on completion).

    Request r to system i takes ``r.nbytes / (B_i / c_i)`` where ``c_i``
    counts the requests assigned to system i.
    """
    counts = np.zeros(len(bandwidths))
    for r in requests:
        counts[r.system_id] += 1
    times = []
    total = 0.0
    for r in requests:
        share = bandwidths[r.system_id] / counts[r.system_id]
        times.append(float(r.nbytes / share))
        total += r.nbytes
    makespan = max(times) if times else 0.0
    return TransferResult(times, makespan, total)


class FairShareSimulator:
    """Exact event-driven fair-share bandwidth simulation.

    Each endpoint's bandwidth is split equally among its currently active
    requests; when any request completes, shares are recomputed.  Between
    events every rate is constant, so the next completion time is exact
    (no time-stepping error).  Complexity O(R^2) in the number of
    requests per endpoint — trivially fast for the n<=32, l<=8 scales the
    paper evaluates.

    An optional ``client_bandwidth`` models the user site's ingress cap:
    when the sum of endpoint shares exceeds it, all rates are scaled
    proportionally (the paper ignores this; the default keeps it off).
    """

    def __init__(
        self,
        bandwidths: np.ndarray,
        *,
        client_bandwidth: float | None = None,
    ) -> None:
        bandwidths = np.asarray(bandwidths, dtype=np.float64)
        if np.any(bandwidths <= 0):
            raise ValueError("bandwidths must be positive")
        if client_bandwidth is not None and client_bandwidth <= 0:
            raise ValueError("client_bandwidth must be positive")
        self.bandwidths = bandwidths
        self.client_bandwidth = client_bandwidth

    def run(self, requests: list[TransferRequest]) -> TransferResult:
        """Simulate all requests starting at t=0; returns completion times
        in the order of ``requests``."""
        for r in requests:
            if r.system_id < 0 or r.system_id >= len(self.bandwidths):
                raise ValueError(f"unknown system id {r.system_id}")
            if r.nbytes < 0:
                raise ValueError("negative transfer size")
        remaining = np.array([float(r.nbytes) for r in requests])
        finish = np.zeros(len(requests))
        active = remaining > 0
        finish[~active] = 0.0
        t = 0.0
        while np.any(active):
            rates = self._rates(requests, active)
            # Time until the first active request drains at current rates.
            dt = np.full(len(requests), np.inf)
            np.divide(remaining, rates, out=dt, where=active)
            step = float(np.min(dt))
            t += step
            remaining = np.where(active, remaining - rates * step, remaining)
            done = active & (remaining <= 1e-9 * np.maximum(rates, 1.0))
            finish[done] = t
            active &= ~done
        return TransferResult(
            finish.tolist(), float(np.max(finish)) if len(requests) else 0.0,
            float(sum(r.nbytes for r in requests)),
        )

    def _rates(self, requests: list[TransferRequest], active: np.ndarray) -> np.ndarray:
        counts = np.zeros(len(self.bandwidths))
        for r, a in zip(requests, active):
            if a:
                counts[r.system_id] += 1
        rates = np.zeros(len(requests))
        for i, (r, a) in enumerate(zip(requests, active)):
            if a:
                rates[i] = self.bandwidths[r.system_id] / counts[r.system_id]
        if self.client_bandwidth is not None:
            total = rates[active].sum()
            if total > self.client_bandwidth:
                rates *= self.client_bandwidth / total
        return rates
