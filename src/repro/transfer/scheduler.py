"""Building transfer request batches for distribution and gathering.

The distribution phase pushes fragments out to the remote systems; the
gathering phase pulls a selected subset back.  Both phases launch all
transfers in parallel, so the phase latency is the slowest transfer
(paper §5.2.2), computed under the equal-share model of
:mod:`repro.transfer.simulator`.
"""

from __future__ import annotations

import numpy as np

from .simulator import (
    FairShareSimulator,
    TransferRequest,
    TransferResult,
    static_transfer_times,
)

__all__ = [
    "duplication_distribution",
    "ec_distribution",
    "refactored_distribution",
    "gathering_requests",
    "phase_latency",
]


def duplication_distribution(
    data_bytes: float, extra_copies: int, bandwidths: np.ndarray
) -> list[TransferRequest]:
    """DP baseline: full copies to the highest-bandwidth remote systems."""
    if extra_copies < 1:
        raise ValueError("need at least one extra copy to distribute")
    if extra_copies > len(bandwidths):
        raise ValueError("more copies than remote systems")
    order = np.argsort(bandwidths)[::-1][:extra_copies]
    return [TransferRequest(int(i), data_bytes, tag="replica") for i in order]


def ec_distribution(
    data_bytes: float, k: int, m: int, bandwidths: np.ndarray
) -> list[TransferRequest]:
    """Plain-EC baseline: n = k + m fragments of size S/k, one per system."""
    n = k + m
    if n > len(bandwidths):
        raise ValueError(f"{n} fragments exceed {len(bandwidths)} systems")
    frag = data_bytes / k
    return [TransferRequest(i, frag, tag=("ec", i)) for i in range(n)]


def refactored_distribution(
    level_sizes: list[float],
    ms: list[int],
    n: int,
    bandwidths: np.ndarray,
    *,
    aggregate: bool = True,
) -> list[TransferRequest]:
    """RF+EC: level j becomes n fragments of size s_j/(n - m_j) each.

    With ``aggregate`` (the default), each destination's fragments of
    all levels ship as one transfer task — that is how the Globus-driven
    distribution component batches files per endpoint (§4.2), and it
    avoids self-inflicted bandwidth contention between a destination's
    own level fragments.  ``aggregate=False`` issues one request per
    fragment (used by the contention-model ablation).
    """
    if len(level_sizes) != len(ms):
        raise ValueError("level_sizes and ms must align")
    if n > len(bandwidths):
        raise ValueError(f"n={n} exceeds {len(bandwidths)} systems")
    for m in ms:
        if not 0 <= m < n:
            raise ValueError(f"invalid m={m} for n={n}")
    if aggregate:
        per_system = sum(s / (n - m) for s, m in zip(level_sizes, ms))
        return [
            TransferRequest(i, per_system, tag=("bundle", i)) for i in range(n)
        ]
    reqs: list[TransferRequest] = []
    for j, (s, m) in enumerate(zip(level_sizes, ms)):
        frag = s / (n - m)
        reqs.extend(
            TransferRequest(i, frag, tag=("level", j, i)) for i in range(n)
        )
    return reqs


def gathering_requests(
    x: np.ndarray, level_sizes: list[float], ms: list[int]
) -> list[TransferRequest]:
    """Turn a gathering selection x[i, j] into transfer requests.

    ``x`` is the paper's binary matrix: x[i, j] = 1 iff a fragment of
    level j is pulled from system i; fragment size is s_j / (n - m_j).
    """
    x = np.asarray(x)
    n, levels = x.shape
    if levels != len(level_sizes) or levels != len(ms):
        raise ValueError("x shape must be (n, num_levels)")
    reqs = []
    for i in range(n):
        for j in range(levels):
            if x[i, j]:
                reqs.append(
                    TransferRequest(
                        i, level_sizes[j] / (n - ms[j]), tag=("gather", j, i)
                    )
                )
    return reqs


def phase_latency(
    requests: list[TransferRequest],
    bandwidths: np.ndarray,
    *,
    model: str = "static",
) -> TransferResult:
    """Latency of a transfer phase (all requests launched in parallel).

    ``model`` selects the paper's static equal-share formula or the exact
    event-driven fair-share simulation.
    """
    if model == "static":
        return static_transfer_times(requests, np.asarray(bandwidths, float))
    if model == "fair-share":
        return FairShareSimulator(np.asarray(bandwidths, float)).run(requests)
    raise ValueError(f"unknown transfer model: {model!r}")
