"""Synthetic Globus transfer logs and per-endpoint bandwidth estimation.

The paper could not reach many real geo-distributed systems, so it
estimated a static bandwidth per remote endpoint from four years of
anonymized Globus Connect Server transfer logs: group the log records by
remote endpoint, compute each transfer's user-perceived throughput
(bytes / elapsed), and average (§5.1.2).  The resulting estimates ranged
from ~400 MB/s to more than 3 GB/s across 16 remote GCSs.

We reproduce that post-processing pipeline exactly, over synthetic logs:
each endpoint gets a latent mean throughput drawn log-uniformly from the
paper's observed range, and individual transfers scatter lognormally
around it (heavy-tailed per-transfer variation is the signature of
shared WAN links).  Estimating from the synthetic logs then recovers
endpoint bandwidths with realistic estimation noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TransferRecord",
    "generate_transfer_logs",
    "estimate_bandwidths",
    "paper_bandwidth_profile",
    "MB",
    "GB",
]

MB = 1024**2
GB = 1024**3

#: Bandwidth range reported in §5.1.2 (bytes/s).
_BW_LOW = 400 * MB
_BW_HIGH = 3.2 * GB


@dataclass(frozen=True)
class TransferRecord:
    """One Globus-style transfer log entry."""

    endpoint: str
    nbytes: int
    start_time: float
    elapsed_seconds: float

    @property
    def throughput(self) -> float:
        """User-perceived throughput in bytes/s."""
        return self.nbytes / self.elapsed_seconds


def generate_transfer_logs(
    num_endpoints: int = 16,
    transfers_per_endpoint: int = 200,
    *,
    seed: int = 2014,
    sigma: float = 0.35,
) -> tuple[list[TransferRecord], dict[str, float]]:
    """Generate synthetic GCS-to-GCS transfer logs.

    Returns ``(records, true_means)`` where ``true_means`` holds each
    endpoint's latent mean throughput so tests can check the estimator.
    ``sigma`` is the lognormal scatter of individual transfers.
    """
    if num_endpoints < 1 or transfers_per_endpoint < 1:
        raise ValueError("need at least one endpoint and one transfer")
    rng = np.random.default_rng(seed)
    # Log-uniform latent means over the observed range, sorted descending
    # so endpoint ids are stable across runs.
    means = np.exp(
        rng.uniform(np.log(_BW_LOW), np.log(_BW_HIGH), size=num_endpoints)
    )
    means = np.sort(means)[::-1]
    records: list[TransferRecord] = []
    true_means: dict[str, float] = {}
    t = 0.0
    for i, mean in enumerate(means):
        ep = f"gcs-{i:02d}"
        true_means[ep] = float(mean)
        # Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
        mu = np.log(mean) - sigma**2 / 2
        thr = rng.lognormal(mu, sigma, size=transfers_per_endpoint)
        sizes = rng.lognormal(np.log(50 * GB), 1.0, size=transfers_per_endpoint)
        for s, th in zip(sizes, thr):
            records.append(
                TransferRecord(ep, int(s), t, float(s / th))
            )
            t += float(rng.exponential(3600.0))
    return records, true_means


def estimate_bandwidths(records: list[TransferRecord]) -> dict[str, float]:
    """The paper's estimator: mean user-perceived throughput per endpoint."""
    if not records:
        raise ValueError("no transfer records")
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for r in records:
        sums[r.endpoint] = sums.get(r.endpoint, 0.0) + r.throughput
        counts[r.endpoint] = counts.get(r.endpoint, 0) + 1
    return {ep: sums[ep] / counts[ep] for ep in sums}


def paper_bandwidth_profile(n: int = 16, *, seed: int = 2014) -> np.ndarray:
    """Estimated bandwidths for ``n`` remote systems, bytes/s, id order.

    This is the full §5.1.2 pipeline: synthesize logs, run the estimator,
    return the estimates as an array indexed by system id.  Deterministic
    for a given seed; used by every transfer-latency bench.
    """
    records, _ = generate_transfer_logs(num_endpoints=n, seed=seed)
    est = estimate_bandwidths(records)
    return np.array([est[f"gcs-{i:02d}"] for i in range(n)])
