"""WAN transfer substrate (Globus substitute): logs, bandwidth estimation,
and equal-share transfer-time models."""

from .globus import GlobusService, GlobusTask, TaskStatus
from .network import DiurnalBandwidthModel, DriftingBandwidthModel
from .tasks import TaskFailed, TransferTask, TransferTaskManager
from .logs import (
    GB,
    MB,
    TransferRecord,
    estimate_bandwidths,
    generate_transfer_logs,
    paper_bandwidth_profile,
)
from .pipelined import ArchivalSchedule, pipelined_archival
from .scheduler import (
    duplication_distribution,
    ec_distribution,
    gathering_requests,
    phase_latency,
    refactored_distribution,
)
from .simulator import (
    FairShareSimulator,
    TransferRequest,
    TransferResult,
    static_transfer_times,
)

__all__ = [
    "MB",
    "GB",
    "DriftingBandwidthModel",
    "DiurnalBandwidthModel",
    "TransferTask",
    "TransferTaskManager",
    "TaskFailed",
    "GlobusService",
    "GlobusTask",
    "TaskStatus",
    "TransferRecord",
    "generate_transfer_logs",
    "estimate_bandwidths",
    "paper_bandwidth_profile",
    "TransferRequest",
    "TransferResult",
    "static_transfer_times",
    "FairShareSimulator",
    "duplication_distribution",
    "ec_distribution",
    "refactored_distribution",
    "gathering_requests",
    "phase_latency",
    "ArchivalSchedule",
    "pipelined_archival",
]
