"""Time-varying WAN bandwidth models.

The static per-endpoint estimates of §5.1.2 are averages over years of
transfer logs; real WAN paths drift with competing traffic and diurnal
load.  The metadata component therefore records every transfer's
observed throughput so the gathering optimiser can adapt (§4.3).  This
module provides the ground-truth side of that loop: bandwidth processes
the simulator can sample while the tracker only sees noisy observations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DriftingBandwidthModel", "DiurnalBandwidthModel"]


@dataclass
class DriftingBandwidthModel:
    """Geometric random-walk bandwidth per endpoint.

    Each call to :meth:`step` multiplies every endpoint's bandwidth by
    ``exp(N(0, sigma))``, clamped to ``[floor, ceiling]`` times the
    initial value, so long simulations stay physical.
    """

    base: np.ndarray
    sigma: float = 0.05
    floor: float = 0.2
    ceiling: float = 5.0
    seed: int | None = None

    def __post_init__(self) -> None:
        self.base = np.asarray(self.base, dtype=np.float64)
        if np.any(self.base <= 0):
            raise ValueError("bandwidths must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if not 0 < self.floor < 1 <= self.ceiling:
            raise ValueError("need 0 < floor < 1 <= ceiling")
        self._rng = np.random.default_rng(self.seed)
        self.current = self.base.copy()

    def step(self) -> np.ndarray:
        """Advance the walk one epoch; returns the new bandwidths."""
        self.current = self.current * np.exp(
            self._rng.normal(0.0, self.sigma, size=self.current.shape)
        )
        np.clip(
            self.current,
            self.base * self.floor,
            self.base * self.ceiling,
            out=self.current,
        )
        return self.current.copy()

    def observe(self, system_id: int, *, noise: float = 0.1) -> float:
        """A noisy per-transfer throughput observation of one endpoint."""
        true = float(self.current[system_id])
        return true * float(np.exp(self._rng.normal(0.0, noise)))


@dataclass
class DiurnalBandwidthModel:
    """Sinusoidal day/night bandwidth variation around the base profile.

    ``amplitude`` is the relative swing (0.3 = ±30%); endpoints get random
    phases so their peaks do not align.
    """

    base: np.ndarray
    amplitude: float = 0.3
    period: float = 86400.0
    seed: int | None = None

    def __post_init__(self) -> None:
        self.base = np.asarray(self.base, dtype=np.float64)
        if np.any(self.base <= 0):
            raise ValueError("bandwidths must be positive")
        if not 0 <= self.amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("period must be positive")
        rng = np.random.default_rng(self.seed)
        self._phase = rng.uniform(0, 2 * np.pi, size=self.base.shape)

    def at(self, t: float) -> np.ndarray:
        """Bandwidths at wall-clock time ``t`` seconds."""
        swing = np.sin(2 * np.pi * t / self.period + self._phase)
        return self.base * (1.0 + self.amplitude * swing)
