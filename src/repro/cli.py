"""``rapids`` command-line interface.

Subcommands::

    rapids refactor  <in.npy> <out dir>     refactor an array to components
    rapids reconstruct <dir> <out.npy>      rebuild from a component prefix
    rapids optimize-ft                      solve the FT configuration model
    rapids estimate-bandwidth               synthesize logs + estimate (§5.1.2)
    rapids info <dir>                       describe a refactored object
    rapids lint [paths...]                  run the rapidslint static analyzer
    rapids chaos                            replay a fault plan end to end
    rapids scrub                            verify a workspace at rest; repair
    rapids reconfigure                      warm re-solve + live migration
    rapids scenarios                        run the chaos-campaign scenario suite
    rapids serve                            multi-tenant archive service / driver

The CLI operates on a simple on-disk layout: ``<dir>/component-XX.bin``
plus a ``manifest`` container holding the reconstruction metadata.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .core import FTProblem, brute_force, heuristic
from .refactor import Refactorer
from .refactor.serialization import load_directory, save_directory
from .transfer import GB, estimate_bandwidths, generate_transfer_logs

__all__ = ["build_parser", "main"]

_write_refactored = save_directory


def _read_refactored(indir: Path, upto: int | None = None):
    return load_directory(indir, upto=upto)


def _cmd_refactor(args) -> int:
    data = np.load(args.input)
    refactorer = Refactorer(
        args.components, num_planes=args.planes, correction=not args.no_correction
    )
    obj = refactorer.refactor(data, measure_errors=not args.fast)
    _write_refactored(obj, Path(args.outdir))
    print(f"refactored {data.shape} {data.dtype} -> {obj.num_components} "
          f"components, {obj.total_bytes} bytes "
          f"(compression {obj.compression_ratio:.2f}x)")
    for j, (s, e) in enumerate(zip(obj.sizes, obj.errors)):
        print(f"  component {j + 1}: {s:>10d} bytes   e_{j + 1} = {e:.3e}")
    return 0


def _cmd_reconstruct(args) -> int:
    obj = _read_refactored(Path(args.indir), upto=args.upto)
    refactorer = Refactorer(obj.num_components)
    data = refactorer.reconstruct(obj)
    np.save(args.output, data)
    print(f"reconstructed {data.shape} {data.dtype} from "
          f"{len(obj.payloads)} component(s) -> {args.output}")
    if obj.errors:
        print(f"  recorded error for this prefix: {obj.errors[-1]:.3e}")
    return 0


def _cmd_info(args) -> int:
    obj = _read_refactored(Path(args.indir))
    print(json.dumps(
        {
            "shape": list(obj.shape),
            "dtype": obj.dtype,
            "components": obj.num_components,
            "sizes": obj.sizes,
            "errors": obj.errors,
            "total_bytes": obj.total_bytes,
            "compression_ratio": obj.compression_ratio,
        },
        indent=2,
    ))
    return 0


def _cmd_optimize_ft(args) -> int:
    sizes = tuple(float(s) for s in args.sizes.split(","))
    errors = tuple(float(e) for e in args.errors.split(","))
    problem = FTProblem(
        n=args.systems, p=args.p, sizes=sizes, errors=errors,
        original_size=args.original_size, omega=args.omega,
    )
    solver = brute_force if args.brute_force else heuristic
    sol = solver(problem)
    print(f"optimal m_j = {sol.ms}")
    print(f"expected relative error = {sol.expected_error:.4e}")
    print(f"storage overhead = {sol.overhead:.4f} (budget {args.omega})")
    print(f"{sol.evaluations} model evaluations in {sol.elapsed * 1e3:.2f} ms")
    return 0


def _open_workspace(workspace: str, *, systems: int | None = None):
    """Open (or create) a persistent prepare/restore workspace."""
    from .core import RAPIDS
    from .metadata import MetadataCatalog
    from .storage import FileStorageCluster
    from .transfer import paper_bandwidth_profile

    ws = Path(workspace)
    if (ws / "cluster" / "cluster.json").exists():
        cluster = FileStorageCluster(ws / "cluster")
    else:
        n = systems or 16
        cluster = FileStorageCluster(
            ws / "cluster", bandwidths=paper_bandwidth_profile(n)
        )
    catalog = MetadataCatalog(ws / "metadata")
    return RAPIDS(cluster, catalog), catalog


def _cmd_prepare(args) -> int:
    rapids, catalog = _open_workspace(args.workspace, systems=args.systems)
    parallelism = None if args.parallelism == "auto" else args.parallelism
    try:
        rapids.omega = args.omega
        # Hand the path straight to prepare(): the process pipeline then
        # streams tiles out of the .npy file instead of loading it whole.
        rep = rapids.prepare(
            args.name, args.input,
            parallelism=parallelism,
            processes=args.workers,
            tile_planes=args.tile_planes,
        )
        print(f"prepared {args.name!r}: m = {rep.ft_config}")
        print(f"  storage overhead {rep.storage_overhead:.4f} "
              f"(budget {args.omega})")
        print(f"  expected relative error {rep.expected_error:.4e}")
        print(f"  simulated distribution latency "
              f"{rep.distribution_latency:.3f}s")
        pp = rep.extra.get("procpipe")
        if pp:
            print(f"  pipeline mode {pp['mode']} "
                  f"({pp['processes']} processes, {pp['num_tiles']} tiles, "
                  f"{pp['max_inflight']} in flight)")
        arch = rep.extra.get("archival")
        if arch:
            print(f"  pipelined archival completion {arch['completion']:.3f}s "
                  f"(overlap saving {arch['overlap_saving']:.3f}s)")
    finally:
        catalog.close()
    return 0


def _cmd_restore(args) -> int:
    rapids, catalog = _open_workspace(args.workspace)
    try:
        failed = (
            [int(s) for s in args.failed.split(",")] if args.failed else []
        )
        rapids.cluster.restore_all()
        rapids.cluster.fail(failed)
        res = rapids.restore(
            args.name,
            strategy=args.strategy,
            solver_budget=args.solver_budget,
            target_error=args.target_error,
            parallelism=(None if args.parallelism == "auto"
                         else args.parallelism),
            processes=args.workers,
        )
        if res.data is None:
            print(f"{args.name!r}: no level recoverable under "
                  f"{len(failed)} failures")
            return 2
        np.save(args.output, res.data)
        print(f"restored {args.name!r} -> {args.output}")
        print(f"  levels used {res.levels_used}, recorded error "
              f"{res.achieved_error:.4e}")
        print(f"  simulated gathering latency {res.gathering_latency:.3f}s")
    finally:
        rapids.cluster.restore_all()
        catalog.close()
    return 0


def _cmd_simulate(args) -> int:
    from .sim import CampaignConfig, run_campaign

    ms = tuple(int(m) for m in args.ms.split(","))
    errors = tuple(float(e) for e in args.errors.split(","))
    cfg = CampaignConfig(
        n=args.systems, p_fail=args.p_fail, p_repair=args.p_repair,
        ms=ms, errors=errors, epochs=args.epochs,
        requests_per_epoch=args.requests,
    )
    stats = run_campaign(cfg, seed=args.seed)
    print(f"campaign: {cfg.epochs} epochs x {cfg.requests_per_epoch} "
          f"requests, steady-state p = {cfg.steady_state_p:.4f}")
    print(f"  availability          : {stats.availability:.6f}")
    print(f"  full-accuracy fraction: {stats.full_accuracy_fraction:.6f}")
    print(f"  mean relative error   : {stats.mean_error:.4e}")
    print(f"  max concurrent outages: {stats.max_concurrent_failures}")
    for levels in sorted(stats.levels_histogram):
        count = stats.levels_histogram[levels]
        print(f"  {levels} level(s) restored : {count} requests")
    return 0


def _cmd_validate(args) -> int:
    from .sim import simulate_expected_error

    ms = [int(m) for m in args.ms.split(",")]
    errors = [float(e) for e in args.errors.split(",")]
    res = simulate_expected_error(
        args.systems, args.p, ms, errors, trials=args.trials, seed=args.seed
    )
    print(f"Eq. 5 analytic expected error : {res.analytic:.6e}")
    print(f"Monte Carlo ({res.trials} trials): {res.empirical:.6e} "
          f"± {res.std_error:.1e}")
    print(f"z-score: {res.z_score:+.2f}")
    return 0 if abs(res.z_score) < 5 else 2


def _cmd_lint(args) -> int:
    from .analysis import all_rules, run_lint

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:<24} [{rule.severity}] "
                  f"{rule.description}")
        return 0
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    return run_lint(
        args.paths,
        select=select,
        fmt=args.format,
        use_cache=not args.no_cache,
        cache_path=args.cache_path,
        changed_base=args.changed,
    )


def _chaos_round(
    plan, *, size: int, systems: int, strategy: str, reconfigure: bool = False
) -> dict:
    """One prepare → inject → restore round under ``plan``.

    Preparation runs clean (the round needs a healthy object to attack);
    the injector and its outages are applied before restore.  Returns a
    JSON-able outcome dict whose bytes depend only on ``(seed, plan)`` —
    the replay-verification contract.

    ``reconfigure`` runs one control-loop step between outage and
    restore: the operator observes the outage set, re-solves warm, and
    migrates if it can do so safely (with systems down, migrations
    defer — which the outcome records).  Off by default so existing
    plans' replay digests are unperturbed.
    """
    import hashlib
    import tempfile

    from .chaos import FaultInjector, InjectedFault
    from .core import RAPIDS
    from .metadata import MetadataCatalog
    from .storage import StorageCluster
    from .transfer import paper_bandwidth_profile

    rng = np.random.default_rng(plan.seed)
    data = rng.standard_normal((size, size, size)).astype(np.float32)
    cluster = StorageCluster(paper_bandwidth_profile(systems))
    reconf = None
    with tempfile.TemporaryDirectory() as tmp:
        with MetadataCatalog(Path(tmp) / "meta") as catalog:
            rapids = RAPIDS(cluster, catalog, ec_workers=1)
            rapids.prepare("chaos:demo", data)
            injector = FaultInjector(plan).install(rapids)
            outages = injector.apply_outages(cluster)
            if reconfigure:
                from .control import ReconfigOperator

                try:
                    ev = ReconfigOperator(rapids).step(0, outages)
                    reconf = {
                        "action": ev["action"],
                        "migrations": ev["migrations"],
                        "healed": ev["healed"],
                    }
                except (InjectedFault, KeyError, ValueError,
                        OSError, RuntimeError) as exc:
                    # The injector may fault the operator's own metadata
                    # reads; record it deterministically, keep restoring.
                    reconf = {"error": repr(exc)}
            report = rapids.restore("chaos:demo", strategy=strategy)
    digest = (
        hashlib.sha256(report.data.tobytes()).hexdigest()
        if report.data is not None
        else None
    )
    outcome = {
        "seed": plan.seed,
        "outages": outages,
        "levels_used": report.levels_used,
        "achieved_error": report.achieved_error,
        "data_sha256": digest,
        "degraded": (
            report.degraded.to_dict() if report.degraded is not None else None
        ),
        "injected": injector.summary(),
    }
    if reconfigure:
        outcome["reconfigured"] = reconf
    return outcome


def _chaos_workspace(plan, args) -> int:
    """Persist a plan's damage into a workspace: at-rest rot + outages.

    The counterpart to the synthetic round: instead of preparing a
    throwaway object, the plan's damage specs are inflicted on the
    fragments already resident in ``--workspace`` (deletions, bit rot,
    truncation — checksums kept stale on purpose) and its outages are
    marked persistently.  ``rapids scrub --repair`` heals it back.
    """
    from .chaos import FaultInjector, inflict_at_rest

    rapids, catalog = _open_workspace(args.workspace)
    try:
        inflicted = inflict_at_rest(plan, rapids.cluster)
        outages = FaultInjector(plan).apply_outages(rapids.cluster)
    finally:
        catalog.close()
    if args.json:
        print(json.dumps(
            {"seed": plan.seed, "outages": outages, "inflicted": inflicted},
            indent=2, sort_keys=True,
        ))
    else:
        print(f"plan: {plan.describe()}")
        print(f"  outages (persisted): {outages or 'none'}")
        counts: dict[str, int] = {}
        for rec in inflicted:
            counts[rec["effect"]] = counts.get(rec["effect"], 0) + 1
        for effect, cnt in sorted(counts.items()):
            print(f"  inflicted {effect} x{cnt}")
        if not inflicted and not outages:
            print("  nothing inflicted (plan has no at-rest damage specs)")
        print(f"heal with: rapids scrub --repair "
              f"--workspace {args.workspace}")
    return 0


def _cmd_chaos(args) -> int:
    from .chaos import FaultPlan

    if args.plan:
        plan = FaultPlan.load(args.plan)
        if args.seed is not None:
            plan = plan.with_seed(args.seed)
        plan_path = args.plan
    else:
        plan = FaultPlan.random(
            args.seed if args.seed is not None else 0,
            n_systems=args.systems,
            intensity=args.intensity,
        )
        plan_path = None
    if args.emit_plan:
        plan.save(args.emit_plan)
        plan_path = args.emit_plan

    if args.workspace:
        return _chaos_workspace(plan, args)

    outcome = _chaos_round(
        plan, size=args.size, systems=args.systems, strategy=args.strategy,
        reconfigure=args.reconfigure,
    )
    if args.verify_replay:
        again = _chaos_round(
            plan, size=args.size, systems=args.systems, strategy=args.strategy,
            reconfigure=args.reconfigure,
        )
        if json.dumps(outcome, sort_keys=True) != json.dumps(again, sort_keys=True):
            print("REPLAY MISMATCH: identical (seed, plan) produced "
                  "different outcomes", file=sys.stderr)
            return 3

    if args.json:
        print(json.dumps(outcome, indent=2, sort_keys=True))
    else:
        print(f"plan: {plan.describe()}")
        print(f"  outages: {outcome['outages'] or 'none'}")
        for key, count in sorted(outcome["injected"].items()):
            print(f"  injected {key} x{count}")
        print(f"  levels restored: {outcome['levels_used']} "
              f"(error bound {outcome['achieved_error']:.3e})")
        if outcome["degraded"] is not None:
            for fail in outcome["degraded"]["failures"]:
                print(f"  FAILED level {fail['level']} "
                      f"[{fail['stage']}]: {fail['error']}")
        if args.verify_replay:
            print("  replay verified: identical outcome on second run")
        if plan_path:
            print(f"replay with: rapids chaos --plan {plan_path}")
        else:
            print("replay with: rapids chaos "
                  f"--seed {plan.seed} --intensity {args.intensity} "
                  f"--systems {args.systems} (or --emit-plan to save it)")
    clean = outcome["degraded"] is None and outcome["data_sha256"] is not None
    return 0 if clean else 2


def _cmd_reconfigure(args) -> int:
    from .control import DriftPolicy, ReconfigOperator

    rapids, catalog = _open_workspace(args.workspace)
    code = 0
    results: list[dict] = []
    try:
        if args.omega is not None:
            rapids.omega = args.omega
        if args.p is not None:
            rapids.p = args.p
        operator = ReconfigOperator(
            rapids, policy=DriftPolicy(budget_evals=args.budget_evals)
        )
        names = [args.object] if args.object else catalog.list_objects()
        for name in names:
            rec = catalog.get_object(name)
            if "procpipe" in rec.extra:
                results.append({"object": name, "skipped": "procpipe"})
                continue
            sol = operator.plan(name)
            entry = {
                "object": name,
                "origin": sol.origin,
                "evaluations": sol.evaluations,
                "from": [int(m) for m in rec.ft_config],
                "to": [int(m) for m in sol.ms],
                "expected_error": sol.expected_error,
                "overhead": sol.overhead,
            }
            if entry["to"] != entry["from"] and not args.dry_run:
                report = operator.migrator.migrate(name, sol.ms)
                entry["migrated"] = report.migrated
                entry["deferred"] = report.deferred
                entry["deferred_reasons"] = [
                    s.reason for s in report.steps if s.action == "deferred"
                ]
                if report.deferred:
                    code = 2
            results.append(entry)
    finally:
        catalog.close()
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
        return code
    for entry in results:
        if "skipped" in entry:
            print(f"{entry['object']!r}: skipped ({entry['skipped']})")
            continue
        changed = entry["to"] != entry["from"]
        print(f"{entry['object']!r}: m = {entry['from']} -> {entry['to']}"
              f" [{entry['origin']} solve, {entry['evaluations']} evals]")
        if not changed:
            print("  already optimal under the given parameters")
        elif args.dry_run:
            print("  dry run: no migration performed")
        else:
            print(f"  migrated {entry.get('migrated', 0)} level(s), "
                  f"deferred {entry.get('deferred', 0)}")
            for reason in entry.get("deferred_reasons", []):
                print(f"    deferred: {reason}")
    return code


def _cmd_scenarios(args) -> int:
    from .control import SCENARIOS, run_scenario, scenario_json

    if args.list:
        for spec in SCENARIOS.values():
            print(f"{spec.name:<16} {spec.title}")
            print(f"{'':<16} {spec.description}")
        return 0
    names = (
        list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    )
    code = 0
    for name in names:
        if name not in SCENARIOS:
            print(f"error: unknown scenario {name!r} "
                  f"(choose from {', '.join(SCENARIOS)})", file=sys.stderr)
            return 1
        result = run_scenario(
            name, seed=args.seed, epochs=args.epochs,
            breach_epochs=args.breach_epochs,
        )
        text = scenario_json(result)
        if args.verify_replay:
            again = scenario_json(run_scenario(
                name, seed=args.seed, epochs=args.epochs,
                breach_epochs=args.breach_epochs,
            ))
            if text != again:
                print(f"REPLAY MISMATCH: scenario {name!r} seed "
                      f"{args.seed} produced different trajectories",
                      file=sys.stderr)
                return 3
        if args.outdir:
            outdir = Path(args.outdir)
            outdir.mkdir(parents=True, exist_ok=True)
            path = outdir / f"{name}-seed{args.seed}.json"
            path.write_text(text)
        if args.json:
            sys.stdout.write(text)
        else:
            traj = result["trajectory"]
            reconfigs = sum(
                1 for row in traj if row["action"] == "reconfigure"
            )
            healed = sum(row["healed"] for row in traj)
            print(f"{name}: seed {result['seed']}, "
                  f"{result['epochs']} epochs — "
                  f"{'OK' if result['ok'] else 'BREACH'}")
            print(f"  availability {result['campaign']['availability']:.4f}, "
                  f"mean error {result['campaign']['mean_error']:.3e}")
            print(f"  reconfigurations {reconfigs}, healed {healed}, "
                  f"final overhead {traj[-1]['overhead']:.3f}")
            for obj, info in sorted(result["objects"].items()):
                if info["initial_ms"] != info["final_ms"]:
                    print(f"  {obj}: m {info['initial_ms']} "
                          f"-> {info['final_ms']}")
            if args.verify_replay:
                print("  replay verified: byte-identical trajectory")
            if result["breach_epochs"]:
                print(f"  SAFETY BREACH at epochs {result['breach_epochs']} "
                      f"(longest run {result['max_breach_run']})")
        if not result["ok"]:
            code = 4
    return code


def _cmd_scrub(args) -> int:
    from .healing import scrub_and_repair

    rapids, catalog = _open_workspace(args.workspace)
    try:
        scrub, repair = scrub_and_repair(
            rapids.cluster,
            catalog,
            ledger=rapids.ledger,
            max_fragments=args.max_fragments,
            repair=args.repair,
            dry_run=args.dry_run,
        )
        deficits = rapids.ledger.deficits()
    finally:
        catalog.close()
    healthy = scrub.clean or (
        args.repair
        and not args.dry_run
        and repair is not None
        and not repair.failures
        and not deficits
    )
    if args.report == "json":
        print(json.dumps(
            {
                "scrub": scrub.to_dict(),
                "repair": repair.to_dict() if repair is not None else None,
                "deficits": [e.describe() for e in deficits],
                "healthy": healthy,
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(scrub.describe())
        if repair is not None:
            print(repair.describe())
        for e in deficits:
            print(f"  DEFICIT {e.describe()}")
        if scrub.damage and not args.repair:
            print("re-run with --repair to heal")
    return 0 if healthy else 2


def _cmd_estimate_bandwidth(args) -> int:
    records, _ = generate_transfer_logs(
        num_endpoints=args.endpoints, seed=args.seed
    )
    est = estimate_bandwidths(records)
    print(f"{len(records)} transfer records across {args.endpoints} endpoints")
    for ep in sorted(est):
        print(f"  {ep}: {est[ep] / GB:.2f} GB/s")
    return 0


def _serve_build_stack(td: Path, args):
    """A fresh in-memory archive stack plus its service front end."""
    import time as _time

    from .core import RAPIDS
    from .metadata import MetadataCatalog
    from .refactor import Refactorer
    from .service import ArchiveService, ManualClock, ServiceConfig
    from .storage import StorageCluster
    from .transfer import paper_bandwidth_profile

    cluster = StorageCluster(paper_bandwidth_profile(args.systems))
    catalog = MetadataCatalog(td / "meta")
    rapids = RAPIDS(cluster, catalog, refactorer=Refactorer(4), omega=0.3)
    clk = ManualClock()
    cfg = ServiceConfig(
        queue_capacity=args.queue_capacity,
        rate=args.rate,
        burst=args.rate,
        workers=args.workers,
        clock=_time.monotonic if args.threaded else clk,
    )
    return rapids, ArchiveService(rapids, config=cfg), clk


def _cmd_serve(args) -> int:
    """Run the archive service: idle threaded mode, or a drive round.

    Exit codes: 0 clean; 1 setup error; 4 cross-tenant starvation (a
    tenant had admitted requests but completed none); 5 unclean
    shutdown (requests left queued or unresolved after the drain).
    """
    import tempfile

    from .chaos import FaultInjector, FaultPlan
    from .service import (
        STANDARD_MIXES,
        ServiceRequest,
        drive_open_loop,
        drive_threaded,
        make_schedule,
        synthetic_field,
    )

    mix = STANDARD_MIXES.get(args.mix)
    if mix is None:
        print(f"error: unknown mix {args.mix!r} "
              f"(have: {', '.join(sorted(STANDARD_MIXES))})", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="rapids-serve-") as td_:
        rapids, svc, clk = _serve_build_stack(Path(td_), args)

        # Seed a couple of objects for the restore side of the mix.
        objects = []
        for i in range(2):
            name = f"serve/base/{i}"
            ticket = svc.submit(ServiceRequest(
                tenant="setup", op="prepare", name=name,
                data=synthetic_field(args.seed + i, 4096),
            ))
            svc.pump()
            res = ticket.result(timeout=0)
            if res.status != "ok":
                print(f"error: setup prepare failed: {res.error}",
                      file=sys.stderr)
                return 1
            objects.append(name)

        if args.outage:
            plan = FaultPlan.outages(args.outage, seed=args.seed)
            injector = FaultInjector(plan)
            svc.attach_injector(injector)
            rapids.attach_injector(injector)
            injector.apply_outages(rapids.cluster)

        if not args.drive:
            # Long-lived mode: threaded workers until interrupted.
            svc.start()
            print(f"serving (workers={svc.config.workers}, "
                  f"queue={svc.config.queue_capacity}); Ctrl-C to stop")
            try:
                while True:
                    import time as _time

                    _time.sleep(1.0)
            except KeyboardInterrupt:
                pass
            svc.stop()
            return 0

        schedule = make_schedule(
            mix, objects=objects, count=args.requests, seed=args.seed
        )
        clean = True
        if args.threaded:
            svc.start()
            report = drive_threaded(
                svc, schedule, mix_name=mix.name, seed=args.seed,
                time_scale=args.time_scale,
            )
            try:
                svc.stop()
            except (RuntimeError, OSError, TimeoutError) as exc:
                print(f"unclean shutdown: {exc}", file=sys.stderr)
                clean = False
        else:
            report = drive_open_loop(
                svc, clk, schedule, mix_name=mix.name, seed=args.seed,
                pump_interval=args.pump_interval,
            )
        if svc.queue.depth() != 0 or any(
            not t.done for t in svc._tickets.values()
        ):
            clean = False

        summary = report.summary()
        arrivals: dict[str, int] = {}
        for item in schedule:
            arrivals[item.tenant] = arrivals.get(item.tenant, 0) + 1
        shed_by_tenant: dict[str, int] = {}
        for tenant, _reason, _after in report.sheds:
            shed_by_tenant[tenant] = shed_by_tenant.get(tenant, 0) + 1
        starved = sorted(
            t for t, n in arrivals.items()
            if n - shed_by_tenant.get(t, 0) > 0
            and summary["by_tenant"].get(t, {}).get("completed", 0) == 0
        )

        out = {
            "summary": summary,
            "metrics": svc.snapshot(),
            "outages": sorted(args.outage or []),
            "starved_tenants": starved,
            "clean_shutdown": clean,
        }
        if args.emit_report:
            Path(args.emit_report).write_text(
                json.dumps(out, indent=2, sort_keys=True)
            )
        if args.json:
            print(json.dumps(out, indent=2, sort_keys=True))
        else:
            print(f"mix {mix.name!r}, seed {args.seed}: "
                  f"{summary['completed']} completed, "
                  f"{summary['shed']} shed, "
                  f"{summary['ops_per_s']:.1f} ops/s, "
                  f"p50 {summary['latency_p50_s'] * 1e3:.1f} ms, "
                  f"p99 {summary['latency_p99_s'] * 1e3:.1f} ms")
            for tenant in sorted(summary["by_tenant"]):
                bt = summary["by_tenant"][tenant]
                print(f"  {tenant}: {bt['completed']} done, "
                      f"p99 {bt['p99_s'] * 1e3:.1f} ms")
            if args.outage:
                print(f"  outages injected: {sorted(args.outage)}")
        if starved:
            print(f"STARVATION: tenants {starved} had admitted requests "
                  "but completed none", file=sys.stderr)
            return 4
        if not clean:
            print("UNCLEAN SHUTDOWN: requests left queued or unresolved",
                  file=sys.stderr)
            return 5
        return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="rapids",
        description="RAPIDS: availability/accuracy/performance for "
        "geo-distributed scientific data (HPDC'23 reproduction)",
    )
    p.add_argument("--version", action="version", version=__version__)
    sub = p.add_subparsers(dest="command", required=True)

    r = sub.add_parser("refactor", help="refactor a .npy array")
    r.add_argument("input")
    r.add_argument("outdir")
    r.add_argument("--components", type=int, default=4)
    r.add_argument("--planes", type=int, default=32)
    r.add_argument("--no-correction", action="store_true")
    r.add_argument("--fast", action="store_true",
                   help="skip empirical error measurement")
    r.set_defaults(func=_cmd_refactor)

    c = sub.add_parser("reconstruct", help="rebuild an array from components")
    c.add_argument("indir")
    c.add_argument("output")
    c.add_argument("--upto", type=int, default=None,
                   help="use only the first N components")
    c.set_defaults(func=_cmd_reconstruct)

    i = sub.add_parser("info", help="describe a refactored object")
    i.add_argument("indir")
    i.set_defaults(func=_cmd_info)

    o = sub.add_parser("optimize-ft", help="solve the FT configuration model")
    o.add_argument("--systems", type=int, default=16)
    o.add_argument("--p", type=float, default=0.01)
    o.add_argument("--sizes", required=True,
                   help="comma-separated level sizes in bytes")
    o.add_argument("--errors", required=True,
                   help="comma-separated level errors")
    o.add_argument("--original-size", type=float, required=True)
    o.add_argument("--omega", type=float, default=0.25)
    o.add_argument("--brute-force", action="store_true")
    o.set_defaults(func=_cmd_optimize_ft)

    ln = sub.add_parser(
        "lint",
        help="run the rapidslint static analyzer over source paths",
    )
    ln.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    ln.add_argument("--select", default=None,
                    help="comma-separated rule ids to run (default: all)")
    ln.add_argument("--format", default="text", choices=["text", "json"])
    ln.add_argument("--list-rules", action="store_true",
                    help="print the rule registry and exit")
    ln.add_argument("--changed", nargs="?", const="HEAD", default=None,
                    metavar="BASE",
                    help="only report findings for files changed vs the "
                         "given git ref (default HEAD); the whole tree is "
                         "still analyzed so interprocedural rules see "
                         "every caller")
    ln.add_argument("--no-cache", action="store_true",
                    help="ignore and don't write the incremental lint cache")
    ln.add_argument("--cache-path", default=None,
                    help="incremental cache location "
                         "(default: .rapidslint-cache.json)")
    ln.set_defaults(func=_cmd_lint)

    ch = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection round (prepare → inject → restore)",
    )
    ch.add_argument("--seed", type=int, default=None,
                    help="plan seed (default 0; overrides a loaded plan's)")
    ch.add_argument("--plan", default=None,
                    help="JSON fault plan to replay (default: a random plan)")
    ch.add_argument("--emit-plan", default=None,
                    help="write the effective plan to this JSON file")
    ch.add_argument("--systems", type=int, default=16)
    ch.add_argument("--intensity", type=float, default=0.15,
                    help="random-plan fault density in [0, 1]")
    ch.add_argument("--size", type=int, default=33,
                    help="edge length of the synthetic 3-D test field")
    ch.add_argument("--strategy", default="naive",
                    choices=["random", "naive", "optimized"])
    ch.add_argument("--verify-replay", action="store_true",
                    help="run the round twice and require identical outcomes")
    ch.add_argument("--reconfigure", action="store_true",
                    help="run one control-loop step (observe -> warm "
                         "re-solve -> live migrate) between outage and "
                         "restore; the outcome records what it did")
    ch.add_argument("--json", action="store_true",
                    help="print the outcome as JSON")
    ch.add_argument("--workspace", default=None,
                    help="inflict the plan's damage at rest on this "
                         "workspace (instead of a synthetic round); heal "
                         "it back with `rapids scrub --repair`")
    ch.set_defaults(func=_cmd_chaos)

    sc = sub.add_parser(
        "scrub",
        help="verify a workspace's fragments at rest against the "
             "durability ledger, optionally repairing damage",
    )
    sc.add_argument("--workspace", default="rapids-ws")
    sc.add_argument("--repair", action="store_true",
                    help="regenerate damaged fragments after the sweep")
    sc.add_argument("--dry-run", action="store_true",
                    help="plan repairs without writing anything")
    sc.add_argument("--max-fragments", type=int, default=None,
                    help="rate limit: stop after about this many fragments "
                         "and persist a cursor to resume from next run")
    sc.add_argument("--report", choices=["text", "json"], default="text",
                    help="output format (default: text)")
    sc.set_defaults(func=_cmd_scrub)

    rc = sub.add_parser(
        "reconfigure",
        help="re-solve a workspace's FT configurations (warm-started "
             "from the incumbents) and migrate changed objects live",
    )
    rc.add_argument("--workspace", default="rapids-ws")
    rc.add_argument("--object", default=None,
                    help="reconfigure only this object (default: all)")
    rc.add_argument("--omega", type=float, default=None,
                    help="new storage-overhead budget (default: keep)")
    rc.add_argument("--p", type=float, default=None,
                    help="new per-system outage probability (default: keep)")
    rc.add_argument("--budget-evals", type=int, default=None,
                    help="solve-time budget in model evaluations")
    rc.add_argument("--dry-run", action="store_true",
                    help="plan only; do not migrate")
    rc.add_argument("--json", action="store_true")
    rc.set_defaults(func=_cmd_reconfigure)

    sn = sub.add_parser(
        "scenarios",
        help="run the deterministic chaos-campaign scenario suite "
             "(control loop under drift)",
    )
    sn.add_argument("--scenario", default="all",
                    help="scenario name, or 'all' (default)")
    sn.add_argument("--list", action="store_true",
                    help="list the scenario catalog and exit")
    sn.add_argument("--seed", type=int, default=7)
    sn.add_argument("--epochs", type=int, default=None,
                    help="override the scenario's epoch count")
    sn.add_argument("--outdir", default=None,
                    help="write each trajectory JSON artifact here")
    sn.add_argument("--breach-epochs", type=int, default=0,
                    help="max tolerated consecutive safety-breach epochs "
                         "(default 0: any breach fails)")
    sn.add_argument("--verify-replay", action="store_true",
                    help="run each scenario twice and require "
                         "byte-identical trajectories")
    sn.add_argument("--json", action="store_true",
                    help="print the trajectory JSON to stdout")
    sn.set_defaults(func=_cmd_scenarios)

    sv = sub.add_parser(
        "serve",
        help="run the multi-tenant archive service (idle threaded mode, "
             "or --drive: a seeded mixed-tenant traffic round with "
             "starvation/shutdown checks)",
    )
    sv.add_argument("--drive", action="store_true",
                    help="drive a synthetic open-loop traffic round and "
                         "exit (4 = cross-tenant starvation, 5 = unclean "
                         "shutdown)")
    sv.add_argument("--mix", default="balanced",
                    help="tenant mix name: balanced | hog")
    sv.add_argument("--requests", type=int, default=60,
                    help="arrivals to schedule in drive mode")
    sv.add_argument("--seed", type=int, default=7)
    sv.add_argument("--systems", type=int, default=8)
    sv.add_argument("--outage", type=int, action="append", default=None,
                    metavar="SID",
                    help="inject an outage of this backend system id "
                         "(repeatable)")
    sv.add_argument("--threaded", action="store_true",
                    help="drive the started worker threads on the wall "
                         "clock instead of the deterministic inline pump")
    sv.add_argument("--time-scale", type=float, default=0.1,
                    help="threaded mode: scale scheduled arrival times")
    sv.add_argument("--pump-interval", type=int, default=3,
                    help="deterministic mode: arrivals per executed "
                         "request (higher = more overload)")
    sv.add_argument("--queue-capacity", type=int, default=32)
    sv.add_argument("--rate", type=float, default=10_000.0,
                    help="per-tenant token-bucket rate (and burst)")
    sv.add_argument("--workers", type=int, default=2)
    sv.add_argument("--emit-report", default=None,
                    help="write the drive report JSON to this file")
    sv.add_argument("--json", action="store_true",
                    help="print the drive report as JSON")
    sv.set_defaults(func=_cmd_serve)

    b = sub.add_parser("estimate-bandwidth",
                       help="synthesize Globus logs and estimate bandwidths")
    b.add_argument("--endpoints", type=int, default=16)
    b.add_argument("--seed", type=int, default=2014)
    b.set_defaults(func=_cmd_estimate_bandwidth)

    pp = sub.add_parser(
        "prepare",
        help="refactor + protect a .npy array into a persistent workspace",
    )
    pp.add_argument("input")
    pp.add_argument("name", help="data object name, e.g. nyx:temperature")
    pp.add_argument("--workspace", default="rapids-ws")
    pp.add_argument("--systems", type=int, default=16)
    pp.add_argument("--omega", type=float, default=0.25)
    pp.add_argument("--parallelism", default="auto",
                    choices=["auto", "process", "thread", "none"],
                    help="execution mode (auto: process pool for inputs "
                         "of 32 MiB and up, threads otherwise)")
    pp.add_argument("--workers", type=int, default=None,
                    help="worker processes for --parallelism=process "
                         "(default: affinity-aware)")
    pp.add_argument("--tile-planes", type=int, default=None,
                    help="axis-0 planes per tile in process mode "
                         "(default: ~8 MiB tiles)")
    pp.set_defaults(func=_cmd_prepare)

    rr = sub.add_parser(
        "restore", help="restore an object from a workspace under failures"
    )
    rr.add_argument("name")
    rr.add_argument("output")
    rr.add_argument("--workspace", default="rapids-ws")
    rr.add_argument("--failed", default="",
                    help="comma-separated failed system ids")
    rr.add_argument("--strategy", default="naive",
                    choices=["random", "naive", "optimized"])
    rr.add_argument("--solver-budget", type=float, default=1.0)
    rr.add_argument("--target-error", type=float, default=None)
    rr.add_argument("--parallelism", default="auto",
                    choices=["auto", "process", "thread", "none"],
                    help="reconstruction execution mode")
    rr.add_argument("--workers", type=int, default=None,
                    help="worker processes for --parallelism=process")
    rr.set_defaults(func=_cmd_restore)

    s = sub.add_parser("simulate", help="run a failure-campaign simulation")
    s.add_argument("--systems", type=int, default=16)
    s.add_argument("--p-fail", type=float, default=0.002)
    s.add_argument("--p-repair", type=float, default=0.2)
    s.add_argument("--ms", default="8,5,4,2")
    s.add_argument("--errors", default="4e-3,5e-4,6e-5,1e-7")
    s.add_argument("--epochs", type=int, default=10_000)
    s.add_argument("--requests", type=int, default=1)
    s.add_argument("--seed", type=int, default=0)
    s.set_defaults(func=_cmd_simulate)

    v = sub.add_parser("validate",
                       help="Monte Carlo check of the Eq. 5 expected error")
    v.add_argument("--systems", type=int, default=16)
    v.add_argument("--p", type=float, default=0.05)
    v.add_argument("--ms", default="8,5,4,2")
    v.add_argument("--errors", default="4e-3,5e-4,6e-5,1e-7")
    v.add_argument("--trials", type=int, default=100_000)
    v.add_argument("--seed", type=int, default=0)
    v.set_defaults(func=_cmd_validate)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
