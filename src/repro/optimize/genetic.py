"""Genetic-algorithm solver for the gathering MINLP.

A third solver family alongside the ACO (MIDACO substitute) and the
exhaustive oracle.  MIDACO itself is frequently compared against GAs in
the MINLP literature, so having both lets the solver ablation say
something about the *problem* (how hard is Eq. 10 really?) rather than
one algorithm.

Representation: the feasible-by-construction encoding — for each level
j, a set of exactly ``k_j`` distinct available systems.  Crossover mixes
parents per level (uniform set crossover with repair to the exact
count); mutation swaps a selected system for an unused one, independently per
level.  Elitist generational replacement with tournament selection,
plus random immigrants each generation to keep diversity on the small
solution spaces where premature convergence is the failure mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .minlp import GatheringModel

__all__ = ["GASolver", "GAResult"]


@dataclass
class GAResult:
    """Outcome of one GA run."""

    x: np.ndarray
    value: float
    generations: int
    evaluations: int
    elapsed: float
    history: list[float]


class GASolver:
    """Elitist genetic algorithm over exact-count gathering selections."""

    def __init__(
        self,
        *,
        population: int = 32,
        elite: int = 2,
        tournament: int = 3,
        mutation_rate: float = 0.15,
        seed: int | None = None,
    ) -> None:
        if population < 4:
            raise ValueError("population must be >= 4")
        if not 0 < elite < population:
            raise ValueError("elite must be in (0, population)")
        if tournament < 2:
            raise ValueError("tournament must be >= 2")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        self.population = population
        self.elite = elite
        self.tournament = tournament
        self.mutation_rate = mutation_rate
        self.seed = seed

    def solve(
        self,
        model: GatheringModel,
        *,
        warm_start: np.ndarray | None = None,
        time_budget: float | None = None,
        max_generations: int = 100,
    ) -> GAResult:
        rng = np.random.default_rng(self.seed)
        start = time.perf_counter()
        pop = [model.random_solution(rng) for _ in range(self.population)]
        if warm_start is not None:
            pop[0] = model.repair(warm_start, rng)
        fitness = [model.evaluate(x) for x in pop]
        evaluations = len(pop)
        order = np.argsort(fitness)
        best_x, best_val = pop[order[0]].copy(), fitness[order[0]]
        history = [best_val]

        gen = 0
        while gen < max_generations:
            if (
                time_budget is not None
                and time.perf_counter() - start >= time_budget
            ):
                break
            gen += 1
            nxt = [pop[i].copy() for i in order[: self.elite]]
            # Random immigrants guard against premature convergence.
            immigrants = max(1, self.population // 16)
            for _ in range(immigrants):
                nxt.append(model.random_solution(rng))
            while len(nxt) < self.population:
                pa = self._tournament(pop, fitness, rng)
                pb = self._tournament(pop, fitness, rng)
                child = self._crossover(model, pa, pb, rng)
                child = self._mutate(model, child, rng)
                nxt.append(child)
            pop = nxt
            fitness = [model.evaluate(x) for x in pop]
            evaluations += len(pop)
            order = np.argsort(fitness)
            if fitness[order[0]] < best_val:
                best_x, best_val = pop[order[0]].copy(), fitness[order[0]]
            history.append(best_val)
        return GAResult(
            x=best_x, value=float(best_val), generations=gen,
            evaluations=evaluations, elapsed=time.perf_counter() - start,
            history=history,
        )

    def _tournament(self, pop, fitness, rng) -> np.ndarray:
        idx = rng.choice(len(pop), size=self.tournament, replace=False)
        winner = min(idx, key=lambda i: fitness[i])
        return pop[winner]

    @staticmethod
    def _crossover(model, pa, pb, rng) -> np.ndarray:
        """Per-level uniform set crossover with exact-count repair."""
        child = np.zeros_like(pa)
        for j in range(model.levels):
            a = set(np.nonzero(pa[:, j])[0].tolist())
            b = set(np.nonzero(pb[:, j])[0].tolist())
            keep = list(a & b)
            pool = list(a ^ b)
            rng.shuffle(pool)
            need = int(model.needed[j])
            chosen = (keep + pool)[:need]
            if len(chosen) < need:
                avail = [
                    i
                    for i in np.nonzero(model.available)[0]
                    if i not in chosen
                ]
                rng.shuffle(avail)
                chosen += avail[: need - len(chosen)]
            child[chosen, j] = 1
        return child

    def _mutate(self, model, x, rng) -> np.ndarray:
        """Per level, with probability mutation_rate, swap one selected
        system for an unused one."""
        x = x.copy()
        for j in range(model.levels):
            if rng.random() >= self.mutation_rate:
                continue
            used = np.nonzero(x[:, j] == 1)[0]
            free = np.nonzero(model.available & (x[:, j] == 0))[0]
            if used.size and free.size:
                a = int(rng.choice(used))
                b = int(rng.choice(free))
                x[a, j], x[b, j] = 0, 1
        return x
