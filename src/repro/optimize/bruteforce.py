"""Exhaustive search for the gathering model (test oracle).

Only usable at toy sizes — the solution space is
``prod_j C(#available, k_j)`` — but it certifies the ACO solver's
solution quality in the test suite and in the solver-ablation bench.
"""

from __future__ import annotations

import itertools

import numpy as np

from .minlp import GatheringModel

__all__ = ["exhaustive_gathering", "solution_space_size"]


def solution_space_size(model: GatheringModel, *, exact_counts: bool = True) -> int:
    """Number of candidate selections with exactly k_j fragments/level."""
    from math import comb

    avail = int(model.available.sum())
    total = 1
    for k in model.needed:
        total *= comb(avail, int(k))
    return total


def exhaustive_gathering(
    model: GatheringModel, *, limit: int = 2_000_000
) -> tuple[np.ndarray, float]:
    """Enumerate every exactly-k_j selection; returns (best_x, best_value).

    Raises :class:`ValueError` if the space exceeds ``limit`` candidates.
    Restricting to exact counts is safe for both objectives: adding a
    request to any system never decreases that system's per-request
    times, so some optimal solution uses exactly k_j fragments per level.
    """
    size = solution_space_size(model)
    if size > limit:
        raise ValueError(
            f"solution space has {size} candidates, above the limit {limit}"
        )
    avail = np.nonzero(model.available)[0]
    per_level = [
        list(itertools.combinations(avail.tolist(), int(k))) for k in model.needed
    ]
    best_x, best_val = None, float("inf")
    for combo in itertools.product(*per_level):
        x = np.zeros((model.n, model.levels), dtype=np.int8)
        for j, systems in enumerate(combo):
            x[list(systems), j] = 1
        val = model.evaluate(x)
        if val < best_val:
            best_x, best_val = x, val
    return best_x, best_val
