"""MINLP solving for the gathering problem (MIDACO substitute): the model
(Eq. 10), an ant-colony solver, and an exhaustive test oracle."""

from .aco import ACOResult, ACOSolver
from .bruteforce import exhaustive_gathering, solution_space_size
from .genetic import GAResult, GASolver
from .minlp import GatheringModel

__all__ = [
    "GatheringModel",
    "ACOSolver",
    "ACOResult",
    "GASolver",
    "GAResult",
    "exhaustive_gathering",
    "solution_space_size",
]
