"""The data-gathering MINLP model (Eq. 10 of the paper).

Decision variables: binary x[i, j] — pull a fragment of level j from
storage system i.  Objective: the average transfer time under the
equal-share bandwidth model,

    sum_ij ( x_ij * frag_j * c_i / B_i ) / sum_ij x_ij,
    c_i = sum_j x_ij  (concurrent requests to system i)

Constraints: at least ``k_j = n - m_j`` fragments per recoverable level;
nothing from unavailable systems.  The model also exposes a ``makespan``
objective (slowest transfer), which is what the end-to-end latency
actually measures — the ablation bench compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GatheringModel"]


@dataclass
class GatheringModel:
    """Feasibility, objective, and repair for the gathering problem.

    Parameters
    ----------
    fragment_sizes:
        Per-level fragment size in bytes (s_j / (n - m_j)).
    needed:
        Per-level fragment count k_j = n - m_j.  Levels that cannot be
        recovered (k_j > #available systems) must be excluded by the
        caller before building the model.
    bandwidths:
        Per-system bandwidth estimates, bytes/s (length n).
    available:
        Boolean mask of reachable systems (length n).
    objective:
        ``"average"`` (the paper's Eq. 10) or ``"makespan"``.
    """

    fragment_sizes: np.ndarray
    needed: np.ndarray
    bandwidths: np.ndarray
    available: np.ndarray
    objective: str = "average"

    def __post_init__(self) -> None:
        self.fragment_sizes = np.asarray(self.fragment_sizes, dtype=np.float64)
        self.needed = np.asarray(self.needed, dtype=np.int64)
        self.bandwidths = np.asarray(self.bandwidths, dtype=np.float64)
        self.available = np.asarray(self.available, dtype=bool)
        if self.fragment_sizes.shape != self.needed.shape:
            raise ValueError("fragment_sizes and needed must align")
        if self.bandwidths.shape != self.available.shape:
            raise ValueError("bandwidths and available must align")
        if np.any(self.fragment_sizes < 0) or np.any(self.bandwidths <= 0):
            raise ValueError("sizes must be >= 0 and bandwidths > 0")
        if np.any(self.needed < 1):
            raise ValueError("each included level needs at least 1 fragment")
        if np.any(self.needed > self.available.sum()):
            raise ValueError(
                "a level needs more fragments than there are available "
                "systems; exclude unrecoverable levels before modelling"
            )
        if self.objective not in ("average", "makespan"):
            raise ValueError(f"unknown objective {self.objective!r}")

    @property
    def n(self) -> int:
        return len(self.bandwidths)

    @property
    def levels(self) -> int:
        return len(self.needed)

    def feasible(self, x: np.ndarray) -> bool:
        """Check the Eq. 10 constraints."""
        x = np.asarray(x)
        if x.shape != (self.n, self.levels):
            return False
        if np.any(x[~self.available, :]):
            return False
        return bool(np.all(x.sum(axis=0) >= self.needed))

    def transfer_times(self, x: np.ndarray) -> np.ndarray:
        """Per-selected-fragment transfer times (0 where x == 0)."""
        x = np.asarray(x, dtype=np.float64)
        per_system = x.sum(axis=1)  # c_i
        rate = np.zeros(self.n)
        np.divide(self.bandwidths, per_system, out=rate, where=per_system > 0)
        with np.errstate(divide="ignore"):
            t = x * self.fragment_sizes[None, :] / np.where(
                rate[:, None] > 0, rate[:, None], np.inf
            )
        return t

    def evaluate(self, x: np.ndarray) -> float:
        """Objective value; +inf for infeasible selections."""
        if not self.feasible(x):
            return float("inf")
        t = self.transfer_times(x)
        total_requests = np.asarray(x).sum()
        if self.objective == "average":
            return float(t.sum() / total_requests)
        return float(t.max())

    # -- constructing / repairing candidate selections --------------------

    def naive_solution(self) -> np.ndarray:
        """The paper's greedy baseline: per level, take the k_j fastest
        available systems (ignoring contention)."""
        x = np.zeros((self.n, self.levels), dtype=np.int8)
        avail = np.nonzero(self.available)[0]
        order = avail[np.argsort(self.bandwidths[avail])[::-1]]
        for j in range(self.levels):
            x[order[: self.needed[j]], j] = 1
        return x

    def random_solution(self, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random feasible selection (exactly k_j per level)."""
        x = np.zeros((self.n, self.levels), dtype=np.int8)
        avail = np.nonzero(self.available)[0]
        for j in range(self.levels):
            pick = rng.choice(avail, size=self.needed[j], replace=False)
            x[pick, j] = 1
        return x

    def repair(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Make a selection feasible: zero unavailable rows, then add the
        least-loaded fast systems to under-provisioned levels."""
        x = np.array(x, dtype=np.int8)
        x[~self.available, :] = 0
        for j in range(self.levels):
            have = int(x[:, j].sum())
            deficit = int(self.needed[j]) - have
            if deficit <= 0:
                continue
            candidates = np.nonzero(self.available & (x[:, j] == 0))[0]
            # Prefer systems that are fast and not yet busy.
            load = x[candidates].sum(axis=1)
            score = self.bandwidths[candidates] / (1.0 + load)
            pick = candidates[np.argsort(score)[::-1][:deficit]]
            x[pick, j] = 1
        return x

    def local_search(self, x: np.ndarray, *, max_rounds: int = 20) -> np.ndarray:
        """First-improvement swap search: move one level's request from
        system a to unused system b while it lowers the objective."""
        x = np.array(x, dtype=np.int8)
        best = self.evaluate(x)
        for _ in range(max_rounds):
            improved = False
            for j in range(self.levels):
                used = np.nonzero(x[:, j] == 1)[0]
                free = np.nonzero(self.available & (x[:, j] == 0))[0]
                for a in used:
                    for b in free:
                        x[a, j], x[b, j] = 0, 1
                        val = self.evaluate(x)
                        if val < best - 1e-12:
                            best = val
                            improved = True
                            break
                        x[a, j], x[b, j] = 1, 0
                    if improved:
                        break
                if improved:
                    break
            if not improved:
                return x
        return x
