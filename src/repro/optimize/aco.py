"""Ant Colony Optimization for the gathering MINLP (MIDACO substitute).

MIDACO, the solver the paper calls with a 60-second budget, is an
evolutionary MINLP solver based on Ant Colony Optimization.  This module
implements the same algorithm family for the binary gathering model:

* a pheromone matrix tau[i, j] biases which systems each ant picks for
  each level, combined with a bandwidth heuristic eta[i] = B_i;
* each ant constructs a feasible selection (exactly k_j fragments per
  level), which is then polished with the model's swap local search;
* pheromones evaporate and the iteration-best/global-best solutions
  deposit, with min/max clamping (MMAS style) to avoid stagnation;
* like the paper's usage, the solver accepts a warm start (the Naive
  strategy) and a wall-clock budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .minlp import GatheringModel

__all__ = ["ACOSolver", "ACOResult"]


@dataclass
class ACOResult:
    """Outcome of one ACO run."""

    x: np.ndarray
    value: float
    iterations: int
    evaluations: int
    elapsed: float
    history: list[float]


class ACOSolver:
    """MMAS-style ant colony solver for :class:`GatheringModel`.

    Parameters
    ----------
    ants:
        Colony size per iteration.
    alpha / beta:
        Pheromone vs heuristic exponents.
    rho:
        Evaporation rate per iteration.
    local_search:
        Polish each iteration's best ant with swap moves.
    seed:
        RNG seed (deterministic for a given budget in iterations; a
        wall-clock budget introduces scheduling nondeterminism).
    """

    def __init__(
        self,
        *,
        ants: int = 16,
        alpha: float = 1.0,
        beta: float = 2.0,
        rho: float = 0.15,
        local_search: bool = True,
        seed: int | None = None,
    ) -> None:
        if ants < 1:
            raise ValueError("need at least one ant")
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must be in (0, 1)")
        self.ants = ants
        self.alpha = alpha
        self.beta = beta
        self.rho = rho
        self.local_search = local_search
        self.seed = seed

    def solve(
        self,
        model: GatheringModel,
        *,
        warm_start: np.ndarray | None = None,
        time_budget: float | None = None,
        max_iterations: int = 200,
    ) -> ACOResult:
        """Run the colony until the time budget or iteration cap.

        ``warm_start`` seeds the global best (the paper warm-starts from
        the Naive strategy to accelerate the search).
        """
        rng = np.random.default_rng(self.seed)
        start = time.perf_counter()
        n, levels = model.n, model.levels
        tau = np.ones((n, levels))
        tau_max, tau_min = 1.0, 1.0 / (2.0 * n)
        eta = model.bandwidths / model.bandwidths.max()

        evaluations = 0
        if warm_start is not None:
            best_x = model.repair(warm_start, rng)
        else:
            best_x = model.naive_solution()
        best_val = model.evaluate(best_x)
        evaluations += 1
        history = [best_val]

        it = 0
        while it < max_iterations:
            if time_budget is not None and time.perf_counter() - start >= time_budget:
                break
            it += 1
            iter_best_x, iter_best_val = None, float("inf")
            for _ in range(self.ants):
                x = self._construct(model, tau, eta, rng)
                val = model.evaluate(x)
                evaluations += 1
                if val < iter_best_val:
                    iter_best_x, iter_best_val = x, val
            if self.local_search and iter_best_x is not None:
                iter_best_x = model.local_search(iter_best_x, max_rounds=5)
                iter_best_val = model.evaluate(iter_best_x)
                evaluations += 1
            if iter_best_val < best_val:
                best_x, best_val = iter_best_x, iter_best_val
            # Evaporate, then deposit from the global best (MMAS).
            tau *= 1.0 - self.rho
            deposit = self.rho * tau_max
            tau += deposit * best_x
            np.clip(tau, tau_min, tau_max, out=tau)
            history.append(best_val)

        return ACOResult(
            x=np.asarray(best_x, dtype=np.int8),
            value=float(best_val),
            iterations=it,
            evaluations=evaluations,
            elapsed=time.perf_counter() - start,
            history=history,
        )

    def _construct(
        self,
        model: GatheringModel,
        tau: np.ndarray,
        eta: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One ant: sample k_j distinct available systems per level with
        probability proportional to tau^alpha * eta^beta."""
        x = np.zeros((model.n, model.levels), dtype=np.int8)
        avail = np.nonzero(model.available)[0]
        for j in range(model.levels):
            weights = tau[avail, j] ** self.alpha * eta[avail] ** self.beta
            total = weights.sum()
            if total <= 0:
                probs = None
            else:
                probs = weights / total
            pick = rng.choice(
                avail, size=int(model.needed[j]), replace=False, p=probs
            )
            x[pick, j] = 1
        return x
