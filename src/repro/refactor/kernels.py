"""Chunked, thread-parallel kernels behind the refactoring pipeline.

This is the refactor-side counterpart of :mod:`repro.ec.kernels`: the
plane-at-a-time Python loops that dominated ``encode_planes`` /
``decode_planes`` are replaced by cache-blocked vectorised passes, and
every independent unit of work — coefficient chunks, per-plane zlib
jobs, per-group quantisations — can fan out over
:func:`repro.parallel.threads.thread_map` (``zlib`` and the large NumPy
ufuncs release the GIL).

Three layers:

* **Blob codec** (:func:`deflate` / :func:`inflate` / :func:`frame` /
  :func:`unframe` / :func:`pack_bits` / :func:`unpack_bits`): the framed
  zlib-with-raw-fallback plane format.  Byte-compatible with every
  previously written plane blob.
* **Encode** (:func:`quantise`, :func:`plane_payloads`,
  :func:`encode_groups`): fixed-point quantisation and bitplane
  extraction.  Coefficients are processed in ``COEFF_CHUNK``-sized
  chunks; each chunk unpacks its big-endian word view into a bit
  matrix, transposes it plane-major, and packs — so the per-plane byte
  strings come out of contiguous rows instead of the seed path's
  strided column gathers.  Chunks write disjoint slices of the shared
  ``packed`` / ``lead`` outputs and may therefore run on threads.
* **Decode** (:func:`decoded_state`, :func:`prefix_values`):
  the inverse — inflate every kept plane (threaded), then rebuild the
  quantised magnitudes chunk-by-chunk with one ``packbits``/word-view
  pass instead of a per-plane shift-or loop.  :class:`DecodedGroup`
  keeps the integer magnitudes, so any *shorter* prefix is an O(n) mask
  (clear the low planes) rather than a fresh decode — the trick that
  makes incremental prefix-error measurement cost one decode total.

Every function is bit-compatible with the serial reference loops it
replaces (property-tested in ``tests/test_refactor_kernels.py``): same
quantised integers, same sign assignment order, same plane bytes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..parallel.threads import thread_map

__all__ = [
    "COEFF_CHUNK",
    "DecodedGroup",
    "QuantisedGroup",
    "decoded_state",
    "deflate",
    "encode_groups",
    "frame",
    "inflate",
    "pack_bits",
    "plane_payloads",
    "prefix_values",
    "quantise",
    "unframe",
    "unpack_bits",
]

#: Coefficients per extraction chunk.  Must be a multiple of 8 so chunk
#: boundaries land on plane-byte boundaries; 512 Ki keeps the chunk's
#: bit matrix (chunk x 32 bytes) well inside the last-level cache.
COEFF_CHUNK = 1 << 19


# -- blob codec ---------------------------------------------------------


def deflate(payload: bytes) -> bytes:
    """zlib with a raw-storage fallback for incompressible payloads.

    The least-significant planes of floating-point data are effectively
    random; compressing them wastes time and can even expand.  A 1-byte
    marker selects the representation.
    """
    z = zlib.compress(payload, level=6)
    if len(z) < len(payload):
        return b"\x01" + z
    return b"\x00" + payload


def inflate(blob: bytes) -> bytes:
    if blob[:1] == b"\x01":
        return zlib.decompress(blob[1:])
    return blob[1:]


def pack_bits(bits: np.ndarray) -> bytes:
    return deflate(np.packbits(bits).tobytes())


def unpack_bits(blob: bytes, count: int) -> np.ndarray:
    raw = np.frombuffer(inflate(blob), dtype=np.uint8)
    return np.unpackbits(raw, count=count).astype(bool)


def frame(bits_blob: bytes, sign_blob: bytes) -> bytes:
    return struct.pack("<I", len(bits_blob)) + bits_blob + sign_blob


def unframe(blob: bytes) -> tuple[bytes, bytes]:
    (blen,) = struct.unpack_from("<I", blob, 0)
    return blob[4 : 4 + blen], blob[4 + blen :]


# -- encode -------------------------------------------------------------


@dataclass
class QuantisedGroup:
    """One coefficient group after quantisation and bitplane extraction.

    ``packed`` is plane-major: row ``i`` holds the packbits of plane
    ``i``'s magnitude bits over all coefficients (the byte string the
    plane blob deflates).  ``lead`` is each coefficient's leading-plane
    index (``num_planes`` for zero coefficients), which determines the
    plane its sign bit ships in.
    """

    count: int
    exponent: int
    num_planes: int
    packed: np.ndarray  # (num_planes, ceil(count / 8)) uint8
    sign: np.ndarray  # (count,) bool
    lead: np.ndarray  # (count,) int16
    q: np.ndarray  # (count,) uint64 quantised magnitudes
    # Stable ordering of coefficients by leading plane: coefficients with
    # lead == i occupy sign_order[sign_offsets[i]:sign_offsets[i + 1]]
    # in array order, which is exactly the per-plane sign-bit order.
    # One radix sort replaces num_planes boolean-mask sweeps over lead.
    sign_order: np.ndarray | None = None
    sign_offsets: np.ndarray | None = None

    def decoded(self) -> "DecodedGroup":
        """View this group as a fully-decoded state.

        The encoder already holds the quantised magnitudes, so prefix
        reconstruction during ``measure_errors`` needs no plane decode
        at all.  Signs of coefficients that quantised to zero are
        dropped (the decoder can never learn them), making
        :func:`prefix_values` of the result bit-identical to decoding
        the serialised planes.
        """
        return DecodedGroup(
            self.count, self.exponent, self.num_planes, self.num_planes,
            self.q, self.sign & (self.q != 0),
        )


def _word_dtype(num_planes: int) -> tuple[str, int]:
    """Big-endian word view used for bit extraction/assembly."""
    return (">u4", 32) if num_planes <= 32 else (">u8", 64)


def quantise(
    coeffs: np.ndarray,
    num_planes: int,
    *,
    lsb_exponent: int | None = None,
    workers: int | None = None,
    chunk: int = COEFF_CHUNK,
) -> QuantisedGroup:
    """Quantise a flat coefficient array and extract its bitplanes.

    Semantics (exponent selection, anchored-mode plane-count shrinking,
    subnormal clamping, rounding and clamping of the fixed-point
    magnitudes) are identical to the original serial encoder; the bit
    extraction is chunked and, with ``workers > 1``, thread-parallel.
    """
    if chunk % 8:
        raise ValueError(f"chunk must be a multiple of 8, got {chunk}")
    coeffs = np.ascontiguousarray(coeffs, dtype=np.float64).reshape(-1)
    count = coeffs.size
    empty = QuantisedGroup(
        count, 0, 0,
        np.empty((0, (count + 7) // 8), dtype=np.uint8),
        np.zeros(count, dtype=bool),
        np.zeros(count, dtype=np.int16),
        np.zeros(count, dtype=np.uint64),
    )
    if count == 0:
        return empty
    if not (1 <= num_planes <= 60):
        raise ValueError(f"num_planes must be in [1, 60], got {num_planes}")
    amax = float(np.max(np.abs(coeffs)))
    if amax == 0.0 or not np.isfinite(amax):
        exponent = 0
    else:
        exponent = int(np.floor(np.log2(amax)))
    if lsb_exponent is not None:
        # Anchored mode: plane 0 weight stays at the group exponent, but
        # the plane count shrinks with the group's dynamic range.
        num_planes = exponent - lsb_exponent + 1
        if num_planes < 1:
            # Every coefficient quantises to zero under the global floor.
            empty.exponent = exponent
            return empty
        if num_planes > 60:
            raise ValueError(
                f"anchored plane count {num_planes} exceeds 60; "
                "raise lsb_exponent"
            )
    # Keep the LSB weight a normal double: for data living near the
    # subnormal floor (exponent close to -1022) fewer planes are
    # representable, so the plane count shrinks accordingly.
    num_planes = min(num_planes, exponent + 1022)
    if num_planes < 1:
        empty.exponent = exponent
        return empty
    sign = coeffs < 0
    # Fixed-point magnitudes: LSB weight 2**(exponent - num_planes + 1).
    lsb = 2.0 ** (exponent - num_planes + 1)
    # round() can push the top value to 2**num_planes; clamp into range.
    maxq = np.uint64(2**num_planes - 1)
    dt, width = _word_dtype(num_planes)
    q = np.empty(count, dtype=np.uint64)
    packed = np.empty((num_planes, (count + 7) // 8), dtype=np.uint8)
    lead = np.empty(count, dtype=np.int16)

    def _extract(span: tuple[int, int]) -> None:
        lo, hi = span
        # Quantising inside the chunk keeps the abs/divide/round
        # scratch cache-resident instead of three full-array temps.
        qc = np.round(np.abs(coeffs[lo:hi]) / lsb).astype(np.uint64)
        np.minimum(qc, maxq, out=qc)
        # rapidslint: disable-next=RPD103 -- chunks write disjoint spans of q, vouched via allow_shared_writes
        q[lo:hi] = qc
        words = qc.astype(dt)
        bit_matrix = np.unpackbits(
            words.view(np.uint8).reshape(hi - lo, width // 8), axis=1
        )
        plane_cols = bit_matrix[:, width - num_planes :]
        # Plane-major pack: contiguous rows, one byte string per plane.
        # Chunk extents are byte-aligned, so the per-chunk packbits
        # concatenate to exactly the whole-array packbits.
        # rapidslint: disable-next=RPD103 -- chunks write disjoint column/row spans of packed/lead, vouched via allow_shared_writes
        packed[:, lo // 8 : (hi + 7) // 8] = np.packbits(
            np.ascontiguousarray(plane_cols.T), axis=1
        )
        # rapidslint: disable-next=RPD103 -- chunks write disjoint spans of lead, vouched via allow_shared_writes
        lead[lo:hi] = _leading_plane(qc, plane_cols, num_planes)

    spans = [(lo, min(lo + chunk, count)) for lo in range(0, count, chunk)]
    thread_map(
        _extract, spans, workers=workers,
        allow_shared_writes=("packed", "lead", "q"),
    )
    order, offsets = _sign_layout(lead, num_planes)
    return QuantisedGroup(
        count, exponent, num_planes, packed, sign, lead, q, order, offsets
    )


def _leading_plane(
    q: np.ndarray, plane_cols: np.ndarray, num_planes: int
) -> np.ndarray:
    """Index of each coefficient's leading set plane (num_planes if zero).

    For plane counts that fit a float64 mantissa the bit length comes
    from one ``frexp`` pass over the magnitudes (``frexp(0) == (0, 0)``
    maps zeros to the sentinel for free); wider words fall back to the
    bit-matrix argmax.  Both produce identical indices.
    """
    if num_planes <= 53:
        return (num_planes - np.frexp(q.astype(np.float64))[1]).astype(
            np.int16
        )
    return np.where(
        q != 0, np.argmax(plane_cols, axis=1), num_planes
    ).astype(np.int16)


def _sign_layout(
    lead: np.ndarray, num_planes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stable order of coefficients by leading plane, plus plane offsets."""
    order = np.argsort(lead, kind="stable")
    counts = np.bincount(lead, minlength=num_planes + 1)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return order, offsets


def _plane_blob(qg: QuantisedGroup, i: int) -> bytes:
    """Frame plane ``i``: deflated magnitude bits + deflated new signs."""
    bits_blob = deflate(qg.packed[i].tobytes())
    if qg.sign_order is not None:
        lo, hi = qg.sign_offsets[i], qg.sign_offsets[i + 1]
        new_signs = qg.sign[qg.sign_order[lo:hi]]
    else:
        new_signs = qg.sign[qg.lead == i]
    return frame(bits_blob, pack_bits(new_signs))


def _plane_blob_job(job: tuple[QuantisedGroup, int]) -> bytes:
    """Stage callable for one ``(group, plane)`` bitplane-encode item.

    Module-level so executors of any kind — thread pools today, process
    pools in the streaming pipeline — can receive it (rapidslint RPD112
    rejects non-picklable callables at process-pool submission sites).
    """
    qg, i = job
    return _plane_blob(qg, i)


def plane_payloads(
    qg: QuantisedGroup, *, workers: int | None = None
) -> list[bytes]:
    """Deflate and frame every plane of one group (threaded per plane)."""
    if qg.num_planes == 0:
        return []
    return thread_map(
        _plane_blob_job,
        [(qg, i) for i in range(qg.num_planes)],
        workers=workers,
    )


def encode_groups(
    flat: np.ndarray,
    groups: list[np.ndarray],
    num_planes: int,
    *,
    lsb_exponent: int | None = None,
    workers: int | None = None,
) -> tuple[list[QuantisedGroup], list[list[bytes]]]:
    """Quantise and encode every coefficient group of a Mallat array.

    Stage 1 quantises group by group (each internally chunk-threaded —
    the finest detail ring holds ~7/8 of all coefficients, so threading
    *within* the group is what balances the work).  Stage 2 flattens
    every ``(group, plane)`` deflate into one job list so the thread
    pool stays busy across group boundaries.
    """
    qgs = [
        quantise(flat[idx], num_planes, lsb_exponent=lsb_exponent,
                 workers=workers)
        for idx in groups
    ]
    jobs = [(g, i) for g, qg in enumerate(qgs) for i in range(qg.num_planes)]
    blobs = thread_map(
        _plane_blob_job,
        [(qgs[g], i) for g, i in jobs],
        workers=workers,
    )
    planes: list[list[bytes]] = [[] for _ in qgs]
    for (g, _i), blob in zip(jobs, blobs):
        planes[g].append(blob)
    return qgs, planes


# -- decode -------------------------------------------------------------


@dataclass
class DecodedGroup:
    """Quantised magnitudes of one group decoded from a plane prefix.

    ``q`` holds the integer magnitudes assembled from the first ``kept``
    planes; ``sign`` is True for coefficients whose leading 1-bit (and
    therefore embedded sign) appeared within that prefix.  Any shorter
    prefix is recoverable in O(n) via :func:`prefix_values` — masking
    the low planes of ``q`` reproduces a fresh shorter decode exactly.
    """

    count: int
    exponent: int
    num_planes: int
    kept: int
    q: np.ndarray  # (count,) uint64
    sign: np.ndarray  # (count,) bool


def decoded_state(
    count: int,
    exponent: int,
    num_planes: int,
    planes: list[bytes],
    keep: int,
    *,
    workers: int | None = None,
    chunk: int = COEFF_CHUNK,
) -> DecodedGroup:
    """Decode the first ``keep`` planes into quantised magnitudes.

    Bit-compatible with the serial plane-by-plane loop: identical
    integers in ``q`` and the identical sign-assignment order (plane by
    plane, coefficients in array order within each plane).
    """
    if chunk % 8:
        raise ValueError(f"chunk must be a multiple of 8, got {chunk}")
    q = np.zeros(count, dtype=np.uint64)
    sign = np.zeros(count, dtype=bool)
    if count == 0 or keep == 0:
        return DecodedGroup(count, exponent, num_planes, keep, q, sign)
    opened = thread_map(
        _open_plane, planes[:keep], workers=workers
    )
    nbytes = (count + 7) // 8
    bits_bytes = np.empty((keep, nbytes), dtype=np.uint8)
    for i, (braw, _sraw) in enumerate(opened):
        bits_bytes[i] = np.frombuffer(braw, dtype=np.uint8)
    dt, width = _word_dtype(num_planes)
    lead = np.empty(count, dtype=np.int16)

    def _assemble(span: tuple[int, int]) -> None:
        lo, hi = span
        c = hi - lo
        bits = np.unpackbits(
            bits_bytes[:, lo // 8 : (hi + 7) // 8], axis=1
        )[:, :c]
        # Reassemble the big-endian words the encoder took apart: place
        # the kept planes at their bit positions, pack columns to bytes,
        # and view as integers — one pass instead of keep shift-ors.
        full = np.zeros((width, c), dtype=np.uint8)
        full[width - num_planes : width - num_planes + keep] = bits
        word_bytes = np.packbits(full, axis=0)
        qc = (
            np.ascontiguousarray(word_bytes.T)
            .view(dt)
            .reshape(c)
            .astype(np.uint64)
        )
        # rapidslint: disable-next=RPD103 -- chunks write disjoint spans of q/lead, vouched via allow_shared_writes
        q[lo:hi] = qc
        # Leading kept plane per coefficient: the magnitude's bit length
        # locates the first set plane in one frexp pass (planes occupy
        # the word's high bits); zeros get the sentinel ``keep``.
        if num_planes <= 53:
            found = num_planes - np.frexp(qc.astype(np.float64))[1]
        else:
            found = np.argmax(bits, axis=0)
        # rapidslint: disable-next=RPD103 -- chunks write disjoint spans of lead, vouched via allow_shared_writes
        lead[lo:hi] = np.where(qc != 0, found, keep).astype(np.int16)

    spans = [(lo, min(lo + chunk, count)) for lo in range(0, count, chunk)]
    thread_map(
        _assemble, spans, workers=workers,
        allow_shared_writes=("q", "lead", "bits_bytes"),
    )
    # Embedded signs: plane i carries the signs of coefficients whose
    # leading 1-bit lies in plane i, in coefficient order.  One stable
    # sort by leading plane yields every plane's coefficient positions
    # at once instead of ``keep`` boolean sweeps over ``lead``.
    order, offsets = _sign_layout(lead, keep)
    for i, (_braw, sraw) in enumerate(opened):
        lo, hi = offsets[i], offsets[i + 1]
        if hi > lo:
            sign[order[lo:hi]] = np.unpackbits(
                np.frombuffer(sraw, dtype=np.uint8), count=int(hi - lo)
            ).astype(bool)
    return DecodedGroup(count, exponent, num_planes, keep, q, sign)


def _open_plane(blob: bytes) -> tuple[bytes, bytes]:
    """Inflate one framed plane blob to (magnitude bytes, sign bytes)."""
    bits_blob, sign_blob = unframe(blob)
    return inflate(bits_blob), inflate(sign_blob)


def prefix_values(dg: DecodedGroup, keep: int) -> np.ndarray:
    """Dequantise after truncating to the first ``keep`` planes.

    Clearing the low ``num_planes - keep`` bits of the decoded integers
    reproduces exactly what decoding only ``keep`` planes would have
    produced, so one full decode serves every prefix.
    """
    if not 0 <= keep <= dg.kept:
        raise ValueError(
            f"keep must be in [0, {dg.kept}], got {keep}"
        )
    if dg.count == 0:
        return np.zeros(0, dtype=np.float64)
    if dg.num_planes == 0:
        return np.zeros(dg.count, dtype=np.float64)
    if keep == dg.kept:
        q, sgn = dg.q, dg.sign
    else:
        q = dg.q & np.uint64(~((1 << (dg.num_planes - keep)) - 1) & (2**64 - 1))
        # A sign recorded in a now-masked plane belongs to a coefficient
        # whose magnitude is zero at this prefix; drop it so the output
        # is +0.0 exactly as a fresh shorter decode produces.
        sgn = dg.sign & (q != 0)
    lsb = 2.0 ** (dg.exponent - dg.num_planes + 1)
    out = q.astype(np.float64) * lsb
    np.negative(out, where=sgn, out=out)
    return out
