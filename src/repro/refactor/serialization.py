"""Serialisation of refactored objects.

A :class:`~repro.refactor.refactorer.RefactoredObject` round-trips
either to a directory (one file per component + a manifest — the layout
fragments ship in, so a partially gathered directory still loads) or to
a single archive byte string / file (convenient for embedding in other
stores).  Both use the self-describing container format, so every
artifact identifies itself.
"""

from __future__ import annotations

from pathlib import Path

from ..formats import Container
from .grid import LevelPlan
from .refactorer import RefactoredObject

__all__ = [
    "save_directory",
    "load_directory",
    "to_archive_bytes",
    "from_archive_bytes",
    "save_archive",
    "load_archive",
]


def _manifest_attrs(obj: RefactoredObject) -> dict:
    return {
        "shape": list(obj.shape),
        "dtype": obj.dtype,
        "plans": [
            [list(p.fine_shape), list(p.coarse_shape), list(p.coarsened_axes)]
            for p in obj.plans
        ],
        "errors": obj.errors,
        "bounds": obj.bounds,
        "data_max": obj.data_max,
        "correction": obj.correction,
        "num_components": obj.num_components,
    }


def _object_from_attrs(attrs: dict, payloads: list[bytes]) -> RefactoredObject:
    return RefactoredObject(
        shape=tuple(attrs["shape"]),
        dtype=attrs["dtype"],
        plans=[
            LevelPlan(tuple(f), tuple(c), tuple(a))
            for f, c, a in attrs["plans"]
        ],
        payloads=payloads,
        errors=attrs["errors"][: len(payloads)],
        bounds=attrs["bounds"][: len(payloads)],
        data_max=attrs["data_max"],
        correction=attrs["correction"],
    )


# -- directory layout -------------------------------------------------------


def save_directory(obj: RefactoredObject, outdir: str | Path) -> None:
    """Write ``manifest.rdc`` plus one ``component-XX.bin`` per component."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    Container(_manifest_attrs(obj)).write(outdir / "manifest.rdc")
    for j, payload in enumerate(obj.payloads):
        (outdir / f"component-{j:02d}.bin").write_bytes(payload)


def load_directory(
    indir: str | Path, *, upto: int | None = None
) -> RefactoredObject:
    """Load a refactored object; tolerates a missing component suffix.

    ``upto`` loads only the first N components even when more exist.
    """
    indir = Path(indir)
    manifest = Container.read(indir / "manifest.rdc")
    total = manifest.attrs["num_components"]
    limit = total if upto is None else min(upto, total)
    payloads = []
    for j in range(limit):
        path = indir / f"component-{j:02d}.bin"
        if not path.exists():
            break
        payloads.append(path.read_bytes())
    if not payloads:
        raise FileNotFoundError(f"no components found under {indir}")
    return _object_from_attrs(manifest.attrs, payloads)


# -- single-file archive ------------------------------------------------------


def to_archive_bytes(obj: RefactoredObject) -> bytes:
    """Pack manifest + all components into one container byte string."""
    c = Container(_manifest_attrs(obj))
    for j, payload in enumerate(obj.payloads):
        c.add_block(f"component-{j:02d}", payload)
    return c.to_bytes()


def from_archive_bytes(
    data: bytes, *, upto: int | None = None
) -> RefactoredObject:
    """Inverse of :func:`to_archive_bytes`; ``upto`` takes a prefix."""
    c = Container.from_bytes(data)
    total = c.attrs["num_components"]
    limit = total if upto is None else min(upto, total)
    payloads = []
    for j in range(limit):
        name = f"component-{j:02d}"
        if name not in c.block_names():
            break
        payloads.append(c.block(name))
    if not payloads:
        raise ValueError("archive contains no components")
    return _object_from_attrs(c.attrs, payloads)


def save_archive(obj: RefactoredObject, path: str | Path) -> None:
    Path(path).write_bytes(to_archive_bytes(obj))


def load_archive(path: str | Path, *, upto: int | None = None) -> RefactoredObject:
    return from_archive_bytes(Path(path).read_bytes(), upto=upto)
