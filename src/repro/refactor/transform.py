"""Multilevel (multigrid) decomposition and recomposition kernels.

This is the numerical heart of the pMGARD substitute.  One coarsening
step along one axis performs, per 1-D line:

1. *Prediction*: values at removed (detail) nodes are predicted by
   piecewise-linear interpolation from their two surviving neighbours;
   the prediction residual is the multilevel coefficient.
2. *L2 correction* (optional but on by default, as in MGARD): the detail
   function is L2-projected onto the coarse space and added to the coarse
   node values, which is what distinguishes the MGARD multilevel
   decomposition from a plain hierarchical-surplus (interpolet) transform
   and gives it its approximation-order guarantees.

An n-D level applies the 1-D kernel along every (coarsenable) axis in
sequence — the standard tensor-product construction.  The output of the
full decomposition is a single array in *Mallat layout*: the coarse
approximation occupies the low-index corner and each level's detail
coefficients form the ring between successive corners.

All kernels are fully vectorised and operate *in native layout*: the
coarse/detail shuffles are strided slice assignments along the transform
axis (no transpose copies — the last array axis stays contiguous, so the
ufunc inner loops still stream), and only the tridiagonal mass solves
gather their half-size right-hand side into an axis-first block for
``scipy.linalg.solve_banded``.  Decompose and recompose apply
bit-identical floating point operations in reverse order, so the
transform round-trips to ~1e-12 relative accuracy (it is not bit-exact
because the mass solve is an inexact float inverse).

Parallelism: blocks are *tiled* along their largest non-transform axis —
contiguous spans go through :func:`repro.parallel.threads.thread_map`
(``workers=``), each tile writing its disjoint slice of a preallocated
output.  Every kernel is line-independent (the banded solve treats RHS
columns independently, bitwise), and the tiling itself never enters the
arithmetic, so threaded output is bit-identical to serial —
property-tested.  On the recompose path, lines whose detail block is
exactly zero skip the correction solve (their correction is identically
zero); the predicate is per line, so the skip set never depends on tile
boundaries, and callers reconstructing from dense (all-planes) payloads
can disable the scan with ``detect_zero_rows=False`` — the output is
bitwise the same either way.
"""

from __future__ import annotations

import threading

import numpy as np
from scipy.linalg import solve_banded

from ..parallel.threads import balanced_spans, default_workers, thread_map
from .grid import LevelPlan, coarse_indices, detail_indices, plan_levels

__all__ = [
    "decompose",
    "recompose",
    "decompose_axis",
    "recompose_axis",
    "level_flat_indices",
]

# Cache of per-axis-length index structures; decomposition of a 3-D array
# touches only a handful of distinct lengths, so this stays tiny.  Filled
# under the lock: tiled line kernels hit this from pool threads.
_AXIS_CACHE: dict[int, dict] = {}
_AXIS_LOCK = threading.Lock()

#: Minimum lines per tile — below this the per-tile LAPACK/slice overhead
#: outweighs any parallel win and the kernels run in one block.
_MIN_TILE_ROWS = 256


def _axis_structure(n: int) -> dict:
    """Precompute index maps and the banded coarse mass matrix for length n."""
    cached = _AXIS_CACHE.get(n)
    if cached is not None:
        return cached
    with _AXIS_LOCK:
        cached = _AXIS_CACHE.get(n)
        if cached is not None:
            return cached
        ci = coarse_indices(n)
        di = detail_indices(n)
        # Each detail node d has both fine-grid neighbours (d-1, d+1) on
        # the coarse grid; with the keep-every-other-node rule detail j
        # sits between coarse j and j+1 and both index sets are strided,
        # which the slice-based kernels below rely on.
        left = np.searchsorted(ci, di - 1)
        assert np.array_equal(left, np.arange(di.size))
        assert bool(np.all(ci[left + 1] == di + 1)) if di.size else True
        if n % 2:
            assert np.array_equal(ci, np.arange(0, n, 2))
            assert np.array_equal(di, np.arange(1, n, 2))
        else:
            assert np.array_equal(
                ci, np.concatenate([np.arange(0, n - 1, 2), [n - 1]])
            )
            assert np.array_equal(di, np.arange(1, n - 1, 2))
        nc = ci.size
        # Coarse-grid spacings (fine-grid units; uniform fine spacing 1).
        spacing = np.diff(ci).astype(np.float64)
        # Tridiagonal mass matrix for hat functions on the coarse grid, in
        # solve_banded's (1, 1) ab-form: row 0 = superdiag, 1 = diag,
        # 2 = subdiag.
        ab = np.zeros((3, nc))
        ab[1, :-1] += spacing / 3.0
        ab[1, 1:] += spacing / 3.0
        ab[0, 1:] = spacing / 6.0
        ab[2, :-1] = spacing / 6.0
        cached = {"mass_ab": ab, "nc": nc}
        _AXIS_CACHE[n] = cached
    return cached


def _axsl(ndim: int, axis: int, sl) -> tuple:
    """Index tuple selecting ``sl`` along ``axis`` of an ndim-D array."""
    idx = [slice(None)] * ndim
    idx[axis] = sl
    return tuple(idx)


def _solve_cols(detail_cols: np.ndarray, st: dict) -> np.ndarray:
    """L2-project detail lines (axis-first columns) onto the coarse space.

    ``detail_cols`` is (nd, m): one line per column.  Returns the
    (nc, m) correction to *add* to the coarse values.  The load vector
    uses the exact overlap integral of a fine hat with its two
    neighbouring coarse hats, which is h/2 = 1/2 on the unit-spaced fine
    grid.  Detail node j always sits between coarse positions j and
    j + 1 (the coarsening rule keeps every other node plus the final
    one), so coarse node j's load is half the sum of its (at most two)
    neighbouring details — built directly instead of scatter-adding into
    a zeroed buffer.
    """
    nd, m = detail_cols.shape
    nc = st["nc"]
    half = 0.5 * detail_cols
    load = np.empty((nc, m))
    load[0] = half[0]
    np.add(half[1:nd], half[: nd - 1], out=load[1:nd])
    load[nd] = half[nd - 1]
    if nc > nd + 1:
        load[nd + 1 :] = 0.0
    # Mass solve, batched over lines (RHS columns).  ``mass_ab`` is the
    # cached shared matrix and must NOT be overwritten; the RHS is our
    # own scratch.  Columns are solved independently (bitwise), which is
    # what makes line tiling exact.
    return solve_banded(
        (1, 1), st["mass_ab"], load, check_finite=False, overwrite_b=True
    )


def _correction_nd(detail: np.ndarray, axis: int, st: dict) -> np.ndarray:
    """Correction for an ND detail block, shaped like the coarse block."""
    d2 = np.moveaxis(detail, axis, 0)
    rest = d2.shape[1:]
    nd = d2.shape[0]
    # Materialising 0.5 * detail makes the block contiguous axis-first;
    # the halving is the first arithmetic step of the load build anyway,
    # so this costs no extra pass.
    half2 = 0.5 * d2
    nc = st["nc"]
    m = half2.size // nd
    half = half2.reshape(nd, m)
    load = np.empty((nc, m))
    load[0] = half[0]
    np.add(half[1:nd], half[: nd - 1], out=load[1:nd])
    load[nd] = half[nd - 1]
    if nc > nd + 1:
        load[nd + 1 :] = 0.0
    corr = solve_banded(
        (1, 1), st["mass_ab"], load, check_finite=False, overwrite_b=True
    )
    return np.moveaxis(corr.reshape((nc,) + rest), 0, axis)


def _decompose_block(
    src: np.ndarray, out: np.ndarray, axis: int, correction: bool
) -> None:
    """One coarsening step along ``axis``: src -> out, [coarse | detail]."""
    n = src.shape[axis]
    st = _axis_structure(n)
    nc = st["nc"]
    nd = n - nc
    ndim = src.ndim
    coarse = out[_axsl(ndim, axis, slice(0, nc))]
    if n % 2:
        coarse[...] = src[_axsl(ndim, axis, slice(0, n, 2))]
    else:
        # Even length: every other node plus the final one survives.
        coarse[_axsl(ndim, axis, slice(0, nc - 1))] = src[
            _axsl(ndim, axis, slice(0, n - 1, 2))
        ]
        coarse[_axsl(ndim, axis, slice(nc - 1, nc))] = src[
            _axsl(ndim, axis, slice(n - 1, n))
        ]
    if nd:
        detail = out[_axsl(ndim, axis, slice(nc, n))]
        pred = (
            coarse[_axsl(ndim, axis, slice(0, nd))]
            + coarse[_axsl(ndim, axis, slice(1, nd + 1))]
        )
        pred *= 0.5
        np.subtract(
            src[_axsl(ndim, axis, slice(1, 2 * nd, 2))], pred, out=detail
        )
        if correction:
            coarse += _correction_nd(detail, axis, st)


def _recompose_block(
    src: np.ndarray,
    out: np.ndarray,
    axis: int,
    correction: bool,
    detect_zero_rows: bool,
) -> None:
    """Exact inverse of :func:`_decompose_block` (same axis length)."""
    n = src.shape[axis]
    st = _axis_structure(n)
    nc = st["nc"]
    nd = n - nc
    ndim = src.ndim
    cin = src[_axsl(ndim, axis, slice(0, nc))]
    detail = src[_axsl(ndim, axis, slice(nc, n))] if nd else None
    corr = None
    detail_all_zero = False
    if correction and nd:
        if detect_zero_rows:
            # A line whose detail block is exactly zero has an
            # exactly-zero correction (zero RHS solves to zero);
            # skipping its solve keeps early-prefix reconstructions —
            # where most rings are still all zeros — from paying
            # full-price mass solves.  The predicate is per line, so the
            # skip set never depends on tile boundaries.
            d2 = np.moveaxis(detail, axis, 0)
            active = d2.any(axis=0)
            if not active.any():
                detail_all_zero = True
            elif active.all():
                corr = _correction_nd(detail, axis, st)
            else:
                corr_full = np.zeros((nc,) + active.shape)
                corr_full[:, active] = _solve_cols(d2[:, active], st)
                corr = np.moveaxis(corr_full, 0, axis)
        else:
            corr = _correction_nd(detail, axis, st)
    # Corrected coarse values go straight to their interleaved output
    # positions (every other node; even lengths park the last coarse
    # value at the final position).
    if n % 2:
        oc = out[_axsl(ndim, axis, slice(0, n, 2))]
        if corr is None:
            oc[...] = cin
        else:
            np.subtract(cin, corr, out=oc)
    else:
        oc = out[_axsl(ndim, axis, slice(0, n - 1, 2))]
        oc_last = out[_axsl(ndim, axis, slice(n - 1, n))]
        head = _axsl(ndim, axis, slice(0, nc - 1))
        tail = _axsl(ndim, axis, slice(nc - 1, nc))
        if corr is None:
            oc[...] = cin[head]
            oc_last[...] = cin[tail]
        else:
            np.subtract(cin[head], corr[head], out=oc)
            np.subtract(cin[tail], corr[tail], out=oc_last)
    if nd:
        # Detail node j sits between coarse j and j + 1, which already
        # live at even output positions 2j and 2j + 2 (never the parked
        # last value of an even-length line), so the interpolation reads
        # the even positions and writes the odd ones — element-disjoint
        # strided views of the same output block.
        od = out[_axsl(ndim, axis, slice(1, 2 * nd, 2))]
        np.add(
            out[_axsl(ndim, axis, slice(0, 2 * nd - 1, 2))],
            out[_axsl(ndim, axis, slice(2, 2 * nd + 1, 2))],
            out=od,
        )
        od *= 0.5
        # Adding an all-zero detail block is skipped outright; the kept
        # values are what a fresh shorter decode scatters there anyway.
        if not detail_all_zero:
            od += detail


def _apply_axis(block_fn, src: np.ndarray, dst: np.ndarray, axis: int,
                workers: int | None) -> None:
    """Run a line-local block kernel, tiled along a non-transform axis.

    ``block_fn(src_block, dst_block)`` must fill ``dst_block`` from
    ``src_block`` line by line; tiles are contiguous spans of the
    largest non-transform axis, each writing its own disjoint slice of
    the preallocated result.
    """
    ndim = src.ndim
    n = src.shape[axis]
    lines = src.size // n if n else 0
    w = workers if workers is not None else default_workers()
    tile_ax = None
    best = 0
    for a in range(ndim):
        if a != axis and src.shape[a] > best:
            best = src.shape[a]
            tile_ax = a
    parts = 1
    if tile_ax is not None:
        parts = min(w, lines // _MIN_TILE_ROWS, src.shape[tile_ax])
    if parts <= 1:
        block_fn(src, dst)
        return
    spans = balanced_spans(src.shape[tile_ax], parts)

    def _tile(span: tuple[int, int]) -> None:
        lo, hi = span
        sl = _axsl(ndim, tile_ax, slice(lo, hi))
        block_fn(src[sl], dst[sl])

    thread_map(_tile, spans, workers=w, allow_shared_writes=("dst",))


def decompose_axis(
    arr: np.ndarray, axis: int, *, correction: bool = True,
    workers: int | None = None,
) -> np.ndarray:
    """One coarsening step along one axis; output is [coarse|detail] ordered."""
    arr = np.asarray(arr)
    axis = axis % arr.ndim
    out = np.empty(arr.shape, dtype=np.float64)
    _apply_axis(
        lambda s, d: _decompose_block(s, d, axis, correction),
        arr, out, axis, workers,
    )
    return out


def recompose_axis(
    arr: np.ndarray, axis: int, n: int, *, correction: bool = True,
    workers: int | None = None, detect_zero_rows: bool = True,
) -> np.ndarray:
    """Inverse of :func:`decompose_axis` (n = original axis length)."""
    arr = np.asarray(arr)
    axis = axis % arr.ndim
    if arr.shape[axis] != n:
        raise ValueError(
            f"axis {axis} has length {arr.shape[axis]}, expected {n}"
        )
    out = np.empty(arr.shape, dtype=np.float64)
    _apply_axis(
        lambda s, d: _recompose_block(
            s, d, axis, correction, detect_zero_rows
        ),
        arr, out, axis, workers,
    )
    return out


def decompose(
    u: np.ndarray, plans: list[LevelPlan] | None = None, *,
    max_levels: int = 32, correction: bool = True,
    workers: int | None = None,
) -> tuple[np.ndarray, list[LevelPlan]]:
    """Full multilevel decomposition to Mallat layout.

    Returns ``(mallat, plans)`` where ``mallat`` is float64 with the same
    shape as ``u``.  ``plans`` (fine-to-coarse) fully determines the
    layout; pass it back to :func:`recompose`.  ``workers`` tiles the
    line batches over threads; output is bit-identical for any value.
    """
    u = np.asarray(u)
    if plans is None:
        plans = plan_levels(u.shape, max_levels)
    out = u.astype(np.float64, copy=True)
    for plan in plans:
        corner = tuple(slice(0, s) for s in plan.fine_shape)
        corner_view = out[corner]
        axes = list(plan.coarsened_axes)
        src = corner_view
        for i, ax in enumerate(axes):
            # The final axis of a level writes straight back into the
            # Mallat corner (the kernels tolerate strided outputs), so
            # multi-axis levels need no copy-back pass.
            if i == len(axes) - 1 and src is not corner_view:
                dst = corner_view
            else:
                dst = np.empty(src.shape, dtype=np.float64)
            _apply_axis(
                lambda s, d, a=ax: _decompose_block(s, d, a, correction),
                src, dst, ax, workers,
            )
            src = dst
        if src is not corner_view:
            corner_view[...] = src
    return out, plans


def recompose(
    mallat: np.ndarray, plans: list[LevelPlan], *, correction: bool = True,
    workers: int | None = None, detect_zero_rows: bool = True,
) -> np.ndarray:
    """Invert :func:`decompose` from Mallat layout back to nodal values.

    ``detect_zero_rows=False`` disables the per-line zero-detail scan —
    a pure speed hint for dense (all-planes-present) inputs; the output
    is bitwise identical either way.
    """
    out = np.array(mallat, dtype=np.float64, copy=True)
    for plan in reversed(plans):
        corner = tuple(slice(0, s) for s in plan.fine_shape)
        corner_view = out[corner]
        axes = list(reversed(plan.coarsened_axes))
        src = corner_view
        for i, ax in enumerate(axes):
            if i == len(axes) - 1 and src is not corner_view:
                dst = corner_view
            else:
                dst = np.empty(src.shape, dtype=np.float64)
            _apply_axis(
                lambda s, d, a=ax: _recompose_block(
                    s, d, a, correction, detect_zero_rows
                ),
                src, dst, ax, workers,
            )
            src = dst
        if src is not corner_view:
            corner_view[...] = src
    return out


# Mallat group-index lists are pure functions of (plans, shape) and cost
# a full fancy-indexing sweep to build; reconstruction used to pay that
# sweep on every call.  Bounded, lock-guarded cache; entries are marked
# read-only since callers share them.
_INDEX_CACHE: dict[tuple, list[np.ndarray]] = {}
_INDEX_LOCK = threading.Lock()
_INDEX_CACHE_MAX = 8


def level_flat_indices(
    plans: list[LevelPlan], shape: tuple[int, ...]
) -> list[np.ndarray]:
    """Flat indices (into the Mallat array) of each group's coefficients.

    Group 0 is the final coarse approximation corner; group ``i`` for
    ``i >= 1`` is the detail ring added when refining from level ``L-i``
    back toward the original grid (coarse-to-fine order, matching how the
    progressive reconstruction consumes them).  The groups partition
    ``range(prod(shape))``.

    Results are cached per ``(plans, shape)`` and returned as read-only
    arrays (a fresh list, shared array objects) — treat them as
    immutable.
    """
    key = (tuple(plans), tuple(shape))
    groups = _INDEX_CACHE.get(key)
    if groups is None:
        with _INDEX_LOCK:
            groups = _INDEX_CACHE.get(key)
            if groups is None:
                groups = _build_flat_indices(list(plans), tuple(shape))
                for g in groups:
                    g.setflags(write=False)
                if len(_INDEX_CACHE) >= _INDEX_CACHE_MAX:
                    _INDEX_CACHE.pop(next(iter(_INDEX_CACHE)))
                _INDEX_CACHE[key] = groups
    return list(groups)


def _build_flat_indices(
    plans: list[LevelPlan], shape: tuple[int, ...]
) -> list[np.ndarray]:
    flat = np.arange(int(np.prod(shape))).reshape(shape)
    groups: list[np.ndarray] = []
    prev_corner = plans[-1].coarse_shape
    groups.append(
        flat[tuple(slice(0, s) for s in prev_corner)].reshape(-1).copy()
    )
    for plan in reversed(plans):
        corner = tuple(slice(0, s) for s in plan.fine_shape)
        region = flat[corner]
        mask = np.ones(plan.fine_shape, dtype=bool)
        mask[tuple(slice(0, s) for s in prev_corner)] = False
        groups.append(region[mask].reshape(-1).copy())
        prev_corner = plan.fine_shape
    return groups
