"""Multilevel (multigrid) decomposition and recomposition kernels.

This is the numerical heart of the pMGARD substitute.  One coarsening
step along one axis performs, per 1-D line:

1. *Prediction*: values at removed (detail) nodes are predicted by
   piecewise-linear interpolation from their two surviving neighbours;
   the prediction residual is the multilevel coefficient.
2. *L2 correction* (optional but on by default, as in MGARD): the detail
   function is L2-projected onto the coarse space and added to the coarse
   node values, which is what distinguishes the MGARD multilevel
   decomposition from a plain hierarchical-surplus (interpolet) transform
   and gives it its approximation-order guarantees.

An n-D level applies the 1-D kernel along every (coarsenable) axis in
sequence — the standard tensor-product construction.  The output of the
full decomposition is a single array in *Mallat layout*: the coarse
approximation occupies the low-index corner and each level's detail
coefficients form the ring between successive corners.

All kernels are fully vectorised: lines are batched into (m, n) blocks,
the tridiagonal mass solves use ``scipy.linalg.solve_banded`` with the
whole batch as the right-hand side, and interpolation is fancy-indexed
gather/scatter.  Decompose and recompose apply bit-identical floating
point operations in reverse order, so the transform round-trips to ~1e-12
relative accuracy (it is not bit-exact because the mass solve is an
inexact float inverse).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded

from .grid import LevelPlan, coarse_indices, detail_indices, plan_levels

__all__ = [
    "decompose",
    "recompose",
    "decompose_axis",
    "recompose_axis",
    "level_flat_indices",
]

# Cache of per-axis-length index structures; decomposition of a 3-D array
# touches only a handful of distinct lengths, so this stays tiny.
_AXIS_CACHE: dict[int, dict] = {}


def _axis_structure(n: int) -> dict:
    """Precompute index maps and the banded coarse mass matrix for length n."""
    cached = _AXIS_CACHE.get(n)
    if cached is not None:
        return cached
    ci = coarse_indices(n)
    di = detail_indices(n)
    # Each detail node d has both fine-grid neighbours (d-1, d+1) on the
    # coarse grid; map them to coarse-array positions.  With the
    # keep-every-other-node rule these positions are always contiguous
    # (detail j sits between coarse j and j+1), which the slice-based
    # kernels below rely on.
    left = np.searchsorted(ci, di - 1)
    right = left + 1
    assert np.array_equal(left, np.arange(di.size))
    assert bool(np.all(ci[right] == di + 1)) if di.size else True
    nc = ci.size
    # Coarse-grid spacings (in fine-grid units; uniform fine spacing of 1).
    spacing = np.diff(ci).astype(np.float64)
    # Tridiagonal mass matrix for hat functions on the coarse grid, in
    # solve_banded's (1, 1) ab-form: row 0 = superdiag, 1 = diag, 2 = subdiag.
    ab = np.zeros((3, nc))
    ab[1, :-1] += spacing / 3.0
    ab[1, 1:] += spacing / 3.0
    ab[0, 1:] = spacing / 6.0
    ab[2, :-1] = spacing / 6.0
    cached = {
        "ci": ci,
        "di": di,
        "left": left,
        "right": right,
        "mass_ab": ab,
        "nc": nc,
    }
    _AXIS_CACHE[n] = cached
    return cached


def _correction(detail: np.ndarray, st: dict) -> np.ndarray:
    """L2-project the detail function onto the coarse space.

    ``detail`` is (m, nd).  Returns the (m, nc) correction to *add* to the
    coarse values.  The load vector uses the exact overlap integral of a
    fine hat with its two neighbouring coarse hats, which is h/2 = 1/2 on
    the unit-spaced fine grid.
    """
    m = detail.shape[0]
    nc = st["nc"]
    nd = detail.shape[1]
    load = np.zeros((m, nc))
    # Detail node j always sits between coarse positions j and j + 1 (the
    # coarsening rule keeps every other node plus the final one), so the
    # scatter-add is two contiguous slice adds.
    half = 0.5 * detail
    load[:, :nd] += half
    load[:, 1 : nd + 1] += half
    # Mass solve, batched over lines (RHS columns).
    return solve_banded((1, 1), st["mass_ab"], load.T).T


def _decompose_lines(lines: np.ndarray, correction: bool) -> np.ndarray:
    """One coarsening step for a batch of lines (m, n) -> (m, n) reordered.

    Output columns are [coarse | detail]."""
    st = _axis_structure(lines.shape[1])
    coarse = lines[:, st["ci"]].copy()
    nd = st["di"].size
    detail = lines[:, st["di"]] - 0.5 * (coarse[:, :nd] + coarse[:, 1 : nd + 1])
    if correction and nd > 0:
        coarse += _correction(detail, st)
    return np.concatenate([coarse, detail], axis=1)


def _recompose_lines(packed: np.ndarray, n: int, correction: bool) -> np.ndarray:
    """Exact inverse of :func:`_decompose_lines` for original length n."""
    st = _axis_structure(n)
    nc = st["nc"]
    nd = n - nc
    coarse = packed[:, :nc].copy()
    detail = packed[:, nc:]
    if correction and nd > 0:
        coarse -= _correction(detail, st)
    out = np.empty((packed.shape[0], n), dtype=packed.dtype)
    out[:, st["ci"]] = coarse
    out[:, st["di"]] = detail + 0.5 * (coarse[:, :nd] + coarse[:, 1 : nd + 1])
    return out


def _apply_along_axis(fn, arr: np.ndarray, axis: int):
    """Apply a (m, n) -> (m, n') line kernel along ``axis`` of ``arr``."""
    moved = np.moveaxis(arr, axis, -1)
    shape = moved.shape
    flat = np.ascontiguousarray(moved).reshape(-1, shape[-1])
    out = fn(flat)
    out = out.reshape(shape[:-1] + (out.shape[1],))
    return np.moveaxis(out, -1, axis)


def decompose_axis(arr: np.ndarray, axis: int, *, correction: bool = True) -> np.ndarray:
    """One coarsening step along one axis; output is [coarse|detail] ordered."""
    return _apply_along_axis(
        lambda flat: _decompose_lines(flat, correction), arr, axis
    )


def recompose_axis(
    arr: np.ndarray, axis: int, n: int, *, correction: bool = True
) -> np.ndarray:
    """Inverse of :func:`decompose_axis` (n = original axis length)."""
    return _apply_along_axis(
        lambda flat: _recompose_lines(flat, n, correction), arr, axis
    )


def decompose(
    u: np.ndarray, plans: list[LevelPlan] | None = None, *,
    max_levels: int = 32, correction: bool = True,
) -> tuple[np.ndarray, list[LevelPlan]]:
    """Full multilevel decomposition to Mallat layout.

    Returns ``(mallat, plans)`` where ``mallat`` is float64 with the same
    shape as ``u``.  ``plans`` (fine-to-coarse) fully determines the
    layout; pass it back to :func:`recompose`.
    """
    u = np.asarray(u)
    if plans is None:
        plans = plan_levels(u.shape, max_levels)
    out = u.astype(np.float64, copy=True)
    for plan in plans:
        corner = tuple(slice(0, s) for s in plan.fine_shape)
        block = out[corner]
        for ax in plan.coarsened_axes:
            block = decompose_axis(block, ax, correction=correction)
        out[corner] = block
    return out, plans


def recompose(
    mallat: np.ndarray, plans: list[LevelPlan], *, correction: bool = True
) -> np.ndarray:
    """Invert :func:`decompose` from Mallat layout back to nodal values."""
    out = np.array(mallat, dtype=np.float64, copy=True)
    for plan in reversed(plans):
        corner = tuple(slice(0, s) for s in plan.fine_shape)
        block = out[corner]
        for ax in reversed(plan.coarsened_axes):
            block = recompose_axis(
                block, ax, plan.fine_shape[ax], correction=correction
            )
        out[corner] = block
    return out


def level_flat_indices(plans: list[LevelPlan], shape: tuple[int, ...]) -> list[np.ndarray]:
    """Flat indices (into the Mallat array) of each group's coefficients.

    Group 0 is the final coarse approximation corner; group ``i`` for
    ``i >= 1`` is the detail ring added when refining from level ``L-i``
    back toward the original grid (coarse-to-fine order, matching how the
    progressive reconstruction consumes them).  The groups partition
    ``range(prod(shape))``.
    """
    flat = np.arange(int(np.prod(shape))).reshape(shape)
    groups: list[np.ndarray] = []
    prev_corner = plans[-1].coarse_shape
    groups.append(
        flat[tuple(slice(0, s) for s in prev_corner)].reshape(-1).copy()
    )
    for plan in reversed(plans):
        corner = tuple(slice(0, s) for s in plan.fine_shape)
        region = flat[corner]
        mask = np.ones(plan.fine_shape, dtype=bool)
        mask[tuple(slice(0, s) for s in prev_corner)] = False
        groups.append(region[mask].reshape(-1).copy())
        prev_corner = plan.fine_shape
    return groups
