"""Error metrics and the MGARD-style theoretical error bound.

The paper quantifies reconstruction quality with the relative L-infinity
error (Eq. 3) and bounds the reconstruction error of the multilevel
representation by

    e <= (1 + sqrt(3)/2) * sum_l max_x |u_mc[x] - u~_mc[x]|

where the sum runs over decomposition levels and the max over each
level's multilevel coefficients.  For bitplane-encoded coefficients the
per-coefficient error after keeping the first ``b`` planes is at most the
weight of the first missing plane, which gives the closed-form bound in
:func:`theoretical_bound`.
"""

from __future__ import annotations

import numpy as np

from .bitplane import PlaneSet

__all__ = ["relative_linf_error", "MGARD_CONSTANT", "theoretical_bound"]

#: The (1 + sqrt(3)/2) stability constant from the MGARD error analysis.
MGARD_CONSTANT = 1.0 + np.sqrt(3.0) / 2.0


#: Elements per block in the chunked max reductions below; sized so the
#: difference/abs scratch stays cache-resident instead of allocating
#: full-array temporaries.
_ERROR_CHUNK = 1 << 21


def _chunked_absmax(a: np.ndarray, b: np.ndarray | None = None) -> float:
    """max|a| (or max|a - b|) without materialising full-size temps.

    A max of per-block maxima is exactly the global max, so the blocked
    evaluation is bit-identical to the one-shot expression.
    """
    a = a.reshape(-1)
    if a.size == 0:
        # Same zero-size ValueError the unchunked np.max raised.
        return float(np.max(np.abs(a)))
    out = 0.0
    if b is None:
        for lo in range(0, a.size, _ERROR_CHUNK):
            out = max(out, float(np.max(np.abs(a[lo : lo + _ERROR_CHUNK]))))
    else:
        b = b.reshape(-1)
        for lo in range(0, a.size, _ERROR_CHUNK):
            hi = lo + _ERROR_CHUNK
            out = max(out, float(np.max(np.abs(a[lo:hi] - b[lo:hi]))))
    return out


def relative_linf_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Relative L-infinity error of Eq. 3: max|d - d~| / max|d|.

    A reconstruction of all-zeros therefore scores exactly 1.0, the
    paper's penalty value e0 for "no level could be restored".
    """
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}"
        )
    original = np.ascontiguousarray(original)
    reconstructed = np.ascontiguousarray(reconstructed)
    denom = _chunked_absmax(original)
    if denom == 0.0:
        return 0.0 if _chunked_absmax(reconstructed) == 0.0 else np.inf
    return _chunked_absmax(original, reconstructed) / denom


def theoretical_bound(
    planesets: list[PlaneSet], kept: list[int], data_max: float
) -> float:
    """Upper bound on the relative L-infinity reconstruction error.

    Parameters
    ----------
    planesets:
        The full per-group encodings (one per decomposition level).
    kept:
        Number of magnitude planes retained for each group.
    data_max:
        max|d| of the original data, to normalise the absolute bound.
    """
    if len(kept) != len(planesets):
        raise ValueError("kept must align with planesets")
    if data_max <= 0:
        raise ValueError("data_max must be positive")
    total = 0.0
    for ps, b in zip(planesets, kept):
        if ps.count == 0:
            continue
        if not 0 <= b <= ps.num_planes:
            raise ValueError(f"kept planes {b} out of range for group")
        if b >= ps.num_planes:
            # Only the quantisation floor remains.
            err = 2.0 ** (ps.exponent - ps.num_planes + 1)
        elif b == 0:
            # Nothing kept: the coefficient itself, bounded by 2**(exp+1).
            err = 2.0 ** (ps.exponent + 1)
        else:
            # First missing plane dominates; the remaining tail doubles it.
            err = 2.0 ** (ps.exponent - b + 1)
        total += err
    return MGARD_CONSTANT * total / data_max
