"""Bitplane encoding of multilevel coefficients.

pMGARD achieves fine-grained error control by splitting the multilevel
coefficients of every decomposition level into *bitplanes* — plane ``b``
holds bit ``b`` of the magnitude of every coefficient, quantised against
the level's maximum magnitude.  More-significant planes carry more of the
reconstruction accuracy, which is what lets the refactorer reorder planes
across levels into progressive components.

Signs are *embedded*: a coefficient's sign bit ships inside the plane
where its leading 1-bit appears (the standard embedded-coding treatment,
also used by SPIHT/zfp-style coders).  This matters for progressiveness:
a fine-detail group with millions of coefficients must not pay its whole
sign plane before its first magnitude bit becomes useful.

Encoding pipeline per coefficient group::

    float64 coeffs -> fixed-point magnitudes (uint64)
                   -> per-plane: packbits(magnitude bits) + packbits(signs
                      of newly-significant coeffs), both zlib'd (planes of
                      smooth data are mostly runs of zeros and compress
                      hard)

Decoding tolerates an arbitrary *prefix* of the planes (always the most
significant first); missing low planes read as zero magnitude bits, which
bounds the dequantisation error by the first missing plane's weight.

The heavy lifting — chunked bit extraction, per-plane zlib jobs, the
vectorised plane reassembly — lives in :mod:`repro.refactor.kernels`,
which can fan the work out over threads (``workers=``).  The blob format
is unchanged from the original serial encoder and both directions are
bit-compatible with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import kernels

__all__ = ["PlaneSet", "encode_planes", "decode_planes", "plane_weight"]

#: Default number of magnitude bitplanes retained.
DEFAULT_PLANES = 32


@dataclass
class PlaneSet:
    """The encoded bitplanes of one coefficient group.

    Attributes
    ----------
    count:
        Number of coefficients in the group.
    exponent:
        Power-of-two scale: plane 0 (the MSB) has weight ``2**exponent``.
    num_planes:
        Total magnitude planes encoded.
    planes:
        Framed blobs, MSB first.  Each blob holds the zlib'd packbits of
        the plane's magnitude bits followed by the zlib'd packbits of the
        signs of coefficients whose leading 1-bit lies in this plane.
    """

    count: int
    exponent: int
    num_planes: int
    planes: list[bytes] = field(default_factory=list)

    @property
    def plane_nbytes(self) -> list[int]:
        """Encoded size of each plane (magnitude bits + new signs)."""
        return [len(p) for p in self.planes]

    @property
    def total_nbytes(self) -> int:
        """Total encoded size of all planes."""
        return sum(len(p) for p in self.planes)


def plane_weight(ps: PlaneSet, plane_index: int) -> float:
    """Magnitude contribution of one bit in the given plane (2**(exp-i))."""
    return float(2.0 ** (ps.exponent - plane_index))


def encode_planes(
    coeffs: np.ndarray,
    num_planes: int = DEFAULT_PLANES,
    *,
    lsb_exponent: int | None = None,
    workers: int | None = None,
) -> PlaneSet:
    """Encode a flat coefficient array into embedded-sign bitplanes.

    By default the quantisation step is chosen from the group's maximum
    magnitude so that the most significant retained plane is plane 0.
    Passing ``lsb_exponent`` anchors the quantisation floor at
    ``2**lsb_exponent`` absolutely — the refactorer uses one global
    anchor across all coefficient groups (MGARD's uniform quantisation),
    so groups of small-magnitude detail coefficients encode *fewer*
    planes, which is where most of the size reduction comes from.
    Either way the absolute quantisation error of every coefficient is
    bounded by the LSB weight.

    ``workers`` fans the chunked bit extraction and the per-plane zlib
    jobs over threads; the output is byte-identical for any value.
    """
    qg = kernels.quantise(
        coeffs, num_planes, lsb_exponent=lsb_exponent, workers=workers
    )
    planes = kernels.plane_payloads(qg, workers=workers)
    return PlaneSet(qg.count, qg.exponent, qg.num_planes, planes)


def decode_planes(
    ps: PlaneSet,
    keep: int | None = None,
    *,
    workers: int | None = None,
) -> np.ndarray:
    """Reconstruct coefficients from the first ``keep`` magnitude planes.

    ``keep=None`` uses every *present* plane (supporting partially
    assembled PlaneSets whose plane list is a prefix).  Signs of
    coefficients that never became significant within the kept prefix
    are unknown — their magnitude is zero anyway.
    """
    if ps.count == 0:
        return np.zeros(0, dtype=np.float64)
    if keep is None:
        keep = len(ps.planes)
    if not 0 <= keep <= ps.num_planes or keep > len(ps.planes):
        limit = min(ps.num_planes, len(ps.planes))
        raise ValueError(f"keep must be in [0, {limit}], got {keep}")
    dg = kernels.decoded_state(
        ps.count, ps.exponent, ps.num_planes, ps.planes, keep,
        workers=workers,
    )
    return kernels.prefix_values(dg, keep)
