"""Bitplane encoding of multilevel coefficients.

pMGARD achieves fine-grained error control by splitting the multilevel
coefficients of every decomposition level into *bitplanes* — plane ``b``
holds bit ``b`` of the magnitude of every coefficient, quantised against
the level's maximum magnitude.  More-significant planes carry more of the
reconstruction accuracy, which is what lets the refactorer reorder planes
across levels into progressive components.

Signs are *embedded*: a coefficient's sign bit ships inside the plane
where its leading 1-bit appears (the standard embedded-coding treatment,
also used by SPIHT/zfp-style coders).  This matters for progressiveness:
a fine-detail group with millions of coefficients must not pay its whole
sign plane before its first magnitude bit becomes useful.

Encoding pipeline per coefficient group::

    float64 coeffs -> fixed-point magnitudes (uint64)
                   -> per-plane: packbits(magnitude bits) + packbits(signs
                      of newly-significant coeffs), both zlib'd (planes of
                      smooth data are mostly runs of zeros and compress
                      hard)

Decoding tolerates an arbitrary *prefix* of the planes (always the most
significant first); missing low planes read as zero magnitude bits, which
bounds the dequantisation error by the first missing plane's weight.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["PlaneSet", "encode_planes", "decode_planes", "plane_weight"]

#: Default number of magnitude bitplanes retained.
DEFAULT_PLANES = 32


@dataclass
class PlaneSet:
    """The encoded bitplanes of one coefficient group.

    Attributes
    ----------
    count:
        Number of coefficients in the group.
    exponent:
        Power-of-two scale: plane 0 (the MSB) has weight ``2**exponent``.
    num_planes:
        Total magnitude planes encoded.
    planes:
        Framed blobs, MSB first.  Each blob holds the zlib'd packbits of
        the plane's magnitude bits followed by the zlib'd packbits of the
        signs of coefficients whose leading 1-bit lies in this plane.
    """

    count: int
    exponent: int
    num_planes: int
    planes: list[bytes] = field(default_factory=list)

    @property
    def plane_nbytes(self) -> list[int]:
        """Encoded size of each plane (magnitude bits + new signs)."""
        return [len(p) for p in self.planes]

    @property
    def total_nbytes(self) -> int:
        """Total encoded size of all planes."""
        return sum(len(p) for p in self.planes)


def plane_weight(ps: PlaneSet, plane_index: int) -> float:
    """Magnitude contribution of one bit in the given plane (2**(exp-i))."""
    return float(2.0 ** (ps.exponent - plane_index))


def _deflate(payload: bytes) -> bytes:
    """zlib with a raw-storage fallback for incompressible payloads.

    The least-significant planes of floating-point data are effectively
    random; compressing them wastes time and can even expand.  A 1-byte
    marker selects the representation.
    """
    z = zlib.compress(payload, level=6)
    if len(z) < len(payload):
        return b"\x01" + z
    return b"\x00" + payload


def _inflate(blob: bytes) -> bytes:
    if blob[:1] == b"\x01":
        return zlib.decompress(blob[1:])
    return blob[1:]


def _pack(bits: np.ndarray) -> bytes:
    return _deflate(np.packbits(bits).tobytes())


def _unpack(blob: bytes, count: int) -> np.ndarray:
    raw = np.frombuffer(_inflate(blob), dtype=np.uint8)
    return np.unpackbits(raw, count=count).astype(bool)


def _frame(bits_blob: bytes, sign_blob: bytes) -> bytes:
    return struct.pack("<I", len(bits_blob)) + bits_blob + sign_blob


def _unframe(blob: bytes) -> tuple[bytes, bytes]:
    (blen,) = struct.unpack_from("<I", blob, 0)
    return blob[4 : 4 + blen], blob[4 + blen :]


def encode_planes(
    coeffs: np.ndarray,
    num_planes: int = DEFAULT_PLANES,
    *,
    lsb_exponent: int | None = None,
) -> PlaneSet:
    """Encode a flat coefficient array into embedded-sign bitplanes.

    By default the quantisation step is chosen from the group's maximum
    magnitude so that the most significant retained plane is plane 0.
    Passing ``lsb_exponent`` anchors the quantisation floor at
    ``2**lsb_exponent`` absolutely — the refactorer uses one global
    anchor across all coefficient groups (MGARD's uniform quantisation),
    so groups of small-magnitude detail coefficients encode *fewer*
    planes, which is where most of the size reduction comes from.
    Either way the absolute quantisation error of every coefficient is
    bounded by the LSB weight.
    """
    coeffs = np.ascontiguousarray(coeffs, dtype=np.float64).reshape(-1)
    count = coeffs.size
    if count == 0:
        return PlaneSet(0, 0, 0, [])
    if not (1 <= num_planes <= 60):
        raise ValueError(f"num_planes must be in [1, 60], got {num_planes}")
    amax = float(np.max(np.abs(coeffs)))
    if amax == 0.0 or not np.isfinite(amax):
        exponent = 0
    else:
        exponent = int(np.floor(np.log2(amax)))
    if lsb_exponent is not None:
        # Anchored mode: plane 0 weight stays at the group exponent, but
        # the plane count shrinks with the group's dynamic range.
        num_planes = exponent - lsb_exponent + 1
        if num_planes < 1:
            # Every coefficient quantises to zero under the global floor.
            return PlaneSet(count, exponent, 0, [])
        if num_planes > 60:
            raise ValueError(
                f"anchored plane count {num_planes} exceeds 60; "
                "raise lsb_exponent"
            )
    # Keep the LSB weight a normal double: for data living near the
    # subnormal floor (exponent close to -1022) fewer planes are
    # representable, so the plane count shrinks accordingly.
    num_planes = min(num_planes, exponent + 1022)
    if num_planes < 1:
        return PlaneSet(count, exponent, 0, [])
    sign = coeffs < 0
    # Fixed-point magnitudes: LSB weight 2**(exponent - num_planes + 1).
    lsb = 2.0 ** (exponent - num_planes + 1)
    q = np.round(np.abs(coeffs) / lsb).astype(np.uint64)
    # round() can push the top value to 2**num_planes; clamp into range.
    q = np.minimum(q, np.uint64(2**num_planes - 1))
    # Extract every plane in one vectorised pass: big-endian byte view +
    # unpackbits gives a (count, width) bit matrix, MSB in column 0; the
    # planes are its last num_planes columns.  packbits over axis 0 packs
    # all planes in a single call.  A 32-bit view halves the matrix for
    # the common num_planes <= 32 case.
    if num_planes <= 32:
        words = q.astype(">u4")
        width = 32
    else:
        words = q.astype(">u8")
        width = 64
    bit_matrix = np.unpackbits(
        words.view(np.uint8).reshape(count, width // 8), axis=1
    )
    plane_cols = bit_matrix[:, width - num_planes :]
    packed = np.packbits(plane_cols, axis=0)  # (ceil(count/8), num_planes)
    # Leading-plane index per coefficient: the first set column of its
    # bit-matrix row (exact for any width); zero coefficients get the
    # sentinel num_planes and match no plane.
    lead = np.where(q != 0, np.argmax(plane_cols, axis=1), num_planes)
    planes = []
    for i in range(num_planes):  # MSB (weight 2**exponent) first
        bits_blob = _deflate(packed[:, i].tobytes())
        planes.append(_frame(bits_blob, _pack(sign[lead == i])))
    return PlaneSet(count, exponent, num_planes, planes)


def decode_planes(ps: PlaneSet, keep: int | None = None) -> np.ndarray:
    """Reconstruct coefficients from the first ``keep`` magnitude planes.

    ``keep=None`` uses every *present* plane (supporting partially
    assembled PlaneSets whose plane list is a prefix).  Signs of
    coefficients that never became significant within the kept prefix
    are unknown — their magnitude is zero anyway.
    """
    if ps.count == 0:
        return np.zeros(0, dtype=np.float64)
    if keep is None:
        keep = len(ps.planes)
    if not 0 <= keep <= ps.num_planes or keep > len(ps.planes):
        raise ValueError(
            f"keep must be in [0, min({ps.num_planes}, {len(ps.planes)}))],"
            f" got {keep}"
        )
    q = np.zeros(ps.count, dtype=np.uint64)
    sign = np.zeros(ps.count, dtype=bool)
    seen = np.zeros(ps.count, dtype=bool)
    for i in range(keep):
        bits_blob, sign_blob = _unframe(ps.planes[i])
        bits = _unpack(bits_blob, ps.count)
        new = bits & ~seen
        nnew = int(new.sum())
        if nnew:
            sign[new] = _unpack(sign_blob, nnew)
        seen |= bits
        q |= bits.astype(np.uint64) << np.uint64(ps.num_planes - 1 - i)
    lsb = 2.0 ** (ps.exponent - ps.num_planes + 1)
    out = q.astype(np.float64) * lsb
    np.negative(out, where=sign, out=out)
    return out
