"""Scientific quality metrics for reconstructed data.

The paper's optimisation runs on the relative L-infinity error (Eq. 3),
but whether lossy data is *scientifically* usable depends on more than
the worst point: RMS behaviour, preservation of derived quantities
(means, extrema, gradients) and of spectral content all matter
(§2.2's citations study exactly these).  This module provides the
standard battery so users can audit a reconstruction against the
quantities their analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .error_model import relative_linf_error

__all__ = ["QualityReport", "assess", "psnr", "rmse", "spectrum_error"]


def rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError("shape mismatch")
    return float(np.sqrt(np.mean((original - reconstructed) ** 2)))


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (inf for exact match)."""
    err = rmse(original, reconstructed)
    original = np.asarray(original, dtype=np.float64)
    peak = float(original.max() - original.min())
    if err == 0.0:
        return float("inf")
    if peak == 0.0:
        return float("-inf") if err > 0 else float("inf")
    return float(20.0 * np.log10(peak / err))


def spectrum_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Relative L2 error of the isotropic power spectrum.

    Measures whether the reconstruction preserves the distribution of
    energy across scales — the quantity turbulence and cosmology
    analyses consume.  0 = spectra identical.  The k = 0 (DC) bin is
    excluded: constant offsets are reported by the drift metrics, and
    the DC power would otherwise dominate the norm for fields with a
    large mean.
    """
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError("shape mismatch")

    def iso_spectrum(f):
        spec = np.abs(np.fft.rfftn(f)) ** 2
        grids = np.meshgrid(
            *[np.fft.fftfreq(n) for n in f.shape[:-1]],
            np.fft.rfftfreq(f.shape[-1]),
            indexing="ij",
        )
        k = np.sqrt(sum(g**2 for g in grids))
        nbins = max(4, min(f.shape) // 2)
        bins = np.linspace(0, float(k.max()) + 1e-12, nbins + 1)
        idx = np.digitize(k.reshape(-1), bins) - 1
        weights = spec.reshape(-1).copy()
        weights[k.reshape(-1) == 0.0] = 0.0  # drop the DC mode
        power = np.bincount(idx, weights=weights, minlength=nbins)
        return power[:nbins]

    p0 = iso_spectrum(original)
    p1 = iso_spectrum(reconstructed)
    denom = float(np.linalg.norm(p0))
    if denom == 0.0:
        return 0.0 if float(np.linalg.norm(p1)) == 0.0 else float("inf")
    return float(np.linalg.norm(p0 - p1) / denom)


@dataclass(frozen=True)
class QualityReport:
    """The full quality battery for one reconstruction."""

    rel_linf: float
    rmse: float
    psnr_db: float
    mean_drift: float
    std_drift: float
    max_drift: float
    min_drift: float
    spectrum_rel_l2: float

    def acceptable_for(
        self,
        *,
        max_rel_linf: float = np.inf,
        min_psnr_db: float = -np.inf,
        max_mean_drift: float = np.inf,
        max_spectrum_error: float = np.inf,
    ) -> bool:
        """Check the report against analysis-specific thresholds."""
        return (
            self.rel_linf <= max_rel_linf
            and self.psnr_db >= min_psnr_db
            and abs(self.mean_drift) <= max_mean_drift
            and self.spectrum_rel_l2 <= max_spectrum_error
        )


def assess(original: np.ndarray, reconstructed: np.ndarray) -> QualityReport:
    """Compute the full quality battery.

    Drift metrics are relative changes of the derived quantity, scaled
    by the original data's dynamic range (so they stay meaningful for
    fields with large offsets, like absolute pressure).
    """
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError("shape mismatch")
    scale = float(original.max() - original.min())
    if scale == 0.0:
        scale = max(abs(float(original.flat[0])), 1.0)
    return QualityReport(
        rel_linf=relative_linf_error(original, reconstructed),
        rmse=rmse(original, reconstructed),
        psnr_db=psnr(original, reconstructed),
        mean_drift=float(reconstructed.mean() - original.mean()) / scale,
        std_drift=float(reconstructed.std() - original.std()) / scale,
        max_drift=float(reconstructed.max() - original.max()) / scale,
        min_drift=float(reconstructed.min() - original.min()) / scale,
        spectrum_rel_l2=spectrum_error(original, reconstructed),
    )
