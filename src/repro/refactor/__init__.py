"""Multigrid-based error-bounded data refactoring (pMGARD substitute).

Decomposes nD floating-point scientific arrays into a hierarchy of
progressive components whose sizes increase and whose reconstruction
errors decrease from top to bottom, exactly the structure RAPIDS applies
heterogeneous erasure coding to.
"""

from .analysis import QualityReport, assess
from .error_model import MGARD_CONSTANT, relative_linf_error, theoretical_bound
from .grid import LevelPlan, plan_levels
from .refactorer import RefactoredObject, Refactorer
from .retrieval import RetrievalPlan, bytes_for_error, components_for_error
from .serialization import (
    from_archive_bytes,
    load_archive,
    load_directory,
    save_archive,
    save_directory,
    to_archive_bytes,
)
from .transform import decompose, recompose

__all__ = [
    "Refactorer",
    "RefactoredObject",
    "decompose",
    "recompose",
    "plan_levels",
    "LevelPlan",
    "relative_linf_error",
    "theoretical_bound",
    "MGARD_CONSTANT",
    "RetrievalPlan",
    "components_for_error",
    "bytes_for_error",
    "save_directory",
    "load_directory",
    "save_archive",
    "load_archive",
    "to_archive_bytes",
    "from_archive_bytes",
    "QualityReport",
    "assess",
]
