"""Public refactoring API: the pMGARD substitute.

:class:`Refactorer` turns an nD floating-point array into a
:class:`RefactoredObject` — a hierarchical representation of ``l``
progressive components with sizes s1 << s2 << ... << sl and measured
reconstruction errors e1 >> e2 >> ... >> el — and reconstructs an
approximation of the original array from any prefix of those components.
These (s_j, e_j) pairs are exactly what the RAPIDS optimisation models in
:mod:`repro.core` consume.

The heavy stages run on the chunked kernels of
:mod:`repro.refactor.kernels` and tile over threads (``workers=``, same
convention as ``ErasureCodec``).  ``measure_errors=True`` no longer
reconstructs every prefix from scratch: the encoder's own quantised
magnitudes serve as the decoded state, each prefix is an O(n) bit-mask
of them, and only the inverse transform runs per component — with the
zero-detail row skip in :mod:`repro.refactor.transform` making the early
(mostly-zero) prefixes cheap.  The measured values are bit-identical to
the from-scratch path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..parallel.threads import default_workers
from . import bitplane, components, kernels, transform
from .error_model import relative_linf_error, theoretical_bound
from .grid import LevelPlan, plan_levels

__all__ = [
    "Refactorer",
    "RefactoredObject",
    "RefactorStream",
    "refactor_block",
    "reconstruct_block",
]


def refactor_block(
    block: np.ndarray, config: dict, *, measure_errors: bool = False
) -> RefactoredObject:
    """Module-level refactor stage callable (picklable for process pools).

    ``config`` holds :class:`Refactorer` constructor kwargs.  Process
    pools can only ship module-level functions on ``spawn`` start
    methods, so every pool in :mod:`repro.parallel` submits this (and
    :func:`reconstruct_block`) rather than a bound method or closure.
    """
    return Refactorer(**config).refactor(block, measure_errors=measure_errors)


def reconstruct_block(
    obj: "RefactoredObject",
    config: dict,
    *,
    upto: int | None = None,
    payloads: list[bytes] | None = None,
) -> np.ndarray:
    """Module-level reconstruct stage callable (picklable counterpart)."""
    return Refactorer(**config).reconstruct(obj, upto=upto, payloads=payloads)


@dataclass
class RefactoredObject:
    """A refactored dataset: progressive component payloads + metadata.

    Attributes
    ----------
    shape / dtype:
        Original array geometry (reconstruction restores both).
    plans:
        Multilevel decomposition plan (fine-to-coarse).
    payloads:
        Serialised component byte strings, most important first.  The
        paper's level sizes are ``sizes[j] = len(payloads[j])``.
    errors:
        ``errors[j]`` is the measured relative L-infinity error when the
        first ``j+1`` components are used for reconstruction (the paper's
        e_{j+1}).
    bounds:
        The corresponding theoretical error bounds (same indexing).
    data_max:
        max|d| of the original data (needed by the error metrics).
    correction:
        Whether the L2 correction was applied in the transform.
    """

    shape: tuple[int, ...]
    dtype: str
    plans: list[LevelPlan]
    payloads: list[bytes]
    errors: list[float]
    bounds: list[float]
    data_max: float
    correction: bool = True
    meta: dict = field(default_factory=dict)

    @property
    def num_components(self) -> int:
        return len(self.payloads)

    @property
    def sizes(self) -> list[int]:
        """Component sizes in bytes (the paper's s_j)."""
        return [len(p) for p in self.payloads]

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes)

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize

    @property
    def compression_ratio(self) -> float:
        """Original bytes per refactored byte (all components)."""
        return self.original_nbytes / max(1, self.total_bytes)


@dataclass
class RefactorStream:
    """A refactored object whose payloads serialise on demand.

    ``sizes`` are the exact serialised byte lengths, known *before* any
    payload exists — enough for the fault-tolerance solver.  Iterating
    yields ``(index, payload)`` in progressive order, serialising each
    component lazily and appending it to ``obj.payloads``, so a consumer
    can hand component ``j`` to the erasure coder while ``j + 1`` is
    still being assembled.
    """

    obj: RefactoredObject
    sizes: list[int]
    _gen: Iterator[tuple[int, bytes]]

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        return self._gen


class Refactorer:
    """Error-controlled progressive refactoring of scientific arrays.

    Parameters
    ----------
    num_components:
        Number of progressive levels to emit (the paper uses 4).
    max_levels:
        Cap on multilevel decomposition depth (actual depth also limited
        by the array shape).
    num_planes:
        Magnitude bitplanes kept per coefficient group; sets the error
        floor of the full reconstruction.
    correction:
        Apply MGARD's L2 projection correction (ablation switch).
    policy / size_ratio:
        Bitplane grouping policy, see :func:`repro.refactor.components.group_planes`.
    workers:
        Thread fan-out for the transform tiles, per-plane zlib jobs and
        component (de)serialisation.  ``None`` means one worker per CPU
        (like ``ErasureCodec``); every worker count produces bit-identical
        output.
    """

    def __init__(
        self,
        num_components: int = 4,
        *,
        max_levels: int = 6,
        num_planes: int = 32,
        correction: bool = True,
        policy: str = "importance",
        size_ratio: float = 4.0,
        workers: int | None = None,
    ) -> None:
        if num_components < 1:
            raise ValueError("num_components must be >= 1")
        self.num_components = num_components
        self.max_levels = max_levels
        self.num_planes = num_planes
        self.correction = correction
        self.policy = policy
        self.size_ratio = size_ratio
        self.workers = workers if workers is not None else default_workers()

    # -- forward path ---------------------------------------------------

    def refactor(
        self, data: np.ndarray, *, measure_errors: bool = True
    ) -> RefactoredObject:
        """Decompose, bitplane-encode, and regroup ``data``.

        ``measure_errors=False`` skips the per-prefix empirical error
        measurement and reports only the closed-form bounds; use it on
        large arrays in benchmarks.  (With measurement on, the cost is
        one inverse transform per component over incrementally unmasked
        magnitudes — not a from-scratch decode+reconstruct per prefix.)
        """
        state = self._encode(data)
        obj = state["obj"]
        obj.payloads = components.components_to_bytes(
            state["comps"], state["planesets"], workers=self.workers
        )
        if measure_errors:
            obj.errors = self._measure_errors(
                state["data"], obj, state["groups"], state["decoded"],
                state["kept_after"],
            )
        else:
            obj.errors = list(obj.bounds)
        return obj

    def refactor_stream(self, data: np.ndarray) -> RefactorStream:
        """Refactor with lazily-serialised payloads (errors = bounds).

        Semantically equivalent to ``refactor(data,
        measure_errors=False)`` — identical payload bytes, sizes, bounds
        — but the exact component sizes are available up front and each
        payload is serialised only when the stream is consumed, letting
        the pipeline overlap downstream work (EC encoding) with
        serialisation.
        """
        state = self._encode(data)
        obj = state["obj"]
        obj.errors = list(obj.bounds)
        comps, planesets = state["comps"], state["planesets"]
        sizes = [c.serialized_nbytes for c in comps]

        def _gen() -> Iterator[tuple[int, bytes]]:
            for j, comp in enumerate(comps):
                payload = components.component_to_bytes(comp, planesets)
                obj.payloads.append(payload)
                yield j, payload

        return RefactorStream(obj=obj, sizes=sizes, _gen=_gen())

    def _encode(self, data: np.ndarray) -> dict:
        """Shared forward path up to grouped (unserialised) components."""
        data = np.asarray(data)
        if not np.issubdtype(data.dtype, np.floating):
            raise TypeError(f"expected floating-point data, got {data.dtype}")
        if data.ndim < 1:
            raise ValueError("scalar input cannot be refactored")
        if not np.all(np.isfinite(data)):
            raise ValueError(
                "data contains NaN or Inf; refactoring requires finite "
                "values (mask or fill missing data first)"
            )
        data_max = float(np.max(np.abs(data)))
        mallat, plans = transform.decompose(
            data, max_levels=self.max_levels, correction=self.correction,
            workers=self.workers,
        )
        groups = transform.level_flat_indices(plans, data.shape)
        flat = mallat.reshape(-1)
        # Anchor quantisation globally: the floor sits num_planes below
        # the largest coefficient anywhere, so low-magnitude detail
        # groups encode proportionally fewer planes (MGARD's uniform
        # quantisation — this is the main source of size reduction).
        coeff_max = float(np.max(np.abs(flat)))
        if coeff_max > 0 and np.isfinite(coeff_max):
            global_exp = int(np.floor(np.log2(coeff_max)))
            lsb_exp = global_exp - self.num_planes + 1
        else:
            lsb_exp = None
        qgs, group_planes_blobs = kernels.encode_groups(
            flat, groups, self.num_planes, lsb_exponent=lsb_exp,
            workers=self.workers,
        )
        planesets = [
            bitplane.PlaneSet(qg.count, qg.exponent, qg.num_planes, blobs)
            for qg, blobs in zip(qgs, group_planes_blobs)
        ]
        comps = components.group_planes(
            planesets,
            self.num_components,
            policy=self.policy,
            size_ratio=self.size_ratio,
        )

        # Per-prefix error bounds from the planes each prefix contains.
        bounds = []
        kept_after: list[list[int]] = []
        kept = [0] * len(planesets)
        seen_planes: list[set[int]] = [set() for _ in planesets]
        for c in comps:
            for ref, _ in c.entries:
                seen_planes[ref.group].add(ref.plane)
            prefix = [
                self._prefix_len(s, planesets[g].num_planes)
                for g, s in enumerate(seen_planes)
            ]
            kept = prefix
            kept_after.append(list(kept))
            bounds.append(
                theoretical_bound(planesets, kept, data_max)
                if data_max > 0
                else 0.0
            )

        obj = RefactoredObject(
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            plans=plans,
            payloads=[],
            errors=[],
            bounds=bounds,
            data_max=data_max,
            correction=self.correction,
            meta={"policy": self.policy, "num_planes": self.num_planes},
        )
        return {
            "data": data,
            "obj": obj,
            "groups": groups,
            "decoded": [qg.decoded() for qg in qgs],
            "planesets": planesets,
            "comps": comps,
            "kept_after": kept_after,
        }

    def _measure_errors(
        self,
        data: np.ndarray,
        obj: RefactoredObject,
        groups: list[np.ndarray],
        decoded: list[kernels.DecodedGroup],
        kept_after: list[list[int]],
    ) -> list[float]:
        """Measured per-prefix errors, incrementally.

        The quantised magnitudes were decoded (or, here, never thrown
        away) exactly once; prefix ``j`` unmasks the planes component
        ``j`` added — an O(n) integer mask per touched group — and runs
        one inverse transform.  Values are bit-identical to
        ``relative_linf_error(data, reconstruct(obj, upto=j + 1))``.
        """
        flat = np.zeros(int(np.prod(obj.shape)), dtype=np.float64)
        prev = [0] * len(groups)
        errors: list[float] = []
        for kept in kept_after:
            for g, (k_new, k_old) in enumerate(zip(kept, prev)):
                if k_new != k_old:
                    flat[groups[g]] = kernels.prefix_values(decoded[g], k_new)
            prev = kept
            rec = transform.recompose(
                flat.reshape(obj.shape), obj.plans,
                correction=obj.correction, workers=self.workers,
            )
            errors.append(
                relative_linf_error(data, rec.astype(obj.dtype, copy=False))
            )
        return errors

    @staticmethod
    def _prefix_len(planes_seen: set[int], num_planes: int) -> int:
        """Length of the contiguous MSB prefix within the planes seen."""
        n = 0
        while n < num_planes and n in planes_seen:
            n += 1
        return n

    # -- inverse path ---------------------------------------------------

    def reconstruct(
        self,
        obj: RefactoredObject,
        *,
        upto: int | None = None,
        payloads: list[bytes] | None = None,
    ) -> np.ndarray:
        """Reconstruct an approximation from the first ``upto`` components.

        ``payloads`` overrides the object's own payload list (the
        restoration component passes the subset it managed to gather,
        which must still be a prefix of the progressive order).
        """
        if payloads is None:
            payloads = obj.payloads
        if upto is None:
            upto = len(payloads)
        if not 1 <= upto <= len(payloads):
            raise ValueError(
                f"upto must be in [1, {len(payloads)}], got {upto}"
            )
        parsed = [
            entries
            for _, entries in components.components_from_bytes(
                payloads[:upto], workers=self.workers
            )
        ]
        planesets = components.assemble_planesets(parsed)
        groups = transform.level_flat_indices(obj.plans, obj.shape)
        if len(planesets) < len(groups):
            planesets += [
                bitplane.PlaneSet(0, 0, 0, [])
                for _ in range(len(groups) - len(planesets))
            ]
        flat = np.zeros(int(np.prod(obj.shape)), dtype=np.float64)
        for idx, ps in zip(groups, planesets):
            if ps.count == 0:
                continue
            if ps.count != idx.size:
                raise ValueError(
                    f"coefficient count mismatch: payload has {ps.count}, "
                    f"layout expects {idx.size}"
                )
            if ps.planes:
                flat[idx] = bitplane.decode_planes(
                    ps, keep=len(ps.planes), workers=self.workers
                )
        mallat = flat.reshape(obj.shape)
        # With every plane of every group present the zero-detail-line
        # scan cannot pay off; skip it (output is bitwise identical).
        dense = all(
            ps.num_planes > 0 and len(ps.planes) == ps.num_planes
            for ps in planesets
        )
        out = transform.recompose(
            mallat, obj.plans, correction=obj.correction,
            workers=self.workers, detect_zero_rows=not dense,
        )
        return out.astype(obj.dtype, copy=False)
