"""Public refactoring API: the pMGARD substitute.

:class:`Refactorer` turns an nD floating-point array into a
:class:`RefactoredObject` — a hierarchical representation of ``l``
progressive components with sizes s1 << s2 << ... << sl and measured
reconstruction errors e1 >> e2 >> ... >> el — and reconstructs an
approximation of the original array from any prefix of those components.
These (s_j, e_j) pairs are exactly what the RAPIDS optimisation models in
:mod:`repro.core` consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import bitplane, components, transform
from .error_model import relative_linf_error, theoretical_bound
from .grid import LevelPlan, plan_levels

__all__ = ["Refactorer", "RefactoredObject"]


@dataclass
class RefactoredObject:
    """A refactored dataset: progressive component payloads + metadata.

    Attributes
    ----------
    shape / dtype:
        Original array geometry (reconstruction restores both).
    plans:
        Multilevel decomposition plan (fine-to-coarse).
    payloads:
        Serialised component byte strings, most important first.  The
        paper's level sizes are ``sizes[j] = len(payloads[j])``.
    errors:
        ``errors[j]`` is the measured relative L-infinity error when the
        first ``j+1`` components are used for reconstruction (the paper's
        e_{j+1}).
    bounds:
        The corresponding theoretical error bounds (same indexing).
    data_max:
        max|d| of the original data (needed by the error metrics).
    correction:
        Whether the L2 correction was applied in the transform.
    """

    shape: tuple[int, ...]
    dtype: str
    plans: list[LevelPlan]
    payloads: list[bytes]
    errors: list[float]
    bounds: list[float]
    data_max: float
    correction: bool = True
    meta: dict = field(default_factory=dict)

    @property
    def num_components(self) -> int:
        return len(self.payloads)

    @property
    def sizes(self) -> list[int]:
        """Component sizes in bytes (the paper's s_j)."""
        return [len(p) for p in self.payloads]

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes)

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize

    @property
    def compression_ratio(self) -> float:
        """Original bytes per refactored byte (all components)."""
        return self.original_nbytes / max(1, self.total_bytes)


class Refactorer:
    """Error-controlled progressive refactoring of scientific arrays.

    Parameters
    ----------
    num_components:
        Number of progressive levels to emit (the paper uses 4).
    max_levels:
        Cap on multilevel decomposition depth (actual depth also limited
        by the array shape).
    num_planes:
        Magnitude bitplanes kept per coefficient group; sets the error
        floor of the full reconstruction.
    correction:
        Apply MGARD's L2 projection correction (ablation switch).
    policy / size_ratio:
        Bitplane grouping policy, see :func:`repro.refactor.components.group_planes`.
    """

    def __init__(
        self,
        num_components: int = 4,
        *,
        max_levels: int = 6,
        num_planes: int = 32,
        correction: bool = True,
        policy: str = "importance",
        size_ratio: float = 4.0,
    ) -> None:
        if num_components < 1:
            raise ValueError("num_components must be >= 1")
        self.num_components = num_components
        self.max_levels = max_levels
        self.num_planes = num_planes
        self.correction = correction
        self.policy = policy
        self.size_ratio = size_ratio

    # -- forward path ---------------------------------------------------

    def refactor(
        self, data: np.ndarray, *, measure_errors: bool = True
    ) -> RefactoredObject:
        """Decompose, bitplane-encode, and regroup ``data``.

        ``measure_errors=False`` skips the per-prefix empirical error
        measurement (one reconstruction per component) and reports only
        the closed-form bounds; use it on large arrays in benchmarks.
        """
        data = np.asarray(data)
        if not np.issubdtype(data.dtype, np.floating):
            raise TypeError(f"expected floating-point data, got {data.dtype}")
        if data.ndim < 1:
            raise ValueError("scalar input cannot be refactored")
        if not np.all(np.isfinite(data)):
            raise ValueError(
                "data contains NaN or Inf; refactoring requires finite "
                "values (mask or fill missing data first)"
            )
        data_max = float(np.max(np.abs(data)))
        mallat, plans = transform.decompose(
            data, max_levels=self.max_levels, correction=self.correction
        )
        groups = transform.level_flat_indices(plans, data.shape)
        flat = mallat.reshape(-1)
        # Anchor quantisation globally: the floor sits num_planes below
        # the largest coefficient anywhere, so low-magnitude detail
        # groups encode proportionally fewer planes (MGARD's uniform
        # quantisation — this is the main source of size reduction).
        coeff_max = float(np.max(np.abs(flat)))
        if coeff_max > 0 and np.isfinite(coeff_max):
            global_exp = int(np.floor(np.log2(coeff_max)))
            lsb_exp = global_exp - self.num_planes + 1
        else:
            lsb_exp = None
        planesets = [
            bitplane.encode_planes(
                flat[idx], self.num_planes, lsb_exponent=lsb_exp
            )
            for idx in groups
        ]
        comps = components.group_planes(
            planesets,
            self.num_components,
            policy=self.policy,
            size_ratio=self.size_ratio,
        )
        payloads = [components.component_to_bytes(c, planesets) for c in comps]

        # Per-prefix error bounds from the planes each prefix contains.
        bounds = []
        kept_after: list[list[int]] = []
        kept = [0] * len(planesets)
        seen_planes: list[set[int]] = [set() for _ in planesets]
        for c in comps:
            for ref, _ in c.entries:
                seen_planes[ref.group].add(ref.plane)
            prefix = [
                self._prefix_len(s, planesets[g].num_planes)
                for g, s in enumerate(seen_planes)
            ]
            kept = prefix
            kept_after.append(list(kept))
            bounds.append(
                theoretical_bound(planesets, kept, data_max)
                if data_max > 0
                else 0.0
            )

        obj = RefactoredObject(
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            plans=plans,
            payloads=payloads,
            errors=[],
            bounds=bounds,
            data_max=data_max,
            correction=self.correction,
            meta={"policy": self.policy, "num_planes": self.num_planes},
        )
        if measure_errors:
            obj.errors = [
                relative_linf_error(data, self.reconstruct(obj, upto=j + 1))
                for j in range(len(payloads))
            ]
        else:
            obj.errors = list(bounds)
        return obj

    @staticmethod
    def _prefix_len(planes_seen: set[int], num_planes: int) -> int:
        """Length of the contiguous MSB prefix within the planes seen."""
        n = 0
        while n < num_planes and n in planes_seen:
            n += 1
        return n

    # -- inverse path ---------------------------------------------------

    def reconstruct(
        self,
        obj: RefactoredObject,
        *,
        upto: int | None = None,
        payloads: list[bytes] | None = None,
    ) -> np.ndarray:
        """Reconstruct an approximation from the first ``upto`` components.

        ``payloads`` overrides the object's own payload list (the
        restoration component passes the subset it managed to gather,
        which must still be a prefix of the progressive order).
        """
        if payloads is None:
            payloads = obj.payloads
        if upto is None:
            upto = len(payloads)
        if not 1 <= upto <= len(payloads):
            raise ValueError(
                f"upto must be in [1, {len(payloads)}], got {upto}"
            )
        parsed = [components.component_from_bytes(p)[1] for p in payloads[:upto]]
        planesets = components.assemble_planesets(parsed)
        groups = transform.level_flat_indices(obj.plans, obj.shape)
        if len(planesets) < len(groups):
            planesets += [
                bitplane.PlaneSet(0, 0, 0, [])
                for _ in range(len(groups) - len(planesets))
            ]
        flat = np.zeros(int(np.prod(obj.shape)), dtype=np.float64)
        for idx, ps in zip(groups, planesets):
            if ps.count == 0:
                continue
            if ps.count != idx.size:
                raise ValueError(
                    f"coefficient count mismatch: payload has {ps.count}, "
                    f"layout expects {idx.size}"
                )
            flat[idx] = bitplane.decode_planes(ps, keep=len(ps.planes))
        mallat = flat.reshape(obj.shape)
        out = transform.recompose(mallat, obj.plans, correction=obj.correction)
        return out.astype(obj.dtype, copy=False)
