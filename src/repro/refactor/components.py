"""Progressive components: reordering bitplanes into refactored levels.

After the multilevel transform and bitplane encoding, the refactored
representation is a sequence of *components* (the paper's refactored
"levels") with sizes increasing top to bottom (s1 << s2 << ... << sl) and
reconstruction errors decreasing (e1 >> e2 >> ... >> el).  Following
pMGARD, bitplanes from *different* decomposition levels are reordered by
their relative importance to the reconstruction accuracy and regrouped,
so a single component typically mixes, say, the MSB planes of the fine
detail ring with mid planes of the coarse approximation.

Two grouping policies are provided (the second exists for the ablation
bench):

``importance`` (default)
    Sort every (group, plane) pair by descending magnitude weight
    ``2**(exponent_g - plane)``, then cut the ordered stream into
    ``num_components`` components whose *compressed byte sizes* follow a
    geometric progression (ratio configurable, default 4), enforcing the
    paper's s1 << s2 << ... assumption by construction.

``per-level``
    Component j = all planes of decomposition group j (no cross-level
    reordering) — the naive layout pMGARD improves upon.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..parallel.threads import thread_map
from .bitplane import PlaneSet

__all__ = [
    "PlaneRef",
    "Component",
    "group_planes",
    "component_to_bytes",
    "components_to_bytes",
    "component_from_bytes",
    "components_from_bytes",
    "assemble_planesets",
]

_MAGIC = b"RPC1"


@dataclass(frozen=True)
class PlaneRef:
    """Reference to one encoded plane: (coefficient group, plane index)."""

    group: int
    plane: int


@dataclass
class Component:
    """One refactored level: an ordered bundle of encoded planes."""

    index: int
    entries: list[tuple[PlaneRef, bytes]] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        """Payload size (plane bytes only; the header adds ~10 B/plane)."""
        return sum(len(blob) for _, blob in self.entries)

    @property
    def serialized_nbytes(self) -> int:
        """Exact byte length :func:`component_to_bytes` will produce.

        4-byte magic + 6-byte component header, then an 18-byte entry
        header per plane blob.  Knowing the sizes before serialising is
        what lets the pipelined prepare path run the fault-tolerance
        solver while payloads are still being built.
        """
        return 10 + sum(18 + len(blob) for _, blob in self.entries)


def _ordered_plane_stream(
    planesets: list[PlaneSet], policy: str
) -> list[tuple[PlaneRef, bytes, float]]:
    """Yield (ref, blob, weight) for every plane in consumption order."""
    stream: list[tuple[PlaneRef, bytes, float]] = []
    if policy == "per-level":
        for g, ps in enumerate(planesets):
            if ps.count == 0 or ps.num_planes == 0:
                continue
            for i, blob in enumerate(ps.planes):
                stream.append((PlaneRef(g, i), blob, 2.0 ** (ps.exponent - i)))
        return stream
    if policy != "importance":
        raise ValueError(f"unknown grouping policy: {policy!r}")
    refs: list[tuple[float, int, int]] = []  # (-weight, group, plane)
    for g, ps in enumerate(planesets):
        if ps.count == 0:
            continue
        for i in range(ps.num_planes):
            refs.append((-(2.0 ** (ps.exponent - i)), g, i))
    # Stable sort: descending weight, coarser group first on ties.  Plane
    # order within a group is automatically MSB-first because weights
    # decrease monotonically with the plane index.
    refs.sort()
    for negw, g, i in refs:
        stream.append((PlaneRef(g, i), planesets[g].planes[i], -negw))
    return stream


def group_planes(
    planesets: list[PlaneSet],
    num_components: int,
    *,
    policy: str = "importance",
    size_ratio: float = 4.0,
) -> list[Component]:
    """Split the encoded planes into ``num_components`` progressive levels.

    With the ``importance`` policy, component byte-size targets follow the
    geometric progression ``total * r**j / sum(r**i)``; a component closes
    as soon as its cumulative size reaches its target (every component is
    guaranteed at least one plane).  With ``per-level``, components map
    1:1 onto decomposition groups and ``num_components`` must not exceed
    the group count.
    """
    if num_components < 1:
        raise ValueError("num_components must be >= 1")
    stream = _ordered_plane_stream(planesets, policy)
    if not stream:
        raise ValueError("no planes to group (all coefficient groups empty)")
    if policy == "per-level":
        ngroups = max(ref.group for ref, _, _ in stream) + 1
        if num_components > ngroups:
            raise ValueError(
                f"per-level policy supports at most {ngroups} components"
            )
        # Map decomposition groups onto components contiguously.
        bounds = np.array_split(np.arange(ngroups), num_components)
        group_of = {}
        for c, idx in enumerate(bounds):
            for g in idx:
                group_of[int(g)] = c
        comps = [Component(index=j) for j in range(num_components)]
        for ref, blob, _ in stream:
            comps[group_of[ref.group]].entries.append((ref, blob))
        return comps

    total = sum(len(blob) for _, blob, _ in stream)
    weights = np.array([size_ratio**j for j in range(num_components)])
    targets = total * weights / weights.sum()
    comps = [Component(index=j) for j in range(num_components)]
    j = 0
    acc = 0
    for pos, (ref, blob, _) in enumerate(stream):
        remaining_planes = len(stream) - pos
        remaining_comps = num_components - j - 1
        # Close the component once its target is met, but never starve the
        # remaining components of their at-least-one-plane guarantee.
        if (
            comps[j].entries
            and acc >= targets[j]
            and j < num_components - 1
            and remaining_planes > remaining_comps
        ):
            j += 1
            acc = 0
        comps[j].entries.append((ref, blob))
        acc += len(blob)
    if any(not c.entries for c in comps):
        raise ValueError(
            f"not enough planes ({len(stream)}) for {num_components} components"
        )
    return comps


# -- serialization ------------------------------------------------------


def component_to_bytes(comp: Component, planesets: list[PlaneSet]) -> bytes:
    """Serialise a component to a self-contained byte string.

    Every entry carries the metadata needed to decode it without the
    other components: group id, plane index, and (once per group seen in
    this component) the group's count/exponent/num_planes triple.
    """
    out = bytearray()
    out += _MAGIC
    out += struct.pack("<HI", comp.index, len(comp.entries))
    for ref, blob in comp.entries:
        ps = planesets[ref.group]
        out += struct.pack(
            "<HHIiHI", ref.group, ref.plane, ps.count, ps.exponent, ps.num_planes,
            len(blob),
        )
        out += blob
    return bytes(out)


def components_to_bytes(
    comps: list[Component],
    planesets: list[PlaneSet],
    *,
    workers: int | None = None,
) -> list[bytes]:
    """Serialise every component, fanning the byte assembly over threads."""
    return thread_map(
        lambda c: component_to_bytes(c, planesets), comps, workers=workers
    )


def components_from_bytes(
    payloads: list[bytes], *, workers: int | None = None
) -> list[tuple[int, list[tuple[PlaneRef, bytes, tuple]]]]:
    """Parse serialised components, fanning the parsing over threads."""
    return thread_map(component_from_bytes, payloads, workers=workers)


def component_from_bytes(data: bytes) -> tuple[int, list[tuple[PlaneRef, bytes, tuple]]]:
    """Parse a serialised component.

    Returns ``(component_index, entries)`` where each entry is
    ``(ref, blob, (count, exponent, num_planes))``.
    """
    if data[:4] != _MAGIC:
        raise ValueError("not a RAPIDS component payload (bad magic)")
    idx, nentries = struct.unpack_from("<HI", data, 4)
    off = 10
    entries = []
    for _ in range(nentries):
        g, plane, count, exponent, num_planes, blen = struct.unpack_from(
            "<HHIiHI", data, off
        )
        off += 18
        blob = bytes(data[off : off + blen])
        if len(blob) != blen:
            raise ValueError("truncated component payload")
        off += blen
        entries.append((PlaneRef(g, plane), blob, (count, exponent, num_planes)))
    return idx, entries


def assemble_planesets(
    parsed_components: list[list[tuple[PlaneRef, bytes, tuple]]],
) -> list[PlaneSet]:
    """Rebuild per-group (possibly partial) PlaneSets from parsed components.

    The components must be a *prefix* of the progressive order (1..j).
    Groups with no plane present are returned as empty placeholders.
    Within a group the planes present always form an MSB prefix by
    construction of the grouping policies.
    """
    metas: dict[int, tuple] = {}
    planes: dict[int, dict[int, bytes]] = {}
    for entries in parsed_components:
        for ref, blob, meta in entries:
            metas[ref.group] = meta
            planes.setdefault(ref.group, {})[ref.plane] = blob
    if not metas:
        return []
    ngroups = max(metas) + 1
    out: list[PlaneSet] = []
    for g in range(ngroups):
        if g not in metas:
            out.append(PlaneSet(0, 0, 0, []))
            continue
        count, exponent, num_planes = metas[g]
        got = planes.get(g, {})
        prefix: list[bytes] = []
        for i in range(num_planes):
            if i not in got:
                break
            prefix.append(got[i])
        out.append(PlaneSet(count, exponent, num_planes, prefix))
    return out
