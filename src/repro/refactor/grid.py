"""Grid hierarchies for the multilevel (multigrid) decomposition.

The decomposition coarsens each axis by keeping every other node while
always retaining both endpoints, the same rule MGARD uses for arbitrary
(non-dyadic) grid sizes.  For an axis of length ``n`` the coarse axis has
``ceil(n / 2) + (1 if n is even else 0)`` nodes in the odd case and the
even case respectively — concretely, indices ``0, 2, 4, ...`` plus the
last index when ``n`` is even.  Axes that reach the minimum size stop
coarsening while the others continue, so arrays with mixed-magnitude
shapes still decompose cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["coarse_indices", "detail_indices", "LevelPlan", "plan_levels", "MIN_AXIS"]

#: Axes shorter than this cannot be coarsened further.
MIN_AXIS = 3


def coarse_indices(n: int) -> np.ndarray:
    """Indices of the nodes kept on the coarse grid for an axis of length n.

    Every other node starting at 0, always including the final node so the
    domain endpoints survive at every level.
    """
    if n < 2:
        raise ValueError(f"axis too short to form a grid: {n}")
    idx = np.arange(0, n, 2)
    if idx[-1] != n - 1:
        idx = np.append(idx, n - 1)
    return idx


def detail_indices(n: int) -> np.ndarray:
    """Indices of the nodes removed (detail nodes) when coarsening."""
    keep = np.zeros(n, dtype=bool)
    keep[coarse_indices(n)] = True
    return np.nonzero(~keep)[0]


@dataclass(frozen=True)
class LevelPlan:
    """Shape bookkeeping for one coarsening step of an nD array.

    Attributes
    ----------
    fine_shape / coarse_shape:
        Array shapes before and after this coarsening step.
    coarsened_axes:
        Which axes actually shrank (axes at MIN_AXIS or below pass through).
    """

    fine_shape: tuple[int, ...]
    coarse_shape: tuple[int, ...]
    coarsened_axes: tuple[int, ...]

    @property
    def detail_count(self) -> int:
        """Number of multilevel coefficients produced at this level."""
        fine = int(np.prod(self.fine_shape))
        coarse = int(np.prod(self.coarse_shape))
        return fine - coarse


def plan_levels(shape: tuple[int, ...], max_levels: int) -> list[LevelPlan]:
    """Plan up to ``max_levels`` coarsening steps for an array shape.

    Stops early when no axis can shrink further.  The returned list is
    ordered fine-to-coarse (level 0 operates on the original shape).
    """
    if any(n < 2 for n in shape):
        raise ValueError(f"every axis must have >= 2 nodes, got shape {shape}")
    plans: list[LevelPlan] = []
    cur = tuple(shape)
    for _ in range(max_levels):
        axes = tuple(ax for ax, n in enumerate(cur) if n >= MIN_AXIS)
        if not axes:
            break
        nxt = tuple(
            len(coarse_indices(n)) if ax in axes else n for ax, n in enumerate(cur)
        )
        plans.append(LevelPlan(fine_shape=cur, coarse_shape=nxt, coarsened_axes=axes))
        cur = nxt
    if not plans:
        raise ValueError(f"shape {shape} cannot be coarsened even once")
    return plans
