"""Error-controlled retrieval: how much of the hierarchy does a target
accuracy actually need?

pMGARD's headline capability (§2.2, [34]) is *error-controlled,
progressive and adaptable* retrieval: an analysis task states the error
it can tolerate and fetches only the prefix of the refactored
representation that achieves it.  RAPIDS inherits this — during
restoration there is no reason to gather level 4's huge fragments when
level 2's accuracy suffices.

This module answers the planning questions:

* :func:`components_for_error` — the shortest component prefix whose
  recorded (or bound) error meets a target;
* :func:`bytes_for_error` — the corresponding retrieval cost;
* :class:`RetrievalPlan` — the full error-vs-bytes frontier of an object,
  with lookups in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass

from .refactorer import RefactoredObject

__all__ = ["components_for_error", "bytes_for_error", "RetrievalPlan"]


def _error_profile(obj: RefactoredObject, *, use_bounds: bool) -> list[float]:
    profile = obj.bounds if use_bounds else obj.errors
    if not profile:
        profile = obj.bounds or obj.errors
    if not profile:
        raise ValueError("object has neither measured errors nor bounds")
    if len(profile) != obj.num_components:
        raise ValueError(
            f"error profile length {len(profile)} does not match "
            f"{obj.num_components} components"
        )
    return list(profile)


def components_for_error(
    obj: RefactoredObject, target_error: float, *, use_bounds: bool = False
) -> int:
    """Smallest number of leading components meeting ``target_error``.

    With ``use_bounds`` the decision uses the closed-form error bounds
    (guaranteed, conservative); otherwise the measured errors.  Raises
    :class:`ValueError` if even the full representation cannot meet the
    target (the quantisation floor is the hard limit).
    """
    if target_error <= 0:
        raise ValueError("target_error must be positive")
    profile = _error_profile(obj, use_bounds=use_bounds)
    for j, err in enumerate(profile, start=1):
        if err <= target_error:
            return j
    raise ValueError(
        f"target error {target_error:g} is below the full-representation "
        f"error {profile[-1]:g}; re-refactor with more bitplanes"
    )


def bytes_for_error(
    obj: RefactoredObject, target_error: float, *, use_bounds: bool = False
) -> int:
    """Bytes that must be retrieved to reach ``target_error``."""
    j = components_for_error(obj, target_error, use_bounds=use_bounds)
    return sum(obj.sizes[:j])


@dataclass(frozen=True)
class RetrievalPlan:
    """The error-vs-bytes frontier of one refactored object.

    ``points[j]`` is ``(cumulative_bytes, error)`` after retrieving the
    first ``j + 1`` components.
    """

    points: tuple[tuple[int, float], ...]

    @classmethod
    def for_object(
        cls, obj: RefactoredObject, *, use_bounds: bool = False
    ) -> "RetrievalPlan":
        profile = _error_profile(obj, use_bounds=use_bounds)
        acc = 0
        pts = []
        for size, err in zip(obj.sizes, profile):
            acc += size
            pts.append((acc, float(err)))
        return cls(tuple(pts))

    @property
    def total_bytes(self) -> int:
        return self.points[-1][0]

    @property
    def floor_error(self) -> float:
        return self.points[-1][1]

    def error_at_budget(self, byte_budget: float) -> float:
        """Best error achievable with at most ``byte_budget`` bytes.

        Returns 1.0 (the nothing-retrieved penalty, e0) if even the
        first component does not fit.
        """
        best = 1.0
        for nbytes, err in self.points:
            if nbytes <= byte_budget:
                best = err
        return best

    def budget_for_error(self, target_error: float) -> int:
        """Bytes needed for ``target_error`` (ValueError if unreachable)."""
        for nbytes, err in self.points:
            if err <= target_error:
                return nbytes
        raise ValueError(
            f"target {target_error:g} below the floor {self.floor_error:g}"
        )

    def savings_vs_full(self, target_error: float) -> float:
        """Fraction of retrieval bytes saved by stopping at the target."""
        return 1.0 - self.budget_for_error(target_error) / self.total_bytes
