"""The control plane: observation -> reconfiguration -> live migration.

RAPIDS solves its fault-tolerance MINLP once, at preparation time; this
package closes the loop afterwards.  :mod:`~repro.control.observer`
turns epoch-by-epoch telemetry (outage outcomes, WAN throughput, access
counters) into drift decisions; :mod:`~repro.control.operator` re-runs
the optimiser warm-started from the incumbent configuration; and
:mod:`~repro.control.migration` applies the new configuration to live
data without ever dropping a level below its design recoverability.
:mod:`~repro.control.scenarios` proves the loop end to end with a
deterministic chaos-campaign suite.
"""

from .migration import (
    LiveMigrator,
    MigrationReport,
    MigrationStep,
    level_recoverable,
    safety_breaches,
)
from .observer import AvailabilityEstimator, DriftPolicy, hot_objects, p_drift
from .operator import ReconfigOperator
from .scenarios import SCENARIOS, ScenarioSpec, run_scenario, scenario_json

__all__ = [
    "AvailabilityEstimator",
    "DriftPolicy",
    "LiveMigrator",
    "MigrationReport",
    "MigrationStep",
    "ReconfigOperator",
    "SCENARIOS",
    "ScenarioSpec",
    "hot_objects",
    "level_recoverable",
    "p_drift",
    "run_scenario",
    "safety_breaches",
    "scenario_json",
]
