"""Drift observation: when does the world differ enough to re-solve?

The FT configuration an object was prepared with is optimal for the
parameters measured *then* — per-system outage probability ``p``, the
overhead budget ``omega``, and (through the budget boost for hot data)
access patterns.  Geo-distributed reality drifts: failure rates change
per region, WAN links degrade, one dataset suddenly becomes popular.

This module supplies the control loop's sensors:

* :class:`AvailabilityEstimator` — per-system outage-probability EWMA
  over observed epoch outcomes, the drifted ``p`` vector fed to the
  heterogeneous (Poisson-binomial) MINLP re-solve;
* :class:`DriftPolicy` — the thresholds and budgets that decide when an
  observation becomes an *action*;
* :func:`p_drift` / :func:`hot_objects` — the detection predicates the
  :class:`~repro.control.operator.ReconfigOperator` evaluates each epoch.

Everything here is deterministic given the observation sequence — no
wall clock, no unseeded randomness — so chaos-campaign replays that
drive the operator stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AvailabilityEstimator", "DriftPolicy", "p_drift", "hot_objects"]


@dataclass(frozen=True)
class DriftPolicy:
    """Thresholds turning telemetry into reconfiguration decisions.

    Attributes
    ----------
    p_rel, p_abs:
        Re-solve when the mean estimated outage probability moved by
        more than ``max(p_abs, p_rel * baseline)`` since the last solve.
        The absolute floor keeps tiny baselines from hair-triggering.
    hot_factor, hot_min_accesses:
        An object is *hot* when its accesses since the last solve exceed
        ``hot_factor`` times the mean over the *other* objects (and at
        least ``hot_min_accesses``) — the flash-crowd detector.
    hot_omega_boost:
        Extra storage-overhead budget granted to hot objects, letting
        the re-solve buy them more parity (availability) than the fleet
        default.
    cooldown_epochs:
        Minimum epochs between reconfiguration passes, so one drifty
        measurement cannot thrash the archive with migrations.
    scrub_every:
        Run a full anti-entropy pass (scrub + repair) every this many
        epochs, in addition to the deficit-triggered heals.  ``0`` (the
        default) disables the periodic pass.
    budget_evals:
        Solve-time budget, in model evaluations, handed to
        :func:`~repro.core.ft_optimizer.warm_start` (``None`` = no cap).
    estimator_alpha:
        EWMA smoothing factor for :class:`AvailabilityEstimator`.
    """

    p_rel: float = 0.5
    p_abs: float = 0.02
    hot_factor: float = 4.0
    hot_min_accesses: int = 8
    hot_omega_boost: float = 0.5
    cooldown_epochs: int = 5
    scrub_every: int = 0
    budget_evals: int | None = None
    estimator_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.p_rel < 0 or self.p_abs < 0:
            raise ValueError("drift thresholds must be non-negative")
        if self.hot_factor <= 0 or self.hot_omega_boost < 0:
            raise ValueError("hot-object parameters must be positive")
        if self.cooldown_epochs < 0 or self.scrub_every < 0:
            raise ValueError("cooldown_epochs/scrub_every must be >= 0")
        if not 0.0 < self.estimator_alpha <= 1.0:
            raise ValueError("estimator_alpha must be in (0, 1]")


class AvailabilityEstimator:
    """Per-system outage-probability estimate from epoch observations.

    Each epoch contributes a 0/1 outage indicator per system; the
    estimate is an EWMA seeded at ``prior`` (the design-time ``p``), so
    a system that never fails decays toward — but never *below* — a
    small floor, and a region in trouble climbs within a few epochs.
    Estimates are clamped to ``[floor, ceil]`` to keep the
    Poisson-binomial re-solve well-conditioned.
    """

    def __init__(
        self,
        n: int,
        *,
        prior: float = 0.01,
        alpha: float = 0.2,
        floor: float = 1e-4,
        ceil: float = 0.9,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one system")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < floor <= ceil < 1.0:
            raise ValueError("need 0 < floor <= ceil < 1")
        self.n = n
        self.alpha = alpha
        self.floor = floor
        self.ceil = ceil
        self._p = [min(max(float(prior), floor), ceil)] * n
        self.epochs_observed = 0

    def observe(self, failed_ids) -> None:
        """Fold one epoch's outage outcome into the estimates."""
        down = set(int(i) for i in failed_ids)
        a = self.alpha
        for i in range(self.n):
            x = 1.0 if i in down else 0.0
            p = self._p[i] + a * (x - self._p[i])
            self._p[i] = min(max(p, self.floor), self.ceil)
        self.epochs_observed += 1

    def probabilities(self) -> tuple[float, ...]:
        """The per-system outage-probability vector (clamped)."""
        return tuple(self._p)

    def mean_p(self) -> float:
        return sum(self._p) / self.n


def p_drift(baseline: float, current: float, policy: DriftPolicy) -> bool:
    """Has the mean outage estimate moved enough to justify a re-solve?"""
    return abs(current - baseline) > max(policy.p_abs, policy.p_rel * baseline)


def hot_objects(
    deltas: dict[str, int], policy: DriftPolicy
) -> list[str]:
    """Objects whose access growth since the last solve marks them hot.

    ``deltas`` maps object name to accesses accumulated since the last
    reconfiguration baseline.  Hotness compares each object against the
    mean of the *others* (comparing against the global mean would make a
    flash crowd on one of two objects mathematically undetectable for
    any factor >= 2).  Sorted for deterministic downstream iteration.
    """
    if len(deltas) < 2:
        return []
    total = sum(deltas.values())
    rest = len(deltas) - 1
    out = []
    for name, d in deltas.items():
        if d < policy.hot_min_accesses:
            continue
        others = (total - d) / rest
        if d > policy.hot_factor * max(others, 1.0):
            out.append(name)
    return sorted(out)
