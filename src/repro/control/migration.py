"""Live re-encoding migration: move an object to a new FT config safely.

When the control plane decides a level's parity count ``m_j`` must
change, the level is re-encoded and re-placed *live*, RapidRAID-style:
readers never see a window in which fewer than ``k_j`` clean fragments
are reachable.  The protocol, per level:

1. **Read** ``k_old`` CRC-verified fragments of the current generation
   and decode the level payload.  The old fragment set is not touched.
2. **Stage** the re-encoded fragment set under a *new generation*
   storage name (``<name>@g<gen+1>``, one fragment per system).  The
   new name collides with nothing; no reader looks at it yet.
3. **Verify** every staged fragment at rest (read-back + CRC) and write
   the new generation's fragment records — still shadow state.
4. **Flip**: one atomic object-record write updates ``ft_config[j]``
   and the level's generation together.  Readers resolve fragment
   locations *through* the object record
   (:meth:`~repro.metadata.catalog.ObjectRecord.level_storage_name`),
   so before the flip they see the intact old generation and after it
   the fully redundant new one — there is no intermediate metadata
   state.
5. **Retire** the old generation (best-effort deletes; a failure here
   leaves garbage, never unavailability) and re-commit the ledger.

Any failure before the flip defers the level: staging is cleaned up
and the old generation remains authoritative — trivially safe.  The
stage step requires *every* system up (full placement or defer), so a
flipped level starts at full ``m_new`` headroom.

The invariant — **at every intermediate step, each level tolerates up
to its current ``m_j`` concurrent outages** — is what
``tests/test_control.py`` proves under injector traces, probing via
:func:`level_recoverable` at each :class:`LiveMigrator` checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chaos.retry import RetryPolicy
from ..ec import ECConfig
from ..formats import crc32, verify
from ..healing.ledger import LedgerEntry
from ..metadata import FragmentRecord, level_storage_name
from ..storage.system import StoredFragment
from ..transfer import TransferRequest, phase_latency

__all__ = [
    "LiveMigrator",
    "MigrationReport",
    "MigrationStep",
    "level_recoverable",
    "safety_breaches",
]

#: Everything a single storage/metadata operation may fail with on the
#: migration path (mirrors the restore pipeline's fetch errors).
_IO_ERRORS = (KeyError, ValueError, OSError, RuntimeError)

#: Checkpoint stages, in order, at which a ``checkpoint(stage, level)``
#: callback fires.  Tests hook these to inject faults mid-migration and
#: probe the safety invariant between protocol steps.
CHECKPOINTS = ("decoded", "staged", "flipped", "retired")


@dataclass
class MigrationStep:
    """Outcome of one level's migration attempt."""

    level: int
    action: str  # "migrated" | "deferred" | "unchanged"
    old_m: int
    new_m: int
    reason: str = ""


@dataclass
class MigrationReport:
    """What a migration pass did, and what it cost on the WAN."""

    object_name: str
    steps: list[MigrationStep] = field(default_factory=list)
    read_bytes: float = 0.0
    written_bytes: float = 0.0
    transfer_latency: float = 0.0

    @property
    def migrated(self) -> int:
        return sum(1 for s in self.steps if s.action == "migrated")

    @property
    def deferred(self) -> int:
        return sum(1 for s in self.steps if s.action == "deferred")

    @property
    def complete(self) -> bool:
        """Every level that needed to move did."""
        return self.deferred == 0

    def to_dict(self) -> dict:
        return {
            "object": self.object_name,
            "steps": [
                {
                    "level": s.level,
                    "action": s.action,
                    "old_m": s.old_m,
                    "new_m": s.new_m,
                    "reason": s.reason,
                }
                for s in self.steps
            ],
            "read_bytes": self.read_bytes,
            "written_bytes": self.written_bytes,
            "transfer_latency": self.transfer_latency,
        }


class LiveMigrator:
    """Executes FT-config changes level by level against a live stack.

    Parameters
    ----------
    rapids:
        The :class:`~repro.core.pipeline.RAPIDS` stack whose cluster,
        catalog, codec and ledger the migration runs against.
    retry_policy:
        Per-operation retry policy (defaults to the stack's).
    """

    def __init__(self, rapids, *, retry_policy: RetryPolicy | None = None) -> None:
        self.rapids = rapids
        self.cluster = rapids.cluster
        self.catalog = rapids.catalog
        self.ledger = rapids.ledger
        self.codec = rapids.codec
        self.retry_policy = retry_policy or rapids.retry_policy
        self._requests: list[TransferRequest] = []

    # -- public ------------------------------------------------------------

    def migrate(
        self,
        name: str,
        new_ms: "list[int] | tuple[int, ...]",
        *,
        checkpoint=None,
    ) -> MigrationReport:
        """Migrate ``name`` toward ``new_ms``, one level at a time.

        Levels whose parity is unchanged are skipped; each changed
        level runs the stage→verify→flip→retire protocol independently
        (coarser levels first — they gate progressive reconstruction).
        A level that cannot currently be migrated safely is *deferred*,
        not forced: the report says so and a later pass retries.

        ``checkpoint(stage, level)`` fires at each :data:`CHECKPOINTS`
        boundary — the seam fault-injection tests use to perturb and
        probe mid-migration state.
        """
        rec = self.catalog.get_object(name)
        new_ms = [int(m) for m in new_ms]
        if len(new_ms) != len(rec.ft_config):
            raise ValueError("new_ms must keep the level count unchanged")
        if any(a <= b for a, b in zip(new_ms, new_ms[1:])):
            raise ValueError(f"new_ms must be strictly decreasing, got {new_ms}")
        if new_ms[0] >= self.cluster.n or new_ms[-1] < 1:
            raise ValueError(f"invalid configuration {new_ms} for n={self.cluster.n}")
        if "procpipe" in rec.extra:
            raise ValueError(
                f"{name!r} was prepared by the tiled process engine; "
                "live re-encoding of per-tile chunk tables is not supported"
            )
        report = MigrationReport(object_name=name)
        self._requests = []
        for j, target in enumerate(new_ms):
            rec = self.catalog.get_object(name)  # re-read: prior level flipped it
            old = int(rec.ft_config[j])
            if target == old:
                report.steps.append(MigrationStep(j, "unchanged", old, target))
                continue
            self._migrate_level(rec, j, target, report, checkpoint)
        if self._requests:
            res = phase_latency(self._requests, self.cluster.bandwidths)
            report.transfer_latency = float(res.makespan)
        return report

    # -- per-level protocol ------------------------------------------------

    def _migrate_level(self, rec, j: int, new_m: int, report, checkpoint) -> None:
        name = rec.name
        old_m = int(rec.ft_config[j])
        gen = rec.generations[j]
        sname_old = level_storage_name(name, gen)
        sname_new = level_storage_name(name, gen + 1)
        n = self.cluster.n

        def defer(reason: str) -> None:
            report.steps.append(
                MigrationStep(j, "deferred", old_m, new_m, reason)
            )

        # Full placement or defer: the flipped level must start at full
        # m_new headroom, which needs one fragment on every system.
        if self.cluster.failed_ids():
            defer(f"systems down: {self.cluster.failed_ids()}")
            return

        # 1. Read k_old clean fragments of the current generation.
        sources = self._read_sources(sname_old, j, n - old_m, report)
        if sources is None:
            defer(f"fewer than k={n - old_m} clean source fragments")
            return
        try:
            payload = self.codec.decode_level(
                config=ECConfig(n, old_m), fragments=sources, level_index=j
            )
        except _IO_ERRORS as exc:
            defer(f"decode failed: {exc!r}")
            return
        self._checkpoint(checkpoint, "decoded", j)

        # 2. Re-encode and stage the new generation (shadow state).
        enc = self.codec.encode_level(payload, new_m, level_index=j)
        blobs = enc.fragment_blobs()
        checksums = [crc32(blob) for blob in blobs]
        staged: list[int] = []
        ok = True
        for idx, blob in enumerate(blobs):
            if not self._write_staged(sname_new, j, idx, blob, checksums[idx], report):
                ok = False
                break
            staged.append(idx)
        if not ok:
            self._cleanup_staged(sname_new, j, staged)
            defer("staging write failed")
            return
        self._checkpoint(checkpoint, "staged", j)

        # 3. Verify every staged fragment at rest, then write the new
        # generation's fragment records — still invisible to readers.
        if not self._verify_staged(sname_new, j, blobs, checksums):
            self._cleanup_staged(sname_new, j, staged)
            defer("staged fragment failed read-back verification")
            return
        try:
            for idx, blob in enumerate(blobs):
                self.catalog.put_fragment(
                    FragmentRecord(
                        sname_new, j, idx, idx, len(blob),
                        checksum=checksums[idx],
                    )
                )
        except _IO_ERRORS as exc:
            self._cleanup_staged(sname_new, j, staged)
            defer(f"shadow metadata write failed: {exc!r}")
            return

        # 4. Flip: one object-record write switches ft_config[j] and the
        # generation together.  Readers go through this record, so the
        # transition is atomic from their point of view.
        gens = rec.generations
        gens[j] = gen + 1
        rec.ft_config[j] = new_m
        rec.extra["generations"] = gens
        try:
            self.catalog.put_object(rec)
        except _IO_ERRORS as exc:
            gens[j] = gen
            rec.ft_config[j] = old_m
            rec.extra["generations"] = gens
            self._cleanup_staged(sname_new, j, staged)
            defer(f"flip write failed: {exc!r}")
            return
        self._checkpoint(checkpoint, "flipped", j)

        # 5. Post-flip: re-commit the ledger for the new generation,
        # then retire the old one.  Both are best-effort — the flipped
        # level is already fully redundant and self-describing.
        try:
            self.ledger.record(
                LedgerEntry(
                    object_name=name,
                    level=j,
                    n=n,
                    m=new_m,
                    checksums=checksums,
                    nbytes=[len(b) for b in blobs],
                    placement=list(range(n)),
                    headroom=new_m,
                    storage_name=sname_new,
                )
            )
        except _IO_ERRORS:
            pass  # the next scrub's rebuild_from_catalog recreates it
        self._retire(sname_old, j, n)
        self._checkpoint(checkpoint, "retired", j)
        report.steps.append(MigrationStep(j, "migrated", old_m, new_m))

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _checkpoint(checkpoint, stage: str, level: int) -> None:
        if checkpoint is not None:
            checkpoint(stage, level)

    def _read_sources(
        self, sname: str, j: int, k: int, report
    ) -> dict[int, np.ndarray] | None:
        """``k`` CRC-verified fragments of the current generation."""
        sources: dict[int, np.ndarray] = {}
        for idx in sorted(self.cluster.locate(sname, j)):
            if len(sources) >= k:
                break
            try:
                expected = self.catalog.get_fragment(sname, j, idx).checksum
            except KeyError:
                expected = 0

            def attempt() -> bytes:
                sf = self.cluster.fetch(sname, j, idx)
                if expected and not verify(sf.payload, expected):
                    raise ValueError(
                        f"fragment {idx} of level {j} fails its checksum"
                    )
                return sf.payload

            out = self.retry_policy.call(attempt, retry_on=_IO_ERRORS)
            if not out.ok:
                continue
            sources[idx] = np.frombuffer(out.value, dtype=np.uint8)
            report.read_bytes += float(len(out.value))
            self._requests.append(
                TransferRequest(idx, float(len(out.value)),
                                tag=("migrate-read", j, idx))
            )
        return sources if len(sources) >= k else None

    def _write_staged(
        self, sname: str, j: int, idx: int, blob: bytes, checksum: int, report
    ) -> bool:
        frag = StoredFragment(sname, j, idx, len(blob), blob, checksum=checksum)
        out = self.retry_policy.call(
            lambda: self.cluster[idx].put(frag), retry_on=_IO_ERRORS
        )
        if out.ok:
            report.written_bytes += float(len(blob))
            self._requests.append(
                TransferRequest(idx, float(len(blob)),
                                tag=("migrate-write", j, idx))
            )
        return out.ok

    def _verify_staged(
        self, sname: str, j: int, blobs: list[bytes], checksums: list[int]
    ) -> bool:
        for idx in range(len(blobs)):
            def attempt() -> bytes:
                sf = self.cluster[idx].get(sname, j, idx)
                if sf.payload is None or not verify(sf.payload, checksums[idx]):
                    raise ValueError(
                        f"staged fragment {idx} of level {j} fails read-back"
                    )
                return sf.payload

            out = self.retry_policy.call(attempt, retry_on=_IO_ERRORS)
            if not out.ok:
                return False
        return True

    def _cleanup_staged(self, sname: str, j: int, staged: list[int]) -> None:
        """Best-effort removal of a failed staging attempt's fragments.

        A fragment stuck on an unreachable system is harmless: the next
        attempt at this generation overwrites it with identical bytes
        (the re-encode is deterministic), and no reader resolves the
        staging name until a flip commits it.
        """
        for idx in staged:
            try:
                system = self.cluster[idx]
                if system.available and system.has(sname, j, idx):
                    system.delete(sname, j, idx)
            except _IO_ERRORS:
                pass
        try:
            for key in self.catalog.store.keys(
                f"frag/{sname}/{j:04d}/".encode()
            ):
                self.catalog.store.delete(key)
        except _IO_ERRORS:
            pass

    def _retire(self, sname: str, j: int, n: int) -> None:
        """Delete the previous generation's fragments and records."""
        for system in self.cluster.systems:
            for idx in range(n):
                try:
                    if system.available and system.has(sname, j, idx):
                        system.delete(sname, j, idx)
                except _IO_ERRORS:
                    pass
        try:
            for key in self.catalog.store.keys(
                f"frag/{sname}/{j:04d}/".encode()
            ):
                self.catalog.store.delete(key)
        except _IO_ERRORS:
            pass


# -- recoverability probes (used by tests and the scenario gate) -----------


def level_recoverable(rapids, name: str, level: int) -> bool:
    """Can ``level`` be decoded right now (>= k reachable fragments of
    the generation the object record points at)?

    A cheap presence probe — no payload reads — used to check the
    migration safety invariant between protocol steps.
    """
    rec = rapids.catalog.get_object(name)
    sname = rec.level_storage_name(level)
    k = rapids.cluster.n - int(rec.ft_config[level])
    return len(rapids.cluster.locate(sname, level)) >= k


def safety_breaches(rapids, name: str) -> list[int]:
    """Levels below their design availability *due to the system itself*.

    A level is breached when it is unrecoverable even though the number
    of concurrent outages is within its design tolerance ``m_j`` — i.e.
    the environment did not exceed the design point, so the loss is
    attributable to reconfiguration/migration, not to fate.  The
    scenario suite requires this list to stay empty at every epoch.
    """
    rec = rapids.catalog.get_object(name)
    down = len(rapids.cluster.failed_ids())
    return [
        j
        for j, m in enumerate(rec.ft_config)
        if down <= int(m) and not level_recoverable(rapids, name, j)
    ]
