"""Deterministic chaos-campaign scenarios proving the control plane.

Each scenario stands up a *real* miniature RAPIDS stack — in-memory
geo-distributed cluster, metadata catalog, durability ledger, erasure
codec — prepares a couple of objects, then drives a
:func:`~repro.sim.run_campaign` whose step hook runs the full control
loop every epoch: sync the cluster to the epoch's outage set, perturb
the environment the scenario's way, serve real restores, step the
:class:`~repro.control.operator.ReconfigOperator`, and probe the
migration safety invariant.

The catalog:

* ``region-loss`` — a three-system region goes dark for twelve epochs
  (a :class:`~repro.storage.failures.MaintenanceSchedule` bridged
  through :meth:`~repro.chaos.FaultPlan.from_schedule`); at-rest damage
  is planted after the region returns so the periodic anti-entropy
  pass has something to heal.
* ``bandwidth-drift`` — no outages; three systems' WAN bandwidth
  collapses to a quarter for a sustained window, then the system goes
  idle, exercising the tracker's staleness decay back toward the prior.
* ``flash-crowd`` — one dataset's access rate explodes; the operator
  detects the hot object, re-solves with a boosted overhead budget, and
  migrates it to a higher-parity configuration live.
* ``correlated`` — region-shared-fate failures
  (:class:`~repro.storage.failures.CorrelatedFailureModel`) push the
  estimated outage probability past the drift threshold.

Everything is derived from the run seed through SHA-256 — no wall
clock, no shared-RNG call-order coupling — so two same-seed runs emit
**byte-identical** trajectory JSON (:func:`scenario_json`), which is
what the determinism tests and the CI gate assert.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..chaos.plan import FaultPlan
from ..core.adaptive import BandwidthTracker
from ..core.pipeline import RAPIDS
from ..metadata import MetadataCatalog
from ..refactor import Refactorer
from ..sim.campaign import CampaignConfig, run_campaign
from ..storage import StorageCluster
from ..storage.failures import CorrelatedFailureModel, MaintenanceSchedule
from ..transfer import paper_bandwidth_profile
from .migration import safety_breaches
from .observer import DriftPolicy
from .operator import ReconfigOperator

__all__ = ["ScenarioSpec", "SCENARIOS", "run_scenario", "scenario_json"]

#: Disables a detector without a dedicated "off" switch.
_NEVER = 10**9


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, fully parameterised chaos campaign."""

    name: str
    title: str
    description: str
    epochs: int
    policy: DriftPolicy
    n: int = 8
    objects: tuple[str, ...] = ("primary", "cold")
    #: Staleness horizon for the scenario's bandwidth tracker (epochs).
    tracker_horizon: float | None = None


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="region-loss",
            title="Region loss with anti-entropy recovery",
            description=(
                "Systems 0-2 (one region) are down for epochs 12-23; "
                "at-rest damage is planted at epoch 28; periodic scrubs "
                "heal it.  Availability drift triggers a warm re-solve."
            ),
            epochs=48,
            policy=DriftPolicy(
                p_rel=1.0, p_abs=0.05, hot_min_accesses=_NEVER,
                cooldown_epochs=8, scrub_every=12, budget_evals=4000,
            ),
        ),
        ScenarioSpec(
            name="bandwidth-drift",
            title="Sustained WAN bandwidth degradation",
            description=(
                "No outages.  Systems 0-2 drop to quarter bandwidth for "
                "epochs 16-31, observed by the tracker; after epoch 32 "
                "the system idles and estimates decay toward the prior."
            ),
            epochs=48,
            policy=DriftPolicy(
                p_rel=1.0, p_abs=0.5, hot_min_accesses=_NEVER,
                cooldown_epochs=8, budget_evals=4000,
            ),
            tracker_horizon=8.0,
        ),
        ScenarioSpec(
            name="flash-crowd",
            title="Flash crowd on one dataset",
            description=(
                "No outages.  The primary object takes four extra "
                "accesses per epoch during epochs 8-31; the operator "
                "marks it hot, re-solves with a boosted overhead "
                "budget, and migrates it live to higher parity."
            ),
            epochs=48,
            policy=DriftPolicy(
                p_rel=1.0, p_abs=0.5, hot_factor=4.0,
                hot_min_accesses=25, hot_omega_boost=0.35,
                cooldown_epochs=8, budget_evals=4000,
            ),
        ),
        ScenarioSpec(
            name="correlated",
            title="Correlated region-shared-fate failures",
            description=(
                "Four two-system regions fail together with probability "
                "0.05 per epoch (plus independent singles at 0.02); the "
                "estimator's drift triggers reconfiguration between "
                "outage bursts."
            ),
            epochs=48,
            policy=DriftPolicy(
                p_rel=1.0, p_abs=0.03, hot_min_accesses=_NEVER,
                cooldown_epochs=8, scrub_every=16, budget_evals=4000,
            ),
        ),
    )
}


def _derive(seed: int, tag: str) -> int:
    """A sub-seed bound to (run seed, purpose) — never shared RNG state."""
    digest = hashlib.sha256(f"{seed}|{tag}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def _field(name: str, seed: int, n: int = 17) -> np.ndarray:
    """A deterministic smooth 3-D field, distinct per (object, seed)."""
    rng = np.random.default_rng(_derive(seed, f"field|{name}"))
    ax = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
    u = np.zeros([n] * 3)
    for k in (1, 2, 4):
        ph = rng.uniform(0, 2 * np.pi, 3)
        u += (
            np.sin(2 * np.pi * k * ax[0] + ph[0])
            * np.cos(2 * np.pi * k * ax[1] + ph[1])
            * np.sin(2 * np.pi * k * ax[2] + ph[2])
            / k
        )
    return u.astype(np.float32)


def _failure_model(spec: ScenarioSpec, seed: int):
    """The scenario's deterministic epoch-outage source."""
    if spec.name == "region-loss":
        schedule = MaintenanceSchedule()
        for sid in (0, 1, 2):
            schedule.add_window(sid, 12, 24)
        return FaultPlan.from_schedule(
            schedule, sites=("system.outage",),
            seed=_derive(seed, "region-loss"),
        )
    if spec.name == "correlated":
        return CorrelatedFailureModel(
            regions=[[0, 1], [2, 3], [4, 5], [6, 7]],
            p_region=0.05,
            p_single=0.02,
            seed=_derive(seed, "correlated"),
        )
    return lambda epoch, n: []  # bandwidth-drift / flash-crowd: no outages


def _env_step(spec: ScenarioSpec, epoch: int, rapids, tracker, base_bw) -> None:
    """Apply the scenario's per-epoch environment perturbation."""
    cluster = rapids.cluster
    if spec.name == "bandwidth-drift":
        degraded = 16 <= epoch < 32
        for sid in (0, 1, 2):
            cluster.systems[sid].bandwidth = float(
                base_bw[sid] * (0.25 if degraded else 1.0)
            )
        if epoch < 32:
            # Active phase: one probe transfer per up system per epoch,
            # so the tracker sees the effective WAN.  After epoch 32 the
            # system idles — only the operator's tick() advances time,
            # and estimates decay toward the prior.
            for sid in cluster.available_ids():
                bw = cluster.systems[sid].bandwidth
                tracker.observe(sid, bw, 1.0)
    elif spec.name == "flash-crowd":
        if 8 <= epoch < 32:
            rapids.catalog.record_access(spec.objects[0], 4)
    elif spec.name == "region-loss" and epoch == 28:
        # Plant at-rest damage (a vanished fragment) for the next
        # periodic anti-entropy pass to find and heal.
        rec = rapids.catalog.get_object(spec.objects[0])
        sname = rec.level_storage_name(0)
        loc = cluster.locate(sname, 0)
        if loc:
            idx = sorted(loc)[0]
            cluster[loc[idx]].delete(sname, 0, idx)


def run_scenario(
    scenario: "str | ScenarioSpec",
    *,
    seed: int = 7,
    epochs: int | None = None,
    breach_epochs: int = 0,
) -> dict:
    """Run one scenario end to end; returns the JSON-safe result.

    ``breach_epochs`` is the gate's tolerance: the run is ``ok`` only if
    no safety breach (a level unrecoverable while the concurrent outage
    count is within its design tolerance ``m_j`` — i.e. damage the
    system did to itself) persists for more than that many consecutive
    epochs.  The default tolerates none.
    """
    spec = SCENARIOS[scenario] if isinstance(scenario, str) else scenario
    epochs = spec.epochs if epochs is None else int(epochs)
    with tempfile.TemporaryDirectory() as td:
        base_bw = paper_bandwidth_profile(spec.n)
        cluster = StorageCluster(base_bw.copy())
        catalog = MetadataCatalog(Path(td) / "meta")
        rapids = RAPIDS(
            cluster, catalog, refactorer=Refactorer(4, workers=1),
            omega=0.25, ec_workers=1,
        )
        for obj in spec.objects:
            rapids.prepare(obj, _field(obj, seed))
        total_original = sum(
            int(np.prod(catalog.get_object(o).shape))
            * np.dtype(catalog.get_object(o).dtype).itemsize
            for o in spec.objects
        )
        tracker = BandwidthTracker(
            catalog, base_bw.copy(), staleness_horizon=spec.tracker_horizon
        )
        operator = ReconfigOperator(rapids, policy=spec.policy, tracker=tracker)
        primary = spec.objects[0]
        initial_ms = {
            obj: [int(m) for m in catalog.get_object(obj).ft_config]
            for obj in spec.objects
        }
        rec0 = catalog.get_object(primary)
        config = CampaignConfig(
            n=spec.n, p_fail=0.05, p_repair=0.5,
            ms=tuple(int(m) for m in rec0.ft_config),
            errors=tuple(float(e) for e in rec0.level_errors),
            epochs=epochs, requests_per_epoch=1,
        )
        rows: list[dict] = []
        breach_at: list[int] = []

        def hook(epoch: int, failed: list[int], ms) -> tuple[int, ...] | None:
            cluster.restore_all()
            cluster.fail(failed)
            _env_step(spec, epoch, rapids, tracker, base_bw)
            served: dict[str, int] = {}
            for i, obj in enumerate(spec.objects):
                if i == 0 or epoch % 4 == 0:
                    rep = rapids.restore(
                        obj, strategy="naive", degrade=True, record_access=True
                    )
                    served[obj] = int(rep.levels_used)
            ev = operator.step(epoch, failed)
            breaches = {
                obj: b
                for obj in spec.objects
                if (b := safety_breaches(rapids, obj))
            }
            if breaches:
                breach_at.append(int(epoch))
            rows.append({
                "epoch": int(epoch),
                "failed": [int(s) for s in failed],
                "action": ev["action"],
                "healed": int(ev["healed"]),
                "migrations": len(ev["migrations"]),
                "ms": {
                    obj: [int(m) for m in catalog.get_object(obj).ft_config]
                    for obj in spec.objects
                },
                "served_levels": served,
                "overhead": float(
                    cluster.total_stored_bytes() / total_original
                ),
                "tracker_error": float(
                    tracker.estimation_error(cluster.bandwidths)
                ),
                "breaches": breaches,
            })
            cur = tuple(int(m) for m in catalog.get_object(primary).ft_config)
            return cur if cur != tuple(ms) else None

        stats = run_campaign(
            config, seed=seed,
            failure_model=_failure_model(spec, seed),
            step_hook=hook,
        )
        objects = {
            obj: {
                "initial_ms": initial_ms[obj],
                "final_ms": [
                    int(m) for m in catalog.get_object(obj).ft_config
                ],
                "level_errors": [
                    float(e) for e in catalog.get_object(obj).level_errors
                ],
            }
            for obj in spec.objects
        }
        catalog.close()
    longest = _longest_run(breach_at)
    return {
        "scenario": spec.name,
        "title": spec.title,
        "seed": int(seed),
        "epochs": int(epochs),
        "n": int(spec.n),
        "objects": objects,
        "campaign": {
            "requests": int(stats.requests),
            "availability": float(stats.availability),
            "mean_error": float(stats.mean_error),
            "full_accuracy_fraction": float(stats.full_accuracy_fraction),
            "max_concurrent_failures": int(stats.max_concurrent_failures),
        },
        "trajectory": rows,
        "operator_events": operator.events,
        "breach_epochs": breach_at,
        "max_breach_run": longest,
        "ok": longest <= int(breach_epochs),
    }


def _longest_run(epochs: list[int]) -> int:
    """Length of the longest run of consecutive integers."""
    longest = run = 0
    prev: int | None = None
    for e in epochs:
        run = run + 1 if prev is not None and e == prev + 1 else 1
        longest = max(longest, run)
        prev = e
    return longest


def scenario_json(result: dict) -> str:
    """Canonical artifact text: key-sorted, indented, newline-terminated.

    Contains no wall-clock values, filesystem paths, or other
    run-environment residue, so two same-seed runs produce
    byte-identical artifacts — the determinism contract the scenario
    tests and the CI gate verify.
    """
    return json.dumps(result, sort_keys=True, indent=2) + "\n"
