"""The reconfiguration operator: observation -> re-solve -> live migration.

:class:`ReconfigOperator` closes the control loop the paper leaves
open: RAPIDS solves the FT MINLP once at preparation time, but the
parameters it solved under drift.  Each epoch the operator

1. **observes** — folds the epoch's outage outcome into the
   :class:`~repro.control.observer.AvailabilityEstimator`, advances the
   :class:`~repro.core.adaptive.BandwidthTracker` staleness clock, and
   reads per-object access counters from the catalog;
2. **decides** — compares the estimates against the baseline captured
   at the last solve, under the :class:`~repro.control.observer.DriftPolicy`
   thresholds (with a cooldown so migrations cannot thrash);
3. **re-solves** — :func:`~repro.core.ft_optimizer.warm_start` seeded
   from each object's incumbent ``ft_config``, under an
   evaluation-count budget (never worse than the repaired incumbent —
   the property ``tests/test_control.py`` proves);
4. **acts** — changed levels migrate live through
   :class:`~repro.control.migration.LiveMigrator` (deferred levels are
   retried every epoch until they land), and known durability deficits
   trigger an anti-entropy heal pass.

Every step is deterministic given the observation sequence, so a
seeded chaos campaign driving the operator replays byte-identically.
"""

from __future__ import annotations

import numpy as np

from ..core.ft_optimizer import FTProblem, FTSolution, warm_start
from ..healing.repair import scrub_and_repair
from .migration import LiveMigrator
from .observer import AvailabilityEstimator, DriftPolicy, hot_objects, p_drift

__all__ = ["ReconfigOperator"]


class ReconfigOperator:
    """Drives online reconfiguration of a live RAPIDS stack.

    Parameters
    ----------
    rapids:
        The :class:`~repro.core.pipeline.RAPIDS` stack to operate.
    policy:
        Drift thresholds and budgets (default :class:`DriftPolicy`).
    tracker:
        Optional :class:`~repro.core.adaptive.BandwidthTracker`; the
        operator advances its staleness clock once per epoch so idle
        systems' WAN estimates decay toward the prior.
    """

    def __init__(self, rapids, *, policy: DriftPolicy | None = None,
                 tracker=None) -> None:
        self.rapids = rapids
        self.policy = policy or DriftPolicy()
        self.tracker = tracker
        self.migrator = LiveMigrator(rapids)
        prior = float(np.mean(rapids.p))
        self.estimator = AvailabilityEstimator(
            rapids.cluster.n, prior=prior, alpha=self.policy.estimator_alpha
        )
        #: Mean estimated p at the last solve (drift is measured from here).
        self._baseline_p = prior
        #: Per-object access counts at the last solve.
        self._baseline_access: dict[str, int] = dict(
            rapids.catalog.access_counts()
        )
        self._last_reconfig: int | None = None
        #: Levels that deferred during migration: name -> target config.
        self.pending: dict[str, list[int]] = {}
        #: Chronological log of everything the operator did (JSON-safe).
        self.events: list[dict] = []

    # -- sensors -----------------------------------------------------------

    def observe_epoch(self, failed_ids) -> None:
        """Fold one epoch's outage outcome into the estimators."""
        self.estimator.observe(failed_ids)
        if self.tracker is not None:
            self.tracker.tick()

    def access_deltas(self) -> dict[str, int]:
        """Per-object accesses accumulated since the last solve."""
        counts = self.rapids.catalog.access_counts()
        names = self.rapids.catalog.list_objects()
        return {
            name: counts.get(name, 0) - self._baseline_access.get(name, 0)
            for name in names
        }

    def drift_detected(self) -> tuple[bool, list[str]]:
        """(availability drift?, hot object names)."""
        drifted = p_drift(
            self._baseline_p, self.estimator.mean_p(), self.policy
        )
        hot = hot_objects(self.access_deltas(), self.policy)
        return drifted, hot

    # -- planning ----------------------------------------------------------

    def plan(self, name: str, *, omega: float | None = None) -> FTSolution:
        """Warm-started re-solve of one object's FT configuration.

        Seeds from the incumbent ``ft_config``; uses the estimator's
        per-system probability vector (the heterogeneous
        Poisson-binomial model) and the policy's evaluation budget.
        """
        rec = self.rapids.catalog.get_object(name)
        original = float(
            int(np.prod(rec.shape)) * np.dtype(rec.dtype).itemsize
        )
        problem = FTProblem(
            n=rec.n_systems,
            p=self.estimator.probabilities(),
            sizes=tuple(float(s) for s in rec.level_sizes),
            errors=tuple(float(e) for e in rec.level_errors),
            original_size=original,
            omega=self.rapids.omega if omega is None else omega,
        )
        return warm_start(
            problem, rec.ft_config, budget_evals=self.policy.budget_evals
        )

    # -- the control loop --------------------------------------------------

    def step(self, epoch: int, failed_ids=()) -> dict:
        """Run one control-loop iteration; returns a JSON-safe event.

        Call once per epoch, after the epoch's outages are known.  The
        operator only *stages and flips* while migrations can complete
        safely (the migrator defers otherwise), so calling it mid-outage
        is always safe — that is the point.
        """
        self.observe_epoch(failed_ids)
        event: dict = {"epoch": int(epoch), "action": "idle",
                       "migrations": [], "healed": 0}

        # Retry deferred migrations first: their solve already happened.
        self._run_pending(event)

        # Heal before considering reconfiguration — the migrator needs
        # readable source levels.  Runs on known deficits, and on the
        # policy's periodic anti-entropy cadence (which also *finds*
        # silent damage the ledger does not know about yet).
        scrub_due = (
            self.policy.scrub_every > 0
            and epoch > 0
            and epoch % self.policy.scrub_every == 0
        )
        if scrub_due or self.rapids.ledger.deficits():
            _, rep = scrub_and_repair(
                self.rapids.cluster, self.rapids.catalog,
                ledger=self.rapids.ledger,
            )
            event["healed"] = rep.repaired if rep is not None else 0
            if event["healed"]:
                event["action"] = "heal"

        drifted, hot = self.drift_detected()
        in_cooldown = (
            self._last_reconfig is not None
            and epoch - self._last_reconfig < self.policy.cooldown_epochs
        )
        if (not drifted and not hot) or in_cooldown:
            if (drifted or hot) and in_cooldown:
                event["action"] = "cooldown"
            self.events.append(event)
            return event

        event["action"] = "reconfigure"
        event["drift"] = {
            "baseline_p": self._baseline_p,
            "current_p": self.estimator.mean_p(),
            "hot": hot,
        }
        for name in self.rapids.catalog.list_objects():
            rec = self.rapids.catalog.get_object(name)
            if "procpipe" in rec.extra:
                continue  # tiled objects are not live-migratable
            boost = self.policy.hot_omega_boost if name in hot else 0.0
            sol = self.plan(name, omega=self.rapids.omega + boost)
            entry = {
                "object": name,
                "origin": sol.origin,
                "evaluations": sol.evaluations,
                "from": list(rec.ft_config),
                "to": list(sol.ms),
            }
            if sol.ms != list(rec.ft_config):
                report = self.migrator.migrate(name, sol.ms)
                entry["migrated"] = report.migrated
                entry["deferred"] = report.deferred
                if not report.complete:
                    self.pending[name] = list(sol.ms)
            event["migrations"].append(entry)
        # Reset the drift baseline whether or not any config changed:
        # the decision was re-made under current parameters.
        self._baseline_p = self.estimator.mean_p()
        self._baseline_access = dict(self.rapids.catalog.access_counts())
        self._last_reconfig = int(epoch)
        self.events.append(event)
        return event

    def _run_pending(self, event: dict) -> None:
        """Retry every deferred migration; drop the ones that complete."""
        for name in sorted(self.pending):
            target = self.pending[name]
            rec = self.rapids.catalog.get_object(name)
            if list(rec.ft_config) == target:
                del self.pending[name]
                continue
            report = self.migrator.migrate(name, target)
            event["migrations"].append({
                "object": name,
                "origin": "pending",
                "from": list(rec.ft_config),
                "to": list(target),
                "migrated": report.migrated,
                "deferred": report.deferred,
            })
            if report.complete:
                del self.pending[name]
                event["action"] = "migrate-pending"
