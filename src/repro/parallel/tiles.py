"""Multi-axis tiled domain decomposition.

Axis-0 blocks (``partition.py``) match the paper's per-core weak-scaling
layout, but visualization and analysis regions of interest are boxes in
*all* dimensions.  Tiling splits an nD array into a grid of nD tiles so
an ROI touches only the tiles its bounding box intersects — in 3-D, a
small box reads O(box volume) instead of O(slab volume).

:class:`TileGrid` owns the geometry (tile bounds per axis); the
refactor/reconstruct helpers wrap a :class:`~repro.refactor.Refactorer`
over the tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from ..refactor import RefactoredObject, Refactorer
from .threads import thread_map

__all__ = [
    "TileGrid",
    "axis0_bounds",
    "tile_refactor",
    "tile_reconstruct",
    "tile_reconstruct_roi",
]


def axis0_bounds(extent: int, num_tiles: int) -> list[tuple[int, int]]:
    """Near-equal contiguous ``(lo, hi)`` spans covering ``range(extent)``.

    The one-axis special case of :meth:`TileGrid.regular` — identical
    clamping (every tile keeps >= 2 planes) and the same ``linspace``
    cut points as :func:`repro.parallel.partition.split_blocks`, so the
    process pipeline's tiles line up byte-for-byte with the block
    decompositions used elsewhere.
    """
    if extent < 1:
        raise ValueError("extent must be >= 1")
    if num_tiles < 1:
        raise ValueError("num_tiles must be >= 1")
    num_tiles = min(num_tiles, max(1, extent // 2))
    cuts = np.linspace(0, extent, num_tiles + 1).astype(int)
    return [(int(cuts[i]), int(cuts[i + 1])) for i in range(num_tiles)]


@dataclass(frozen=True)
class TileGrid:
    """The geometry of an nD tile decomposition.

    ``bounds[d]`` is the monotone list of cut points along axis d
    (including 0 and the axis length), so axis d has
    ``len(bounds[d]) - 1`` tiles.
    """

    shape: tuple[int, ...]
    bounds: tuple[tuple[int, ...], ...]

    @classmethod
    def regular(cls, shape: tuple[int, ...], tiles_per_axis) -> "TileGrid":
        """A near-uniform grid with ``tiles_per_axis[d]`` tiles on axis d.

        Tile extents are clamped so every tile keeps >= 2 points (the
        refactorer's minimum).
        """
        if isinstance(tiles_per_axis, int):
            tiles_per_axis = (tiles_per_axis,) * len(shape)
        if len(tiles_per_axis) != len(shape):
            raise ValueError("tiles_per_axis must match dimensionality")
        bounds = []
        for n, t in zip(shape, tiles_per_axis):
            if t < 1:
                raise ValueError("need at least one tile per axis")
            t = min(t, max(1, n // 2))
            bounds.append(tuple(np.linspace(0, n, t + 1).astype(int).tolist()))
        return cls(tuple(shape), tuple(bounds))

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return tuple(len(b) - 1 for b in self.bounds)

    @property
    def num_tiles(self) -> int:
        return int(np.prod(self.grid_shape))

    def tile_indices(self):
        """Iterate all tile grid coordinates."""
        return product(*(range(len(b) - 1) for b in self.bounds))

    def tile_box(self, idx: tuple[int, ...]) -> tuple[slice, ...]:
        """Slices of the tile at grid coordinate ``idx``."""
        return tuple(
            slice(self.bounds[d][i], self.bounds[d][i + 1])
            for d, i in enumerate(idx)
        )

    def tiles_intersecting(
        self, roi: tuple[tuple[int, int], ...]
    ) -> list[tuple[int, ...]]:
        """Grid coordinates of tiles overlapping the (start, stop) box."""
        if len(roi) != len(self.shape):
            raise ValueError("roi must match dimensionality")
        for (lo, hi), n in zip(roi, self.shape):
            if not 0 <= lo < hi <= n:
                raise ValueError(f"roi {roi} out of range for shape {self.shape}")
        per_axis = []
        for d, (lo, hi) in enumerate(roi):
            b = self.bounds[d]
            idx = [
                i for i in range(len(b) - 1) if b[i] < hi and b[i + 1] > lo
            ]
            per_axis.append(idx)
        return list(product(*per_axis))


def tile_refactor(
    data: np.ndarray,
    grid: TileGrid,
    *,
    refactorer: Refactorer | None = None,
    workers: int | None = None,
) -> dict[tuple[int, ...], RefactoredObject]:
    """Refactor every tile independently; returns tile-id -> object.

    ``workers`` fans the (independent) tile refactors over a thread
    pool; each tile's object is bit-identical to the serial result.
    """
    if tuple(data.shape) != grid.shape:
        raise ValueError(f"data shape {data.shape} != grid shape {grid.shape}")
    refactorer = refactorer or Refactorer(4, num_planes=24)
    ids = list(grid.tile_indices())

    def _one(idx: tuple[int, ...]) -> RefactoredObject:
        return refactorer.refactor(
            np.ascontiguousarray(data[grid.tile_box(idx)]),
            measure_errors=False,
        )

    return dict(zip(ids, thread_map(_one, ids, workers=workers)))


def tile_reconstruct(
    tiles: dict[tuple[int, ...], RefactoredObject],
    grid: TileGrid,
    *,
    upto: int | None = None,
    refactorer: Refactorer | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Reassemble the full array from its tiles.

    ``workers`` fans tile reconstructions over a thread pool; each tile
    writes a disjoint box of the output, so the result is independent of
    the worker count.
    """
    refactorer = refactorer or Refactorer(4)
    first = next(iter(tiles.values()))
    out = np.empty(grid.shape, dtype=first.dtype)

    def _one(idx: tuple[int, ...]) -> None:
        # rapidslint: disable-next=RPD103 -- each tile fills a disjoint box of out, vouched via allow_shared_writes
        out[grid.tile_box(idx)] = refactorer.reconstruct(tiles[idx], upto=upto)

    thread_map(
        _one, list(grid.tile_indices()), workers=workers,
        allow_shared_writes=("out",),
    )
    return out


def tile_reconstruct_roi(
    tiles: dict[tuple[int, ...], RefactoredObject],
    grid: TileGrid,
    roi: tuple[tuple[int, int], ...],
    *,
    upto: int | None = None,
    refactorer: Refactorer | None = None,
    workers: int | None = None,
) -> tuple[np.ndarray, int]:
    """Reconstruct only the ROI box; returns (data, tiles_touched).

    ``workers`` fans the touched tiles over a thread pool; the boxes
    written are pairwise disjoint, so the result is independent of the
    worker count.
    """
    refactorer = refactorer or Refactorer(4)
    hit = grid.tiles_intersecting(roi)
    first = next(iter(tiles.values()))
    shape = tuple(hi - lo for lo, hi in roi)
    out = np.empty(shape, dtype=first.dtype)

    def _one(idx: tuple[int, ...]) -> None:
        block = refactorer.reconstruct(tiles[idx], upto=upto)
        box = grid.tile_box(idx)
        src = []
        dst = []
        for d, ((lo, hi), s) in enumerate(zip(roi, box)):
            a = max(lo, s.start)
            b = min(hi, s.stop)
            src.append(slice(a - s.start, b - s.start))
            dst.append(slice(a - lo, b - lo))
        # rapidslint: disable-next=RPD103 -- ROI boxes of distinct tiles are disjoint, vouched via allow_shared_writes
        out[tuple(dst)] = block[tuple(src)]

    thread_map(_one, hit, workers=workers, allow_shared_writes=("out",))
    return out, len(hit)
