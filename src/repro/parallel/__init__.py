"""Parallel execution: block-parallel refactoring on local cores, the
calibrated cluster-scaling model, and the GPU batched backend."""

from .executor import ParallelRefactorer, ParallelResult
from .gpu import K80_MODEL, GPUDeviceModel, batched_decompose, batched_recompose
from .partition import block_shape_for, join_blocks, split_blocks
from .procpipe import (
    AUTO_PROCESS_THRESHOLD,
    SharedArena,
    TileSource,
    prepare_tiled,
    reconstruct_tiled,
    resolve_mode,
)
from .streaming import (
    stream_reconstruct,
    stream_reconstruct_region,
    stream_refactor,
)
from .threads import default_workers, thread_map
from .tiles import (
    TileGrid,
    axis0_bounds,
    tile_reconstruct,
    tile_reconstruct_roi,
    tile_refactor,
)
from .scaling import (
    ALPINE_FS,
    ClusterScalingModel,
    OperationRates,
    andes_calibrated_rates,
    measure_rate,
)

__all__ = [
    "ParallelRefactorer",
    "ParallelResult",
    "thread_map",
    "default_workers",
    "split_blocks",
    "join_blocks",
    "block_shape_for",
    "ClusterScalingModel",
    "OperationRates",
    "measure_rate",
    "andes_calibrated_rates",
    "ALPINE_FS",
    "batched_decompose",
    "batched_recompose",
    "stream_refactor",
    "stream_reconstruct",
    "stream_reconstruct_region",
    "TileGrid",
    "tile_refactor",
    "tile_reconstruct",
    "tile_reconstruct_roi",
    "GPUDeviceModel",
    "K80_MODEL",
    "AUTO_PROCESS_THRESHOLD",
    "SharedArena",
    "TileSource",
    "axis0_bounds",
    "prepare_tiled",
    "reconstruct_tiled",
    "resolve_mode",
]
