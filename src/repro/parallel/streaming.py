"""Out-of-core streaming refactoring.

Paper-scale objects (terabytes) never fit in memory; the weak-scaling
structure of §5.5.1 — independent per-core blocks — also solves the
memory problem: stream blocks from a memory-mapped file, refactor each,
and write its archive immediately.  Peak memory is one block plus its
encoding, regardless of total object size.

The on-disk layout is one single-file archive per block plus an index::

    outdir/
      index.json
      block-0000.rdc
      block-0001.rdc
      ...

Restores stream the other way, and regions of interest touch only the
blocks they intersect.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..refactor import Refactorer
from ..refactor.serialization import load_archive, save_archive
from .partition import split_blocks

__all__ = [
    "stream_refactor",
    "stream_reconstruct",
    "stream_reconstruct_region",
    "write_index",
]


def write_index(outdir: Path, index: dict, *, injector=None) -> None:
    """Durably publish ``index.json``: write-temp, fsync, atomic rename.

    The index is the directory's commit record — block archives without
    it are unreachable — so it must never be observable half-written.
    The temp file is fsynced before the rename (data before name) and
    the rename is atomic on POSIX, so a crash leaves either the old
    index or the new one, never a torn mix.

    ``injector`` is the ``streaming.index`` chaos seam: ``error`` faults
    the publish before anything is written; ``torn`` leaves a truncated
    *temp* file behind and crashes before the rename — exactly the state
    an interrupted publish leaves, which readers never observe because
    ``index.json`` itself was not replaced.
    """
    spec = None
    if injector is not None:
        spec = injector.check(
            "streaming.index", handled=("torn",), outdir=str(outdir)
        )
    blob = json.dumps(index).encode()
    tmp = outdir / "index.json.tmp"
    with open(tmp, "wb") as fh:
        if spec is not None:
            from ..chaos import InjectedFault

            keep = min(len(blob) - 1, int(len(blob) * min(spec.magnitude, 1.0)))
            fh.write(blob[: max(0, keep)])
            fh.flush()
            os.fsync(fh.fileno())
            raise InjectedFault(
                "streaming.index", "torn", {"outdir": str(outdir)}
            )
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, outdir / "index.json")


def stream_refactor(
    source: np.ndarray | str | Path,
    outdir: str | Path,
    *,
    block_planes: int = 64,
    refactorer: Refactorer | None = None,
    injector=None,
) -> dict:
    """Refactor a large array (or ``.npy`` file) block by block.

    ``source`` may be an in-memory array or a path to a ``.npy`` file,
    which is memory-mapped so blocks are read lazily.  ``block_planes``
    bounds each block's extent along axis 0.  Returns the index record
    (also published durably to ``outdir/index.json`` via
    :func:`write_index`; ``injector`` is passed through to its
    ``streaming.index`` chaos seam).
    """
    if block_planes < 2:
        raise ValueError("block_planes must be >= 2")
    if isinstance(source, (str, Path)):
        data = np.load(source, mmap_mode="r")
    else:
        data = np.asarray(source)
    if data.ndim < 1 or data.shape[0] < 2:
        raise ValueError("need at least 2 planes along axis 0")
    refactorer = refactorer or Refactorer(4, num_planes=24)
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    num_blocks = max(1, -(-data.shape[0] // block_planes))
    bounds = np.linspace(0, data.shape[0], num_blocks + 1).astype(int)
    blocks_meta = []
    for b in range(num_blocks):
        lo, hi = int(bounds[b]), int(bounds[b + 1])
        block = np.ascontiguousarray(data[lo:hi])
        obj = refactorer.refactor(block, measure_errors=False)
        save_archive(obj, outdir / f"block-{b:04d}.rdc")
        blocks_meta.append({"start": lo, "stop": hi})
    index = {
        "shape": list(data.shape),
        "dtype": str(data.dtype),
        "num_blocks": num_blocks,
        "blocks": blocks_meta,
    }
    write_index(outdir, index, injector=injector)
    return index


def _load_index(indir: Path) -> dict:
    path = indir / "index.json"
    if not path.exists():
        raise FileNotFoundError(f"no streaming index at {indir}")
    return json.loads(path.read_text())


def stream_reconstruct(
    indir: str | Path,
    *,
    upto: int | None = None,
    refactorer: Refactorer | None = None,
    injector=None,
) -> np.ndarray:
    """Reassemble the full array from a streamed directory.

    ``injector`` is the ``streaming.read`` chaos seam, consulted before
    the index and block archives are touched.
    """
    indir = Path(indir)
    if injector is not None:
        injector.check("streaming.read", indir=str(indir))
    index = _load_index(indir)
    refactorer = refactorer or Refactorer(4)
    out = np.empty(tuple(index["shape"]), dtype=index["dtype"])
    for b, meta in enumerate(index["blocks"]):
        obj = load_archive(indir / f"block-{b:04d}.rdc", upto=upto)
        out[meta["start"] : meta["stop"]] = refactorer.reconstruct(obj)
    return out


def stream_reconstruct_region(
    indir: str | Path,
    start: int,
    stop: int,
    *,
    upto: int | None = None,
    refactorer: Refactorer | None = None,
    injector=None,
) -> np.ndarray:
    """Reconstruct only the leading-axis slice [start, stop).

    Touches only the block archives intersecting the region — the
    out-of-core form of adaptable retrieval.  ``injector`` is the
    ``streaming.read`` chaos seam.
    """
    indir = Path(indir)
    if injector is not None:
        injector.check("streaming.read", indir=str(indir))
    index = _load_index(indir)
    total = index["shape"][0]
    if not 0 <= start < stop <= total:
        raise ValueError(f"region [{start}, {stop}) out of range [0, {total})")
    refactorer = refactorer or Refactorer(4)
    shape = (stop - start,) + tuple(index["shape"][1:])
    out = np.empty(shape, dtype=index["dtype"])
    for b, meta in enumerate(index["blocks"]):
        if meta["stop"] <= start or meta["start"] >= stop:
            continue
        obj = load_archive(indir / f"block-{b:04d}.rdc", upto=upto)
        block = refactorer.reconstruct(obj)
        lo = max(start, meta["start"])
        hi = min(stop, meta["stop"])
        out[lo - start : hi - start] = block[lo - meta["start"] : hi - meta["start"]]
    return out
