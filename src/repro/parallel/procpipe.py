"""Process-parallel streaming prepare/restore with shared-memory transport.

The thread-mode pipeline overlaps only the GIL-releasing segments; the
pure-Python glue of refactor -> bitplane encode -> EC serialises on the
GIL.  This engine decomposes ``RAPIDS.prepare`` and ``RAPIDS.restore``
into overlapping stages scheduled per (level, tile) work item across a
``ProcessPoolExecutor``:

prepare::

    tile read -> [pool] multilevel transform/quantise + bitplane encode
              -> [parent] per-level EC encode -> fragment spool
              -> placement + (simulated) WAN distribution

restore::

    gather -> [parent] per-(level, tile) EC decode
           -> [pool] prefix reconstruct -> shared output array

Three properties the engine maintains:

* **No pickling of bulk data on the hot path.**  Tile inputs, encoded
  component payloads, and reconstructed tile outputs travel through
  ``multiprocessing.shared_memory`` segments managed by a small
  ref-counted :class:`SharedArena` (parent-owned: the parent creates and
  unlinks every segment; workers only attach).  Only scalar metadata
  (sizes, bounds, level plans) crosses the pool as pickles, with a rare
  fallback when a tile's payloads exceed their pre-sized segment.
* **Bounded peak RSS.**  A sliding window of at most ``max_inflight``
  tiles is outstanding at any moment — the bounded inter-stage queue
  that provides backpressure — so peak memory is
  O(``max_inflight`` x tile), not O(dataset).  Inputs can stream from a
  ``.npy`` file via :class:`TileSource` (seek + ``readinto``, no mmap of
  the whole object), and encoded fragments spool to disk per
  (level, fragment) with a running CRC so placement reads back one
  fragment at a time.
* **Bit-identical output.**  Tiling is deterministic
  (:func:`repro.parallel.tiles.axis0_bounds`), the fault-tolerance
  configuration is solved from the *profile tile* (tile 0's exact
  serialised sizes scaled by the tile count — available before any other
  tile exists, identical in every mode), and the refactor kernels are
  worker-count invariant — so ``processes=N``, ``processes=1`` and the
  inline path store the same bytes.

Archival completion: EC encode of chunk (tile t, level j) overlaps the
*simulated* WAN shipping of previously encoded chunks.  The engine
records a (ready time, chunk size) event per encoded chunk and
:func:`repro.transfer.pipelined.pipelined_archival` folds them into a
per-destination FIFO schedule, so completion approaches
max(compute, transfer) instead of their sum.

With a chaos injector attached the engine runs inline (no pools), the
same policy as ``RAPIDS._decode_prefix``: fault-plan occurrence windows
see one deterministic operation order and the injector is never
consulted from worker processes.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from ..ec import ECConfig
from ..formats import crc32, write_fragment_file
from ..metadata import FragmentRecord, ObjectRecord
from ..refactor import Refactorer
from ..refactor.grid import LevelPlan
from ..refactor.refactorer import refactor_block, reconstruct_block
from ..storage.system import StoredFragment
from .threads import default_workers, thread_map
from .tiles import axis0_bounds

__all__ = [
    "AUTO_PROCESS_THRESHOLD",
    "DEFAULT_TILE_BYTES",
    "SharedArena",
    "TileSource",
    "payload_capacity",
    "prepare_tiled",
    "decode_tiled",
    "reconstruct_tiled",
    "resolve_mode",
    "resolve_tiles",
]

#: Objects at least this large default to process parallelism when the
#: caller passes ``parallelism=None``; below it the thread path wins
#: (pool startup + shared-memory transport cost more than they save).
AUTO_PROCESS_THRESHOLD = 32 * 2**20

#: Target tile size when ``tile_planes`` is not given.  Around 8 MiB the
#: per-tile transform/quantise working set stays cache-resident, which
#: is where the tiled pipeline's speedup comes from even before the
#: process overlap.
DEFAULT_TILE_BYTES = 8 * 2**20


def payload_capacity(tile_nbytes: int) -> int:
    """Shared-memory capacity pre-leased for one tile's component payloads.

    Encoded components of incompressible data can exceed the raw tile
    size (raw-storage plane markers, frame headers, sign planes), so the
    segment carries a 25% + 64 KiB margin.  A tile that still overflows
    falls back to pickled payload transport — correct, just slower.
    """
    return tile_nbytes + tile_nbytes // 4 + (1 << 16)


def resolve_mode(parallelism: str | None, nbytes: int) -> str:
    """Resolve a ``parallelism`` knob to ``"process"|"thread"|"none"``."""
    if parallelism in ("process", "thread", "none"):
        return parallelism
    if parallelism not in (None, "auto"):
        raise ValueError(
            f"parallelism must be one of 'process', 'thread', 'none', "
            f"'auto' or None, got {parallelism!r}"
        )
    return "process" if nbytes >= AUTO_PROCESS_THRESHOLD else "thread"


# -- shared-memory arena -------------------------------------------------


class SharedArena:
    """Parent-owned pool of ref-counted shared-memory segments.

    The parent process is the single owner: it creates (leases) every
    segment and unlinks it when its refcount drops to zero.  Workers
    only ever attach by name, so a worker crash can never leak a segment
    — :meth:`close` (run by the context manager even on error paths)
    unlinks everything still live.  ``created``/``peak_bytes`` feed the
    leak assertions in the tests and the RSS accounting in the bench.
    """

    def __init__(self) -> None:
        self._live: dict[str, list] = {}  # name -> [shm, refcount]
        self.created = 0
        self.active_bytes = 0
        self.peak_bytes = 0

    def lease(self, nbytes: int) -> shared_memory.SharedMemory:
        """Create a segment with refcount 1 and return it."""
        shm = shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)))
        self._live[shm.name] = [shm, 1]
        self.created += 1
        self.active_bytes += shm.size
        self.peak_bytes = max(self.peak_bytes, self.active_bytes)
        return shm

    def get(self, name: str) -> shared_memory.SharedMemory:
        return self._live[name][0]

    def retain(self, name: str) -> None:
        self._live[name][1] += 1

    def release(self, name: str) -> None:
        """Drop one reference; unlink the segment at zero."""
        entry = self._live.get(name)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            self._unlink(name)

    def _unlink(self, name: str) -> None:
        shm, _ = self._live.pop(name)
        self.active_bytes -= shm.size
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass  # already gone (e.g. external cleanup); nothing leaks

    @property
    def live_names(self) -> list[str]:
        return sorted(self._live)

    def close(self) -> None:
        """Unlink every remaining segment (crash-safe teardown)."""
        for name in list(self._live):
            self._unlink(name)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach that leaves ownership with the parent.

    On POSIX Pythons before 3.13, attaching registers the segment with
    the resource tracker exactly like creating it does.  Pool workers
    inherit the *parent's* tracker process (both fork and spawn pass the
    tracker fd down), so that duplicate registration is a set no-op —
    but an ``unregister`` here would strip the parent's own registration
    and make the parent's later ``unlink`` race the tracker.  Attach
    plainly and leave the bookkeeping to the parent's
    :class:`SharedArena`, the sole owner.
    """
    return shared_memory.SharedMemory(name=name)


# -- tile IO -------------------------------------------------------------


class TileSource:
    """Axis-0 tile reader over an in-memory array or an ``.npy`` file.

    File sources are read with seek + ``readinto`` straight into the
    caller's buffer (typically a shared-memory segment), never mapping
    the whole object — the parent's resident set stays O(tile) even for
    datasets that don't fit in memory.
    """

    def __init__(self, source: np.ndarray | str | Path) -> None:
        self._fh = None
        self._data = None
        try:
            if isinstance(source, (str, Path)):
                # rapidslint: disable-next=RPD108 -- handle lives for the source's lifetime; closed in TileSource.close/__exit__
                self._fh = open(source, "rb")
                version = np.lib.format.read_magic(self._fh)
                if version == (1, 0):
                    header = np.lib.format.read_array_header_1_0(self._fh)
                elif version == (2, 0):
                    header = np.lib.format.read_array_header_2_0(self._fh)
                else:
                    raise ValueError(f"unsupported .npy version {version}")
                shape, fortran, dtype = header
                if fortran:
                    raise ValueError(
                        "Fortran-ordered .npy input is not supported; "
                        "save with C order"
                    )
                self.shape = tuple(int(s) for s in shape)
                self.dtype = np.dtype(dtype)
                self._offset = self._fh.tell()
            else:
                self._data = np.ascontiguousarray(source)
                self.shape = tuple(self._data.shape)
                self.dtype = self._data.dtype
            if len(self.shape) < 1 or self.shape[0] < 2:
                raise ValueError("need at least 2 planes along axis 0")
            self.row_nbytes = (
                int(np.prod(self.shape[1:], dtype=np.int64))
                * self.dtype.itemsize
            )
        except BaseException:
            # A rejected source (bad magic, Fortran order, too few
            # planes) discards the half-built instance — nothing would
            # ever close the handle.
            self.close()
            raise

    @property
    def nbytes(self) -> int:
        return self.row_nbytes * self.shape[0]

    def tile_shape(self, lo: int, hi: int) -> tuple[int, ...]:
        return (hi - lo,) + self.shape[1:]

    def read_tile(self, lo: int, hi: int, out=None) -> np.ndarray:
        """Read planes ``[lo, hi)`` into ``out`` (or a fresh array).

        ``out`` may be any writable buffer of at least the tile's size
        (a shared-memory view); the returned array is a view of it.
        """
        shape = self.tile_shape(lo, hi)
        count = int(np.prod(shape, dtype=np.int64))
        if out is None:
            arr = np.empty(shape, dtype=self.dtype)
        else:
            arr = np.frombuffer(out, dtype=self.dtype, count=count).reshape(
                shape
            )
        if self._data is not None:
            np.copyto(arr, self._data[lo:hi])
            return arr
        nbytes = (hi - lo) * self.row_nbytes
        self._fh.seek(self._offset + lo * self.row_nbytes)
        view = arr.reshape(-1).view(np.uint8)[:nbytes]
        got = self._fh.readinto(memoryview(view))
        if got != nbytes:
            raise OSError(
                f"short read: wanted {nbytes} bytes for planes "
                f"[{lo}, {hi}), got {got}"
            )
        return arr

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TileSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def resolve_tiles(
    shape: tuple[int, ...],
    itemsize: int,
    tile_planes: int | None = None,
) -> list[tuple[int, int]]:
    """Tile bounds for one object (deterministic across modes)."""
    if tile_planes is None:
        row = int(np.prod(shape[1:], dtype=np.int64)) * itemsize
        tile_planes = max(2, DEFAULT_TILE_BYTES // max(1, row))
    if tile_planes < 2:
        raise ValueError("tile_planes must be >= 2")
    num_tiles = -(-shape[0] // tile_planes)
    return axis0_bounds(shape[0], num_tiles)


# -- picklable stage workers ---------------------------------------------


def _refactorer_config(refactorer: Refactorer, *, workers: int) -> dict:
    """Constructor kwargs reproducing ``refactorer`` in a worker.

    ``workers`` only affects scheduling, never bytes (the kernels are
    worker-count invariant), so pool workers run single-threaded while
    the inline path keeps the caller's thread fan-out.
    """
    return dict(
        num_components=refactorer.num_components,
        max_levels=refactorer.max_levels,
        num_planes=refactorer.num_planes,
        correction=refactorer.correction,
        policy=refactorer.policy,
        size_ratio=refactorer.size_ratio,
        workers=workers,
    )


def _plans_as_lists(plans) -> list[list[list[int]]]:
    return [
        [list(p.fine_shape), list(p.coarse_shape), list(p.coarsened_axes)]
        for p in plans
    ]


def _plans_from_lists(rows) -> list[LevelPlan]:
    return [LevelPlan(tuple(f), tuple(c), tuple(a)) for f, c, a in rows]


def _prepare_tile_worker(args: tuple) -> dict:
    """Refactor one tile from shared memory; payloads go back via shm.

    Module-level (picklable under any pool start method).  Returns only
    scalar metadata plus, when the pre-sized output segment is too
    small, the payload bytes themselves as a fallback.
    """
    in_name, tile_shape, dtype_str, out_name, config = args
    in_shm = _attach(in_name)
    tile = None
    try:
        count = int(np.prod(tile_shape, dtype=np.int64))
        tile = np.frombuffer(in_shm.buf, dtype=dtype_str, count=count).reshape(
            tile_shape
        )
        obj = refactor_block(tile, config, measure_errors=False)
    finally:
        tile = None  # drop the buffer view before closing the segment
        in_shm.close()
    result = {
        "sizes": [len(p) for p in obj.payloads],
        "bounds": [float(b) for b in obj.bounds],
        "data_max": float(obj.data_max),
        "plans": _plans_as_lists(obj.plans),
        "payloads": None,
    }
    out_shm = _attach(out_name)
    try:
        total = sum(result["sizes"])
        if total <= out_shm.size:
            off = 0
            for payload in obj.payloads:
                out_shm.buf[off : off + len(payload)] = payload
                off += len(payload)
        else:
            result["payloads"] = list(obj.payloads)
    finally:
        out_shm.close()
    return result


def _restore_tile_worker(args: tuple) -> int:
    """Reconstruct one tile from shm payloads into the shared output."""
    (
        in_name,
        sizes,
        plans_rows,
        tile_shape,
        dtype_str,
        data_max,
        correction,
        upto,
        out_name,
        out_offset,
        config,
    ) = args
    in_shm = _attach(in_name)
    try:
        payloads = []
        off = 0
        for sz in sizes:
            payloads.append(bytes(in_shm.buf[off : off + sz]))
            off += sz
    finally:
        in_shm.close()
    obj = _tile_object(
        tile_shape, dtype_str, plans_rows, payloads, data_max, correction
    )
    out = reconstruct_block(obj, config, upto=upto)
    out_shm = _attach(out_name)
    flat = None
    try:
        flat = np.ascontiguousarray(out).reshape(-1).view(np.uint8)
        out_shm.buf[out_offset : out_offset + flat.nbytes] = flat
    finally:
        flat = None
        out_shm.close()
    return int(np.prod(tile_shape, dtype=np.int64))


def _tile_object(tile_shape, dtype_str, plans_rows, payloads, data_max, correction):
    from ..refactor.refactorer import RefactoredObject

    return RefactoredObject(
        shape=tuple(tile_shape),
        dtype=dtype_str,
        plans=_plans_from_lists(plans_rows),
        payloads=payloads,
        errors=[],
        bounds=[],
        data_max=data_max,
        correction=correction,
    )


# -- the streaming prepare engine ----------------------------------------


class _FragmentSpool:
    """Disk spool for fragment chunks: one file per (level, fragment).

    ``append`` keeps a running CRC-32 per fragment so placement never
    re-reads a fragment just to checksum it; ``read_fragment`` returns
    one fragment at a time (O(fragment) memory).
    """

    def __init__(self, levels: int, n: int, dir_hint: str) -> None:
        self.dir = Path(tempfile.mkdtemp(prefix=f"procpipe-{dir_hint}-"))
        self.n = n
        self._files = [
            # rapidslint: disable-next=RPD108 -- appended to across the whole run; closed in finish_writes/close
            [open(self.dir / f"l{j}.f{i:03d}.chunk", "wb") for i in range(n)]
            for j in range(levels)
        ]
        self.crcs = [[0] * n for _ in range(levels)]
        self.nbytes = [[0] * n for _ in range(levels)]
        self.spooled_bytes = 0

    def append(self, level: int, fragments) -> None:
        for i, frag in enumerate(fragments):
            blob = np.ascontiguousarray(frag).tobytes()
            self.crcs[level][i] = zlib.crc32(blob, self.crcs[level][i])
            self.nbytes[level][i] += len(blob)
            self._files[level][i].write(blob)
            self.spooled_bytes += len(blob)

    def finish_writes(self) -> None:
        for row in self._files:
            for fh in row:
                fh.close()

    def read_fragment(self, level: int, index: int) -> bytes:
        blob = (self.dir / f"l{level}.f{index:03d}.chunk").read_bytes()
        expected = self.crcs[level][index] & 0xFFFFFFFF
        if crc32(blob) != expected:
            raise OSError(
                f"fragment spool corrupted on disk: level {level} "
                f"fragment {index} fails its running CRC"
            )
        return blob

    def close(self) -> None:
        self.finish_writes()
        shutil.rmtree(self.dir, ignore_errors=True)

    def __enter__(self) -> "_FragmentSpool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def prepare_tiled(
    pipeline,
    name: str,
    source: np.ndarray | str | Path,
    *,
    processes: int | None = None,
    tile_planes: int | None = None,
    max_inflight: int | None = None,
    distribute: bool = True,
    fragment_dir: str | Path | None = None,
):
    """Run the streaming process-parallel preparation phase.

    ``pipeline`` is the :class:`repro.core.pipeline.RAPIDS` instance;
    the engine reuses its refactorer configuration, FT optimiser, codec,
    cluster, catalog and ledger, and returns the same
    :class:`~repro.core.pipeline.PrepareReport` (with procpipe stats in
    ``report.extra``).  ``processes=1`` — or an attached chaos injector
    — runs the identical schedule inline: same bytes, no pools.
    """
    timings: dict[str, float] = {}
    if pipeline.injector is not None:
        pipeline.injector.check("pipeline.prepare", name=name)
    if processes is None:
        processes = default_workers()
    if processes < 1:
        raise ValueError("processes must be >= 1")

    t0 = time.perf_counter()
    src = TileSource(source)
    try:
        return _prepare_tiled_inner(
            pipeline, name, src, t0, processes, tile_planes, max_inflight,
            distribute, fragment_dir, timings,
        )
    finally:
        src.close()


def _prepare_tiled_inner(
    pipeline, name, src, t0, processes, tile_planes, max_inflight,
    distribute, fragment_dir, timings,
):
    from ..core.pipeline import PrepareReport
    from ..transfer import phase_latency, refactored_distribution
    from ..transfer.pipelined import pipelined_archival

    bounds = resolve_tiles(src.shape, src.dtype.itemsize, tile_planes)
    num_tiles = len(bounds)
    inline = (
        processes <= 1 or num_tiles <= 1 or pipeline.injector is not None
    )
    if max_inflight is None:
        max_inflight = max(2, 2 * processes)
    max_inflight = max(1, min(max_inflight, num_tiles))
    config_inline = _refactorer_config(
        pipeline.refactorer, workers=pipeline.refactor_workers
    )
    config_worker = _refactorer_config(pipeline.refactorer, workers=1)

    # Profile tile: tile 0's exact serialised sizes, refactored in the
    # parent in every mode.  The FT solver sees sizes[j] * num_tiles —
    # the weak-scaling estimate available before any other tile exists —
    # so the configuration is deterministic across modes and the EC
    # stage can start streaming immediately.
    tile0 = src.read_tile(*bounds[0])
    timings["read"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    profile = refactor_block(tile0, config_inline, measure_errors=False)
    del tile0
    profile_refactor_time = time.perf_counter() - t0
    levels = len(profile.payloads)

    t0 = time.perf_counter()
    sol = pipeline._optimize_ft(
        [s * num_tiles for s in profile.sizes],
        list(profile.bounds),
        src.nbytes,
    )
    timings["ft_optimize"] = time.perf_counter() - t0
    ms = sol.ms

    level_sizes = [0] * levels
    abs_errors = [0.0] * levels
    chunk_lens: list[list[int]] = [[] for _ in range(levels)]
    tile_plans: list[list[list[list[int]]]] = []
    data_max = 0.0
    ec_time = 0.0
    chunk_events: list[tuple[float, float]] = []
    arena = SharedArena()
    pipeline_start = time.perf_counter()

    def _consume(payloads, tile_bounds, tile_max, plans_rows) -> None:
        """EC-encode one tile's levels in order and spool the chunks."""
        nonlocal data_max, ec_time
        t_ec = time.perf_counter()
        data_max = max(data_max, tile_max)
        tile_plans.append(plans_rows)
        for j, payload in enumerate(payloads):
            enc = pipeline.codec.encode_level(payload, ms[j], level_index=j)
            spool.append(j, enc.fragments)
            chunk_lens[j].append(enc.fragment_nbytes)
            level_sizes[j] += len(payload)
            # The bound is relative to the tile's own max; the global
            # relative error is the worst absolute error over tiles,
            # renormalised by the global max (exact for L-infinity).
            abs_errors[j] = max(abs_errors[j], tile_bounds[j] * tile_max)
            chunk_events.append(
                (time.perf_counter() - pipeline_start, float(enc.fragment_nbytes))
            )
        ec_time += time.perf_counter() - t_ec

    t_loop = time.perf_counter()
    with _FragmentSpool(levels, pipeline.cluster.n, "prepare") as spool, arena:
        _consume(
            profile.payloads,
            list(profile.bounds),
            profile.data_max,
            _plans_as_lists(profile.plans),
        )
        if inline:
            for lo, hi in bounds[1:]:
                tile = src.read_tile(lo, hi)
                obj = refactor_block(tile, config_inline, measure_errors=False)
                del tile
                _consume(
                    obj.payloads,
                    list(obj.bounds),
                    obj.data_max,
                    _plans_as_lists(obj.plans),
                )
        else:
            with ProcessPoolExecutor(max_workers=processes) as pool:
                pending: dict[int, tuple] = {}
                next_submit = 1

                def _submit() -> None:
                    nonlocal next_submit
                    lo, hi = bounds[next_submit]
                    nbytes = (hi - lo) * src.row_nbytes
                    in_shm = arena.lease(nbytes)
                    src.read_tile(lo, hi, out=in_shm.buf)
                    out_shm = arena.lease(payload_capacity(nbytes))
                    fut = pool.submit(
                        _prepare_tile_worker,
                        (
                            in_shm.name,
                            src.tile_shape(lo, hi),
                            str(src.dtype),
                            out_shm.name,
                            config_worker,
                        ),
                    )
                    pending[next_submit] = (fut, in_shm.name, out_shm.name)
                    next_submit += 1

                # Backpressure: the sliding window over ordered futures
                # is the bounded inter-stage queue — at most
                # ``max_inflight`` tiles (and their arena segments) are
                # ever outstanding.
                while next_submit < num_tiles and len(pending) < max_inflight:
                    _submit()
                for t in range(1, num_tiles):
                    fut, in_name, out_name = pending.pop(t)
                    try:
                        res = fut.result()
                    finally:
                        arena.release(in_name)
                    if res["payloads"] is not None:
                        payloads = res["payloads"]  # oversize fallback
                    else:
                        buf = arena.get(out_name).buf
                        payloads, off = [], 0
                        for sz in res["sizes"]:
                            payloads.append(bytes(buf[off : off + sz]))
                            off += sz
                    arena.release(out_name)
                    if next_submit < num_tiles:
                        _submit()  # refill before the parent-side EC work
                    _consume(
                        payloads, res["bounds"], res["data_max"], res["plans"]
                    )
        loop_wall = time.perf_counter() - t_loop
        timings["refactor"] = profile_refactor_time + max(
            0.0, loop_wall - ec_time
        )
        timings["ec_encode"] = ec_time
        src.close()
        spool.finish_writes()

        # Placement reads the spool back one fragment at a time, so this
        # phase is O(fragment) memory no matter how large the object is.
        t_write = 0.0
        t_meta = time.perf_counter()
        pipeline.catalog.put_object(
            ObjectRecord(
                name=name,
                shape=list(src.shape),
                dtype=str(src.dtype),
                level_sizes=list(level_sizes),
                level_errors=[
                    (e / data_max if data_max > 0 else 0.0) for e in abs_errors
                ],
                ft_config=ms,
                n_systems=pipeline.cluster.n,
                data_max=data_max,
                correction=pipeline.refactorer.correction,
                extra={
                    "procpipe": {
                        "tiles": [[lo, hi] for lo, hi in bounds],
                        "plans": tile_plans,
                        "chunks": chunk_lens,
                    },
                    "expected_error": sol.expected_error,
                },
            )
        )
        from ..healing.ledger import LedgerEntry

        outdir = Path(fragment_dir) if fragment_dir is not None else None
        if outdir is not None:
            outdir.mkdir(parents=True, exist_ok=True)
        safe = name.replace("/", "_").replace(":", "_")
        for j in range(levels):
            checksums = []
            frag_sizes = []
            for i in range(pipeline.cluster.n):
                blob = spool.read_fragment(j, i)
                crc = spool.crcs[j][i] & 0xFFFFFFFF
                checksums.append(crc)
                frag_sizes.append(len(blob))
                if outdir is not None:
                    tw = time.perf_counter()
                    write_fragment_file(
                        outdir / f"{safe}.l{j}.f{i}.rdc",
                        blob,
                        object_name=name,
                        level=j,
                        index=i,
                        k=pipeline.cluster.n - ms[j],
                        m=ms[j],
                    )
                    t_write += time.perf_counter() - tw
                if distribute:
                    pipeline.cluster[i].put(
                        StoredFragment(name, j, i, len(blob), blob, checksum=crc)
                    )
                pipeline.catalog.put_fragment(
                    FragmentRecord(name, j, i, i, len(blob), checksum=crc)
                )
            if distribute:
                pipeline.ledger.record(
                    LedgerEntry(
                        object_name=name,
                        level=j,
                        n=pipeline.cluster.n,
                        m=ms[j],
                        checksums=checksums,
                        nbytes=frag_sizes,
                        placement=list(range(pipeline.cluster.n)),
                        headroom=ms[j],
                    )
                )
        timings["metadata"] = time.perf_counter() - t_meta - t_write
        timings["write"] = t_write
        spooled = spool.spooled_bytes

    dist_latency = 0.0
    network_bytes = 0.0
    archival = None
    if distribute:
        reqs = refactored_distribution(
            [float(s) for s in level_sizes], ms, pipeline.cluster.n,
            pipeline.cluster.bandwidths,
        )
        res = phase_latency(reqs, pipeline.cluster.bandwidths)
        dist_latency = res.makespan
        network_bytes = res.total_bytes
        archival = pipelined_archival(
            chunk_events, pipeline.cluster.bandwidths
        )

    from ..core.availability import refactored_storage_overhead

    errors = [(e / data_max if data_max > 0 else 0.0) for e in abs_errors]
    return PrepareReport(
        name=name,
        ft_config=ms,
        level_sizes=list(level_sizes),
        level_errors=errors,
        storage_overhead=refactored_storage_overhead(
            [float(s) for s in level_sizes], ms, pipeline.cluster.n,
            float(src.nbytes),
        ),
        expected_error=sol.expected_error,
        distribution_latency=dist_latency,
        network_bytes=network_bytes,
        timings=timings,
        extra={
            "procpipe": {
                "mode": "inline" if inline else "process",
                "processes": 1 if inline else processes,
                "num_tiles": num_tiles,
                "max_inflight": max_inflight,
                "arena_segments": arena.created,
                "arena_peak_bytes": arena.peak_bytes,
                "arena_leaked": arena.live_names,
                "spooled_bytes": spooled,
            },
            **(
                {"archival": archival.as_dict()} if archival is not None else {}
            ),
        },
    )


# -- the tiled restore engine --------------------------------------------


def decode_tiled(
    pipeline,
    rec,
    level_ids: list[int],
    gathered: dict[int, dict[int, np.ndarray]],
    degrade: bool,
    failures: list,
) -> list[list[bytes]]:
    """EC-decode gathered levels into per-(level, tile) payloads.

    Fragment ``i`` of level ``j`` is the concatenation over tiles of the
    tile's independently encoded chunk, so each (level, tile) decodes
    from the matching slice of any k fragments.  Returns one payload
    list per surviving level (truncated, like the untiled path, at the
    first failed level — deeper levels are useless without it).
    """
    from ..chaos.degraded import LevelFailure
    from ..core.pipeline import _DEGRADABLE

    pp = rec.extra["procpipe"]
    chunks = pp["chunks"]
    n = pipeline.cluster.n
    num_tiles = len(pp["tiles"])

    def _decode_one(job: tuple[int, int, int]) -> bytes:
        j, t, offset = job
        cfg = ECConfig(n, rec.ft_config[j])
        size = chunks[j][t]
        frags = {
            i: arr[offset : offset + size] for i, arr in gathered[j].items()
        }
        return pipeline.codec.decode_level(
            config=cfg, fragments=frags, level_index=j
        )

    jobs: list[tuple[int, int, int]] = []
    for j in level_ids:
        offset = 0
        for t in range(num_tiles):
            jobs.append((j, t, offset))
            offset += chunks[j][t]

    if pipeline.injector is None:
        try:
            flat = thread_map(
                _decode_one, jobs,
                workers=min(pipeline.ec_workers, len(jobs)),
            )
            return [
                flat[a * num_tiles : (a + 1) * num_tiles]
                for a in range(len(level_ids))
            ]
        except _DEGRADABLE:
            if not degrade:
                raise
    # Serial fallback (and the injector path): deterministic (level,
    # tile) order so fault-plan occurrence windows replay.
    out: list[list[bytes]] = []
    for a, j in enumerate(level_ids):
        row: list[bytes] = []
        try:
            for t in range(num_tiles):
                row.append(_decode_one(jobs[a * num_tiles + t]))
        except _DEGRADABLE as exc:
            if not degrade:
                raise
            failures.append(LevelFailure(j, "decode", repr(exc)))
            break
        out.append(row)
    return out


def reconstruct_tiled(
    pipeline,
    rec,
    level_ids: list[int],
    payloads_by_level: list[list[bytes]],
    *,
    processes: int | None = None,
    max_inflight: int | None = None,
    degrade: bool = True,
    failures: list | None = None,
) -> tuple[np.ndarray | None, int]:
    """Per-tile prefix reconstruction; returns ``(data, levels_used)``.

    Tiles reconstruct independently (pooled or inline) into one shared
    output array.  A degradable failure at prefix length ``u`` retries
    every tile at ``u - 1`` — all tiles must agree on the prefix for the
    delivered error bound to mean anything.
    """
    from ..chaos.degraded import LevelFailure
    from ..core.pipeline import _DEGRADABLE

    if failures is None:
        failures = []
    pp = rec.extra["procpipe"]
    bounds = [(int(lo), int(hi)) for lo, hi in pp["tiles"]]
    num_tiles = len(bounds)
    if processes is None:
        processes = default_workers()
    inline = (
        processes <= 1 or num_tiles <= 1 or pipeline.injector is not None
    )
    if max_inflight is None:
        max_inflight = max(2, 2 * processes)
    max_inflight = max(1, min(max_inflight, num_tiles))
    config = _refactorer_config(
        pipeline.refactorer,
        workers=pipeline.refactor_workers if inline else 1,
    )
    dtype = np.dtype(rec.dtype)
    shape = tuple(rec.shape)
    row_nbytes = int(np.prod(shape[1:], dtype=np.int64)) * dtype.itemsize

    upto = len(payloads_by_level)
    while upto >= 1:
        try:
            if inline:
                out = np.empty(shape, dtype=dtype)
                for t, (lo, hi) in enumerate(bounds):
                    obj = _tile_object(
                        (hi - lo,) + shape[1:],
                        rec.dtype,
                        pp["plans"][t],
                        [payloads_by_level[a][t] for a in range(upto)],
                        rec.data_max,
                        rec.correction,
                    )
                    out[lo:hi] = reconstruct_block(obj, config, upto=upto)
                return out, upto
            data = _reconstruct_pooled(
                pipeline, rec, pp, bounds, payloads_by_level, upto,
                processes, max_inflight, config, row_nbytes,
            )
            return data, upto
        except _DEGRADABLE as exc:
            if not degrade:
                raise
            failures.append(
                LevelFailure(level_ids[upto - 1], "pipeline", repr(exc))
            )
            upto -= 1
    return None, 0


def _reconstruct_pooled(
    pipeline, rec, pp, bounds, payloads_by_level, upto,
    processes, max_inflight, config, row_nbytes,
):
    """One pooled reconstruction attempt at prefix length ``upto``."""
    shape = tuple(rec.shape)
    dtype = np.dtype(rec.dtype)
    total_nbytes = row_nbytes * shape[0]
    num_tiles = len(bounds)
    with SharedArena() as arena:
        out_shm = arena.lease(total_nbytes)
        with ProcessPoolExecutor(max_workers=processes) as pool:
            pending: dict[int, tuple] = {}
            next_submit = 0

            def _submit() -> None:
                nonlocal next_submit
                t = next_submit
                lo, hi = bounds[t]
                payloads = [payloads_by_level[a][t] for a in range(upto)]
                sizes = [len(p) for p in payloads]
                in_shm = arena.lease(max(1, sum(sizes)))
                off = 0
                for p in payloads:
                    in_shm.buf[off : off + len(p)] = p
                    off += len(p)
                fut = pool.submit(
                    _restore_tile_worker,
                    (
                        in_shm.name,
                        sizes,
                        pp["plans"][t],
                        (hi - lo,) + shape[1:],
                        rec.dtype,
                        rec.data_max,
                        rec.correction,
                        upto,
                        out_shm.name,
                        lo * row_nbytes,
                        config,
                    ),
                )
                pending[t] = (fut, in_shm.name)
                next_submit += 1

            while next_submit < num_tiles and len(pending) < max_inflight:
                _submit()
            for t in range(num_tiles):
                fut, in_name = pending.pop(t)
                try:
                    fut.result()
                finally:
                    arena.release(in_name)
                if next_submit < num_tiles:
                    _submit()
        out = np.frombuffer(out_shm.buf, dtype=dtype).reshape(shape).copy()
        arena.release(out_shm.name)
    return out
