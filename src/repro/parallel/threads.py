"""Threads-first parallel mapping for GIL-releasing NumPy kernels.

The erasure-coding kernels (and most large-array NumPy ufuncs) release
the GIL inside their inner loops, so a thread pool parallelises them
without the pickling and process-startup costs of
:class:`~concurrent.futures.ProcessPoolExecutor`.  This module is the
shared "threads-first" strategy used by the EC kernel layer, the striped
codec, and the pipeline's per-level encode/decode fan-out.

``thread_map`` runs inline (no pool at all) when a single worker is
requested or there is at most one item — the ``processes=1`` fast path
of :mod:`repro.parallel.executor`, applied to threads — so tiny inputs
and tests never pay pool overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Collection, Iterable, Sequence, TypeVar

__all__ = ["balanced_spans", "thread_map", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count used when callers pass ``workers=None``.

    Derived from the CPUs this process may actually *run on* — the
    scheduling affinity mask (which cgroup/container CPU limits shrink)
    — rather than ``os.cpu_count()``, which reports every core in the
    machine and over-subscribes pools inside containers.  This is the
    single source of truth for every pool in the project: the thread
    fan-outs here, the process pools of :mod:`repro.parallel.executor`
    and :mod:`repro.parallel.procpipe`.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
        if affinity > 0:
            return affinity
    except (AttributeError, OSError):
        pass  # platforms without sched_getaffinity (macOS, Windows)
    process_cpus = getattr(os, "process_cpu_count", None)  # 3.13+
    if process_cpus is not None:
        return process_cpus() or 1
    return os.cpu_count() or 1


def balanced_spans(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``parts`` contiguous near-equal
    ``(lo, hi)`` spans.

    The split depends only on ``(n, parts)``, so callers that tile
    row-independent kernels get a deterministic decomposition — the
    basis for the "threaded output is bit-identical to serial" guarantee
    in the refactor/transform layers.
    """
    parts = max(1, min(parts, n))
    step, rem = divmod(n, parts)
    spans: list[tuple[int, int]] = []
    lo = 0
    for i in range(parts):
        hi = lo + step + (1 if i < rem else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


def thread_map(
    fn: Callable[[T], R],
    items: Iterable[T] | Sequence[T],
    *,
    workers: int | None = None,
    allow_shared_writes: Collection[str] = (),
) -> list[R]:
    """Map ``fn`` over ``items`` on a thread pool, preserving order.

    ``workers=None`` uses :func:`default_workers`; ``workers <= 1`` or a
    single item runs inline with no pool.  Exceptions propagate to the
    caller exactly as in the serial case.

    When the ``RAPIDS_THREAD_SANITIZER`` environment variable is set,
    pooled maps run under the runtime thread sanitizer
    (:mod:`repro.analysis.sanitizer`): the shared state reachable from
    ``fn`` is shadow-tracked and any unsynchronized write observed
    during the map raises
    :class:`~repro.analysis.sanitizer.ThreadSanitizerError`.
    ``allow_shared_writes`` names objects (by closure/global/``self``
    name) the caller certifies are written at provably disjoint
    locations — e.g. disjoint row spans of a preallocated output array —
    and therefore exempt from tracking.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    tracker = None
    from ..analysis.sanitizer import sanitizer_mode

    mode = sanitizer_mode()
    if mode is not None:
        from ..analysis.sanitizer import SharedStateTracker

        tracker = SharedStateTracker(fn, allow=allow_shared_writes, mode=mode)
        fn = tracker.wrap()
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        results = list(pool.map(fn, items))
    if tracker is not None:
        tracker.verify()
    return results
