"""Threads-first parallel mapping for GIL-releasing NumPy kernels.

The erasure-coding kernels (and most large-array NumPy ufuncs) release
the GIL inside their inner loops, so a thread pool parallelises them
without the pickling and process-startup costs of
:class:`~concurrent.futures.ProcessPoolExecutor`.  This module is the
shared "threads-first" strategy used by the EC kernel layer, the striped
codec, and the pipeline's per-level encode/decode fan-out.

``thread_map`` runs inline (no pool at all) when a single worker is
requested or there is at most one item — the ``processes=1`` fast path
of :mod:`repro.parallel.executor`, applied to threads — so tiny inputs
and tests never pay pool overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["thread_map", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count used when callers pass ``workers=None``."""
    return os.cpu_count() or 1


def thread_map(
    fn: Callable[[T], R],
    items: Iterable[T] | Sequence[T],
    *,
    workers: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` on a thread pool, preserving order.

    ``workers=None`` uses :func:`default_workers`; ``workers <= 1`` or a
    single item runs inline with no pool.  Exceptions propagate to the
    caller exactly as in the serial case.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))
