"""Block-parallel execution of refactoring and reconstruction.

Runs the embarrassingly parallel per-block operations of §5.5.1 on local
CPU cores with a process pool.  Blocks are shipped as (shape, dtype,
bytes) triples — the buffer-based communication idiom — so no pickling
of live array objects happens on the hot path.

The module-level worker functions keep the pool ``fork``/``spawn``
agnostic, and a ``processes=1`` fast path runs inline (no pool) so tiny
inputs and tests avoid process startup costs.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..refactor import RefactoredObject, Refactorer
from ..refactor.refactorer import refactor_block
from .partition import join_blocks, split_blocks
from .threads import default_workers

__all__ = ["ParallelRefactorer", "ParallelResult"]


@dataclass
class ParallelResult:
    """Outcome of a parallel refactor or reconstruct run."""

    objects: list[RefactoredObject] | None
    data: np.ndarray | None
    elapsed: float
    num_blocks: int
    processes: int
    total_bytes: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Processed bytes per second of wall-clock time."""
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0


def _refactor_block(args) -> RefactoredObject:
    shape, dtype, raw, kwargs = args
    block = np.frombuffer(raw, dtype=dtype).reshape(shape)
    return refactor_block(block, kwargs, measure_errors=False)


def _reconstruct_block(args) -> tuple[tuple[int, ...], str, bytes]:
    obj, upto, kwargs = args
    out = Refactorer(**kwargs).reconstruct(obj, upto=upto)
    return out.shape, str(out.dtype), out.tobytes()


class ParallelRefactorer:
    """Refactor/reconstruct an array as independent per-core blocks.

    Parameters
    ----------
    processes:
        Worker count (defaults to the machine's CPU count).
    refactorer_kwargs:
        Passed through to each worker's :class:`Refactorer`.
    """

    def __init__(self, processes: int | None = None, **refactorer_kwargs) -> None:
        if processes is None:
            # Affinity-aware (honours container CPU limits) — the same
            # helper every pool in repro.parallel derives its width from.
            processes = default_workers()
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        self.refactorer_kwargs = refactorer_kwargs

    def refactor(
        self, data: np.ndarray, *, blocks_per_process: int = 1
    ) -> ParallelResult:
        """Split into one block per worker (times ``blocks_per_process``)
        and refactor them concurrently."""
        num_blocks = self.processes * blocks_per_process
        blocks = split_blocks(np.ascontiguousarray(data), num_blocks)
        payload = [
            (b.shape, str(b.dtype), b.tobytes(), self.refactorer_kwargs)
            for b in blocks
        ]
        start = time.perf_counter()
        if self.processes == 1:
            objects = [_refactor_block(p) for p in payload]
        else:
            with ProcessPoolExecutor(max_workers=self.processes) as pool:
                objects = list(pool.map(_refactor_block, payload))
        elapsed = time.perf_counter() - start
        return ParallelResult(
            objects=objects,
            data=None,
            elapsed=elapsed,
            num_blocks=len(blocks),
            processes=self.processes,
            total_bytes=int(data.nbytes),
        )

    def reconstruct_region(
        self,
        objects: list[RefactoredObject],
        start: int,
        stop: int,
        *,
        upto: int | None = None,
    ) -> ParallelResult:
        """Reconstruct only the leading-axis slice ``[start, stop)``.

        Because blocks are independent along axis 0, a region of
        interest only needs the blocks it intersects — the block-level
        form of pMGARD's *adaptable* retrieval.  Returns the region's
        data (the result's leading axis spans exactly [start, stop)).
        """
        if not objects:
            raise ValueError("no refactored blocks to reconstruct")
        bounds = [0]
        for o in objects:
            bounds.append(bounds[-1] + o.shape[0])
        total = bounds[-1]
        if not 0 <= start < stop <= total:
            raise ValueError(
                f"region [{start}, {stop}) out of range [0, {total})"
            )
        hit = [
            i
            for i in range(len(objects))
            if bounds[i] < stop and bounds[i + 1] > start
        ]
        sub = self.reconstruct([objects[i] for i in hit], upto=upto)
        lo = start - bounds[hit[0]]
        hi = lo + (stop - start)
        sub.data = sub.data[lo:hi]
        sub.extra["blocks_touched"] = len(hit)
        sub.extra["blocks_total"] = len(objects)
        return sub

    def reconstruct(
        self, objects: list[RefactoredObject], *, upto: int | None = None
    ) -> ParallelResult:
        """Reconstruct every block (optionally from a component prefix)
        and reassemble the full array."""
        if not objects:
            raise ValueError("no refactored blocks to reconstruct")
        upto_eff = upto if upto is not None else objects[0].num_components
        payload = [(o, upto_eff, self.refactorer_kwargs) for o in objects]
        start = time.perf_counter()
        if self.processes == 1:
            raws = [_reconstruct_block(p) for p in payload]
        else:
            with ProcessPoolExecutor(max_workers=self.processes) as pool:
                raws = list(pool.map(_reconstruct_block, payload))
        blocks = [
            np.frombuffer(raw, dtype=dtype).reshape(shape)
            for shape, dtype, raw in raws
        ]
        data = join_blocks(blocks)
        elapsed = time.perf_counter() - start
        return ParallelResult(
            objects=objects,
            data=data,
            elapsed=elapsed,
            num_blocks=len(objects),
            processes=self.processes,
            total_bytes=int(data.nbytes),
        )
