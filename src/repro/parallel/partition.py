"""Domain decomposition into per-core blocks.

The paper's weak-scaling setup fixes the data object produced per CPU
core (e.g. 512 MB/core for NYX) and refactors each core's block
independently — data refactoring is "embarrassingly parallel" (§5.5.1).
This module splits an nD array into equal blocks along the leading axis
and reassembles them, preserving byte-for-byte layout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["split_blocks", "join_blocks", "block_shape_for"]


def split_blocks(data: np.ndarray, num_blocks: int) -> list[np.ndarray]:
    """Split along axis 0 into ``num_blocks`` near-equal contiguous blocks.

    Every block gets at least 2 planes so it remains refactorable;
    ``num_blocks`` is clamped accordingly.
    """
    if data.ndim < 1:
        raise ValueError("cannot split a scalar")
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    max_blocks = max(1, data.shape[0] // 2)
    num_blocks = min(num_blocks, max_blocks)
    bounds = np.linspace(0, data.shape[0], num_blocks + 1).astype(int)
    return [
        np.ascontiguousarray(data[bounds[i] : bounds[i + 1]])
        for i in range(num_blocks)
    ]


def join_blocks(blocks: list[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`split_blocks`."""
    if not blocks:
        raise ValueError("no blocks to join")
    return np.concatenate(blocks, axis=0)


def block_shape_for(shape: tuple[int, ...], num_blocks: int) -> tuple[int, ...]:
    """Shape of the largest block produced by :func:`split_blocks`."""
    max_blocks = max(1, shape[0] // 2)
    num_blocks = min(num_blocks, max_blocks)
    first = -(-shape[0] // num_blocks)
    return (first,) + tuple(shape[1:])
