"""Cluster-scale performance model calibrated from local measurements.

The paper times its operations on up to 1,024 Andes cores against 2.98-
16.82 TB objects.  This environment has neither the cluster nor the
terabytes, so Tables 4/5 and Figs. 5/6 are regenerated through a
calibrated analytic model (documented substitution in DESIGN.md):

* Compute operations (refactor, EC encode/decode, reconstruct) are
  measured locally in bytes/s per core on proxy arrays, then scaled as
  ``time = bytes / (cores * per_core_rate * efficiency(cores))`` with a
  weak-scaling parallel efficiency ``eff(c) = c**-(1 - gamma)`` relative
  exponent — gamma = 1 is perfect scaling; the default 0.97 reflects the
  near-embarrassingly-parallel structure (§5.5.1: refactoring is
  block-independent, EC is stripe-independent).
* I/O operations (read, write) go through a parallel-filesystem model:
  per-node bandwidth grows with cores until the filesystem's aggregate
  bandwidth saturates (Alpine-like: 2.5 TB/s peak, ~16 GB/s per 32-core
  node).
* Transfer phases (distribute, gather) come from the WAN model and do
  not scale with cores.

Nothing here fabricates the *comparison*: all methods run through the
same model, and the crossovers emerge from the measured per-byte costs
and each method's genuinely different byte counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ClusterScalingModel",
    "FilesystemModel",
    "OperationRates",
    "andes_calibrated_rates",
    "measure_rate",
    "ALPINE_FS",
]


@dataclass(frozen=True)
class FilesystemModel:
    """Parallel filesystem bandwidth: per-node rate, aggregate ceiling."""

    per_core_bw: float  # bytes/s per core (POSIX client-side)
    aggregate_bw: float  # bytes/s ceiling for the whole filesystem

    def bandwidth(self, cores: int) -> float:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        return min(self.per_core_bw * cores, self.aggregate_bw)

    def io_time(self, nbytes: float, cores: int) -> float:
        return nbytes / self.bandwidth(cores)


#: An Alpine-like IBM Spectrum Scale filesystem (OLCF's, shared by
#: Summit and Andes): ~2.5 TB/s aggregate, ~0.5 GB/s per core.
ALPINE_FS = FilesystemModel(per_core_bw=0.5e9, aggregate_bw=2.5e12)


def andes_calibrated_rates() -> "OperationRates":
    """Single-core rates back-derived from the paper's own Tables 4/5.

    The pure-Python kernels in this repository run ~4x slower per byte
    than the C++/ISA-L implementations the paper times on Andes's EPYC
    7302 cores, so the absolute Table 4/5 reproduction calibrates the
    scaling model against the paper's implied per-core throughputs
    (derivations in EXPERIMENTS.md):

    * refactor   ~50 MB/s  (Table 4: RF+EC@64 is refactor-dominated)
    * reconstruct ~75 MB/s (Table 5: RF+EC@64 is reconstruct-dominated)
    * EC encode  ~200 MB/s (Table 4: EC@64 minus I/O and distribution)
    * EC decode  ~700 MB/s (Table 5: EC restore minus gather and read)

    The *shape* benches (Figs. 5/6 scaling trends, Fig. 7 mechanism) use
    genuinely measured local rates instead.
    """
    return OperationRates(
        refactor=50e6, reconstruct=75e6, ec_encode=200e6, ec_decode=700e6
    )


@dataclass
class OperationRates:
    """Measured single-core throughputs (bytes/s) for compute operations."""

    refactor: float
    reconstruct: float
    ec_encode: float
    ec_decode: float

    def rate(self, op: str) -> float:
        try:
            return getattr(self, op)
        except AttributeError:
            raise KeyError(f"unknown compute operation: {op!r}") from None


def measure_rate(fn, nbytes: int, *, repeats: int = 1) -> float:
    """Time ``fn()`` and return the implied throughput in bytes/s."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    if best <= 0:
        raise RuntimeError("operation completed too fast to time")
    return nbytes / best


@dataclass
class ClusterScalingModel:
    """Extrapolate operation times to an Andes-like cluster.

    Parameters
    ----------
    rates:
        Measured single-core compute throughputs.
    filesystem:
        The parallel filesystem model for read/write.
    efficiency_exponent:
        Weak-scaling efficiency: time on c cores =
        serial_time / c**efficiency_exponent.  1.0 = perfect.
    """

    rates: OperationRates
    filesystem: FilesystemModel = ALPINE_FS
    efficiency_exponent: float = 0.97

    def __post_init__(self) -> None:
        if not 0.5 <= self.efficiency_exponent <= 1.0:
            raise ValueError("efficiency_exponent must be in [0.5, 1.0]")

    def compute_time(self, op: str, nbytes: float, cores: int) -> float:
        """Wall time of a compute op on ``nbytes`` with ``cores`` cores."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        serial = nbytes / self.rates.rate(op)
        return serial / cores**self.efficiency_exponent

    def io_time(self, nbytes: float, cores: int) -> float:
        return self.filesystem.io_time(nbytes, cores)

    # -- whole-phase models -------------------------------------------------

    def preparation_times(
        self,
        method: str,
        *,
        cores: int,
        original_bytes: float,
        refactored_bytes: float | None = None,
        ec_stored_bytes: float | None = None,
        distribution_latency: float = 0.0,
        ft_optimize_time: float = 0.0,
    ) -> dict[str, float]:
        """Per-operation times of the data-preparation phase (Fig. 5).

        ``method`` is ``DP`` / ``EC`` / ``RF+EC``; byte counts follow
        §5.5: DP only distributes, EC reads + encodes + writes +
        distributes, RF+EC reads + refactors + optimises + writes the
        (much smaller) fragments + distributes.
        """
        if method == "DP":
            return {"distribute": distribution_latency}
        if method == "EC":
            if ec_stored_bytes is None:
                raise ValueError("EC needs ec_stored_bytes")
            return {
                "read": self.io_time(original_bytes, cores),
                "ec_encode": self.compute_time("ec_encode", original_bytes, cores),
                "write": self.io_time(ec_stored_bytes, cores),
                "distribute": distribution_latency,
            }
        if method == "RF+EC":
            if refactored_bytes is None:
                raise ValueError("RF+EC needs refactored_bytes")
            return {
                "read": self.io_time(original_bytes, cores),
                "refactor": self.compute_time("refactor", original_bytes, cores),
                "ft_optimize": ft_optimize_time,
                "ec_encode": self.compute_time("ec_encode", refactored_bytes, cores),
                "write": self.io_time(refactored_bytes, cores),
                "distribute": distribution_latency,
            }
        raise ValueError(f"unknown method {method!r}")

    def restoration_times(
        self,
        method: str,
        *,
        cores: int,
        original_bytes: float,
        gathered_bytes: float | None = None,
        gathering_latency: float = 0.0,
        gather_optimize_time: float = 0.0,
    ) -> dict[str, float]:
        """Per-operation times of the data-restoration phase (Fig. 6)."""
        if method == "DP":
            return {"gather": gathering_latency}
        if method == "EC":
            if gathered_bytes is None:
                raise ValueError("EC needs gathered_bytes")
            return {
                "gather": gathering_latency,
                "read": self.io_time(gathered_bytes, cores),
                "ec_decode": self.compute_time("ec_decode", gathered_bytes, cores),
            }
        if method == "RF+EC":
            if gathered_bytes is None:
                raise ValueError("RF+EC needs gathered_bytes")
            return {
                "gather_optimize": gather_optimize_time,
                "gather": gathering_latency,
                "read": self.io_time(gathered_bytes, cores),
                "ec_decode": self.compute_time("ec_decode", gathered_bytes, cores),
                "reconstruct": self.compute_time(
                    "reconstruct", original_bytes, cores
                ),
            }
        raise ValueError(f"unknown method {method!r}")
