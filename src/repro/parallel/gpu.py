"""GPU-style batched execution and the calibrated device model (Fig. 7).

No GPU is available in this environment, so Fig. 7 is reproduced in two
parts (documented substitution):

1. :func:`batched_decompose` / :func:`batched_recompose` demonstrate the
   *mechanism* a GPU port exploits — restructuring the per-block
   transform into one wide batched kernel over all blocks at once, which
   amortises per-kernel overhead exactly as CUDA kernel fusion does.
   The measured speedup of batched-over-looped is a real number produced
   on this machine.
2. :class:`GPUDeviceModel` maps single-core CPU throughput to modelled
   device throughput using a throughput ratio calibrated against the
   paper's K80-vs-EPYC-core measurements (3.7x refactoring, 20.3x
   reconstruction on average), so the Fig. 7 bench reports both the real
   batching speedup and the modelled device numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..refactor import transform
from ..refactor.grid import plan_levels

__all__ = ["batched_decompose", "batched_recompose", "GPUDeviceModel", "K80_MODEL"]


def batched_decompose(
    blocks: np.ndarray, *, max_levels: int = 6, correction: bool = True
):
    """Decompose a (B, n1, ..., nk) stack of equal-shape blocks at once.

    The block axis rides along as a batch dimension: every 1-D line
    kernel sees B times more lines per call, which is the same
    restructuring a GPU implementation performs to fill the device.
    Returns ``(mallat_stack, plans)`` where plans cover the block shape
    (axes 1..k only — axis 0 is never coarsened).
    """
    blocks = np.asarray(blocks)
    if blocks.ndim < 2:
        raise ValueError("expected a (B, ...) stack of blocks")
    inner = blocks.shape[1:]
    plans = plan_levels(inner, max_levels)
    out = blocks.astype(np.float64, copy=True)
    for plan in plans:
        corner = (slice(None),) + tuple(slice(0, s) for s in plan.fine_shape)
        block = out[corner]
        for ax in plan.coarsened_axes:
            block = transform.decompose_axis(block, ax + 1, correction=correction)
        out[corner] = block
    return out, plans


def batched_recompose(
    mallat_stack: np.ndarray, plans, *, correction: bool = True
) -> np.ndarray:
    """Inverse of :func:`batched_decompose`."""
    out = np.array(mallat_stack, dtype=np.float64, copy=True)
    for plan in reversed(plans):
        corner = (slice(None),) + tuple(slice(0, s) for s in plan.fine_shape)
        block = out[corner]
        for ax in reversed(plan.coarsened_axes):
            block = transform.recompose_axis(
                block, ax + 1, plan.fine_shape[ax], correction=correction
            )
        out[corner] = block
    return out


@dataclass(frozen=True)
class GPUDeviceModel:
    """Calibrated device throughput relative to one CPU core.

    ``refactor_speedup`` and ``reconstruct_speedup`` are the average
    device-vs-single-core ratios; the paper measured 3.7x and 20.3x for
    an NVIDIA K80 against one EPYC 7302 core (Fig. 7).  The asymmetry is
    real: reconstruction is dominated by the gather-heavy inverse
    transform whose memory-bound inner loops benefit most from the GPU's
    bandwidth.
    """

    name: str
    refactor_speedup: float
    reconstruct_speedup: float

    def __post_init__(self) -> None:
        if self.refactor_speedup <= 0 or self.reconstruct_speedup <= 0:
            raise ValueError("speedups must be positive")

    def device_throughput(self, op: str, cpu_core_throughput: float) -> float:
        """Modelled device throughput (bytes/s) from a measured CPU rate."""
        if cpu_core_throughput <= 0:
            raise ValueError("cpu throughput must be positive")
        if op == "refactor":
            return cpu_core_throughput * self.refactor_speedup
        if op == "reconstruct":
            return cpu_core_throughput * self.reconstruct_speedup
        raise KeyError(f"unknown operation {op!r}")


#: The paper's GPU: NVIDIA K80 vs one AMD EPYC 7302 core (Fig. 7 averages).
K80_MODEL = GPUDeviceModel(
    name="NVIDIA K80", refactor_speedup=3.7, reconstruct_speedup=20.3
)
