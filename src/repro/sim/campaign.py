"""Time-stepped campaign simulation.

Plays out a scientific campaign the way the paper's introduction frames
it (ITER-style: experiments steered by access to historical data): at
every epoch, storage systems independently fail and recover, analyses
request stored objects, and the simulator records what quality each
request actually received.  Aggregated over a long campaign, this yields
the empirical availability/accuracy statistics that the Eq. 5 design
target should predict — including regimes the analytic model does not
cover (repair backlogs, correlated outages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.gathering import recoverable_levels

__all__ = ["CampaignConfig", "CampaignStats", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of a campaign simulation.

    Attributes
    ----------
    n:
        Number of storage systems.
    p_fail:
        Per-epoch probability an up system goes down.
    p_repair:
        Per-epoch probability a down system comes back.  Steady-state
        unavailability is ``p_fail / (p_fail + p_repair)``; pick the two
        so it matches the availability model's ``p`` when comparing.
    ms:
        Fault-tolerance configuration of the stored object.
    errors:
        Per-level reconstruction errors e_j.
    epochs:
        Campaign length.
    requests_per_epoch:
        Analysis requests issued per epoch.
    """

    n: int
    p_fail: float
    p_repair: float
    ms: tuple[int, ...]
    errors: tuple[float, ...]
    epochs: int = 10_000
    requests_per_epoch: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.p_fail < 1 or not 0 < self.p_repair <= 1:
            raise ValueError("p_fail and p_repair must be in (0, 1]")
        if len(self.ms) != len(self.errors):
            raise ValueError("ms and errors must align")
        if any(a <= b for a, b in zip(self.ms, self.ms[1:])):
            raise ValueError("ms must be strictly decreasing")
        if self.ms[0] >= self.n or self.ms[-1] < 1:
            raise ValueError("need n > m_1 and m_l >= 1")
        if self.epochs < 1 or self.requests_per_epoch < 1:
            raise ValueError("epochs and requests_per_epoch must be >= 1")

    @property
    def steady_state_p(self) -> float:
        """Long-run per-system unavailability of the up/down Markov chain."""
        return self.p_fail / (self.p_fail + self.p_repair)


@dataclass
class CampaignStats:
    """What the campaign's analyses actually experienced."""

    requests: int = 0
    full_accuracy: int = 0
    degraded: int = 0
    blackout: int = 0
    error_sum: float = 0.0
    levels_histogram: dict[int, int] = field(default_factory=dict)
    max_concurrent_failures: int = 0

    @property
    def mean_error(self) -> float:
        return self.error_sum / self.requests if self.requests else 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests that got *some* data."""
        if not self.requests:
            return 1.0
        return 1.0 - self.blackout / self.requests

    @property
    def full_accuracy_fraction(self) -> float:
        return self.full_accuracy / self.requests if self.requests else 0.0


def run_campaign(config: CampaignConfig, *, seed: int = 0) -> CampaignStats:
    """Run the campaign and return aggregate request statistics.

    System state evolves as independent two-state Markov chains (up/down
    with the configured transition probabilities), which converges to
    i.i.d. Bernoulli(p_steady) marginals — but consecutive epochs are
    *correlated* (outages persist), exactly like real maintenance, so
    request outcomes cluster in time even though long-run rates match
    the analytic model.
    """
    rng = np.random.default_rng(seed)
    up = np.ones(config.n, dtype=bool)
    stats = CampaignStats()
    l = len(config.ms)
    for _ in range(config.epochs):
        go_down = up & (rng.random(config.n) < config.p_fail)
        come_up = ~up & (rng.random(config.n) < config.p_repair)
        up = (up & ~go_down) | come_up
        failed = np.nonzero(~up)[0].tolist()
        stats.max_concurrent_failures = max(
            stats.max_concurrent_failures, len(failed)
        )
        levels = recoverable_levels(list(config.ms), failed, config.n)
        got = len(levels)
        for _ in range(config.requests_per_epoch):
            stats.requests += 1
            stats.levels_histogram[got] = stats.levels_histogram.get(got, 0) + 1
            if got == 0:
                stats.blackout += 1
                stats.error_sum += 1.0
            else:
                stats.error_sum += config.errors[got - 1]
                if got == l:
                    stats.full_accuracy += 1
                else:
                    stats.degraded += 1
    return stats
