"""Time-stepped campaign simulation.

Plays out a scientific campaign the way the paper's introduction frames
it (ITER-style: experiments steered by access to historical data): at
every epoch, storage systems independently fail and recover, analyses
request stored objects, and the simulator records what quality each
request actually received.  Aggregated over a long campaign, this yields
the empirical availability/accuracy statistics that the Eq. 5 design
target should predict — including regimes the analytic model does not
cover (repair backlogs, correlated outages).

Beyond the default independent per-epoch Markov chains, a campaign can
draw its outages from a *failure model* — anything with
``sample_failed_ids(n)`` (e.g. :class:`~repro.storage.failures.
CorrelatedFailureModel`), an epoch-indexed callable, or a
:class:`~repro.chaos.FaultPlan` whose ``system.outage`` occurrence
windows are interpreted as epoch windows — and a *step hook* can
reconfigure the object's fault tolerance mid-campaign (the control
plane's reconfiguration loop plugs in here).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..core.gathering import recoverable_levels

__all__ = [
    "CampaignConfig",
    "CampaignStats",
    "run_campaign",
    "plan_outages_at_epoch",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of a campaign simulation.

    Attributes
    ----------
    n:
        Number of storage systems.
    p_fail:
        Per-epoch probability an up system goes down.
    p_repair:
        Per-epoch probability a down system comes back.  Steady-state
        unavailability is ``p_fail / (p_fail + p_repair)``; pick the two
        so it matches the availability model's ``p`` when comparing.
    ms:
        Fault-tolerance configuration of the stored object.
    errors:
        Per-level reconstruction errors e_j.
    epochs:
        Campaign length.
    requests_per_epoch:
        Analysis requests issued per epoch.
    """

    n: int
    p_fail: float
    p_repair: float
    ms: tuple[int, ...]
    errors: tuple[float, ...]
    epochs: int = 10_000
    requests_per_epoch: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.p_fail < 1 or not 0 < self.p_repair <= 1:
            raise ValueError("p_fail and p_repair must be in (0, 1]")
        if len(self.ms) != len(self.errors):
            raise ValueError("ms and errors must align")
        _check_ms(self.ms, self.n)
        if self.epochs < 1 or self.requests_per_epoch < 1:
            raise ValueError("epochs and requests_per_epoch must be >= 1")

    @property
    def steady_state_p(self) -> float:
        """Long-run per-system unavailability of the up/down Markov chain."""
        return self.p_fail / (self.p_fail + self.p_repair)


def _check_ms(ms, n: int) -> None:
    if any(a <= b for a, b in zip(ms, ms[1:])):
        raise ValueError("ms must be strictly decreasing")
    if ms[0] >= n or ms[-1] < 1:
        raise ValueError("need n > m_1 and m_l >= 1")


@dataclass
class CampaignStats:
    """What the campaign's analyses actually experienced."""

    requests: int = 0
    full_accuracy: int = 0
    degraded: int = 0
    blackout: int = 0
    error_sum: float = 0.0
    levels_histogram: dict[int, int] = field(default_factory=dict)
    max_concurrent_failures: int = 0
    #: Per-epoch rows (only when ``record_trajectory=True``): epoch,
    #: failure count, recoverable level count, active ms, request error.
    trajectory: list[dict] = field(default_factory=list)

    @property
    def mean_error(self) -> float:
        return self.error_sum / self.requests if self.requests else 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests that got *some* data."""
        if not self.requests:
            return 1.0
        return 1.0 - self.blackout / self.requests

    @property
    def full_accuracy_fraction(self) -> float:
        return self.full_accuracy / self.requests if self.requests else 0.0


def plan_outages_at_epoch(plan, epoch: int, n: int) -> list[int]:
    """Which systems a :class:`~repro.chaos.FaultPlan` takes down at
    ``epoch``.

    The injector has no wall clock, so a campaign reinterprets each
    ``system.outage`` spec's occurrence window ``[start, stop)`` as an
    *epoch* window.  Probabilistic specs draw per (plan seed, spec,
    system, epoch) via the same hash-derived scheme as the injector —
    never from shared-RNG call order — so an identical plan replays an
    identical outage sequence regardless of what else the caller does.
    """
    down: set[int] = set()
    for pos, spec in enumerate(plan.specs):
        if spec.site != "system.outage":
            continue
        if epoch < spec.start:
            continue
        if spec.stop is not None and epoch >= spec.stop:
            continue
        sids = (
            [int(spec.where["system_id"])]
            if "system_id" in spec.where
            else list(range(n))
        )
        for sid in sids:
            if not 0 <= sid < n:
                continue
            if spec.probability >= 1.0:
                down.add(sid)
                continue
            digest = hashlib.sha256(
                f"{plan.seed}|outage|{pos}|{sid}|{epoch}".encode()
            ).digest()
            draw = int.from_bytes(digest[:8], "big") / float(2**64)
            if draw < spec.probability:
                down.add(sid)
    return sorted(down)


def _failures_for_epoch(failure_model, epoch: int, n: int) -> list[int]:
    """Resolve one epoch's outage set from whatever model was given."""
    failed_at = getattr(failure_model, "failed_at", None)
    if failed_at is not None:
        return sorted(set(int(i) for i in failed_at(epoch, n)))
    if hasattr(failure_model, "specs"):  # a FaultPlan
        return plan_outages_at_epoch(failure_model, epoch, n)
    if callable(failure_model):
        return sorted(set(int(i) for i in failure_model(epoch, n)))
    sample = getattr(failure_model, "sample_failed_ids", None)
    if sample is not None:
        return sorted(set(int(i) for i in sample(n)))
    raise TypeError(
        "failure_model must be a FaultPlan, expose sample_failed_ids(n) "
        "or failed_at(epoch, n), or be callable(epoch, n)"
    )


def run_campaign(
    config: CampaignConfig,
    *,
    seed: int = 0,
    failure_model=None,
    step_hook=None,
    record_trajectory: bool = False,
) -> CampaignStats:
    """Run the campaign and return aggregate request statistics.

    By default system state evolves as independent two-state Markov
    chains (up/down with the configured transition probabilities), which
    converges to i.i.d. Bernoulli(p_steady) marginals — but consecutive
    epochs are *correlated* (outages persist), exactly like real
    maintenance, so request outcomes cluster in time even though
    long-run rates match the analytic model.

    ``failure_model`` replaces the Markov chain: a
    :class:`~repro.chaos.FaultPlan` (``system.outage`` windows read as
    epoch windows), any object with ``sample_failed_ids(n)`` (drawn
    fresh each epoch — e.g. :class:`~repro.storage.failures.
    CorrelatedFailureModel` for region-shared-fate outages) or
    ``failed_at(epoch, n)``, or a plain ``callable(epoch, n)``.

    ``step_hook(epoch, failed, ms)`` is called once per epoch after the
    outage draw and before requests are served; returning a new
    strictly decreasing ``ms`` tuple (same length) reconfigures the
    object from this epoch on — the control-plane operator's seam.

    ``record_trajectory`` appends one row per epoch to
    ``stats.trajectory``.  The default call (no new arguments) is
    byte-for-byte identical to the pre-hook behaviour: the RNG stream
    and every statistic are untouched.
    """
    rng = np.random.default_rng(seed)
    up = np.ones(config.n, dtype=bool)
    stats = CampaignStats()
    ms = tuple(config.ms)
    errors = tuple(config.errors)
    for epoch in range(config.epochs):
        if failure_model is None:
            go_down = up & (rng.random(config.n) < config.p_fail)
            come_up = ~up & (rng.random(config.n) < config.p_repair)
            up = (up & ~go_down) | come_up
            failed = np.nonzero(~up)[0].tolist()
        else:
            failed = _failures_for_epoch(failure_model, epoch, config.n)
        stats.max_concurrent_failures = max(
            stats.max_concurrent_failures, len(failed)
        )
        if step_hook is not None:
            new_ms = step_hook(epoch, list(failed), ms)
            if new_ms is not None:
                new_ms = tuple(int(m) for m in new_ms)
                if len(new_ms) != len(errors):
                    raise ValueError(
                        "step_hook must keep the level count unchanged"
                    )
                _check_ms(new_ms, config.n)
                ms = new_ms
        levels = recoverable_levels(list(ms), failed, config.n)
        got = len(levels)
        err = 1.0 if got == 0 else errors[got - 1]
        for _ in range(config.requests_per_epoch):
            stats.requests += 1
            stats.levels_histogram[got] = stats.levels_histogram.get(got, 0) + 1
            if got == 0:
                stats.blackout += 1
                stats.error_sum += 1.0
            else:
                stats.error_sum += errors[got - 1]
                if got == len(ms):
                    stats.full_accuracy += 1
                else:
                    stats.degraded += 1
        if record_trajectory:
            stats.trajectory.append(
                {
                    "epoch": epoch,
                    "failed": len(failed),
                    "levels": got,
                    "ms": list(ms),
                    "error": err,
                }
            )
    return stats
