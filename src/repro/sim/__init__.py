"""Monte Carlo and campaign simulation: empirical validation of the
availability / expected-error models."""

from .campaign import (
    CampaignConfig,
    CampaignStats,
    plan_outages_at_epoch,
    run_campaign,
)
from .montecarlo import (
    MonteCarloResult,
    simulate_expected_error,
    simulate_unavailability,
)

__all__ = [
    "MonteCarloResult",
    "simulate_expected_error",
    "simulate_unavailability",
    "CampaignConfig",
    "CampaignStats",
    "plan_outages_at_epoch",
    "run_campaign",
]
