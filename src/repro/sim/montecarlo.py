"""Monte Carlo validation of the availability / expected-error models.

The analytic formulas of §2.1 and §3.2 (Eqs. 1, 2, 4, 5) assume i.i.d.
Bernoulli outages.  This module samples outage vectors directly and
measures the empirical quantities, giving an independent check of every
closed form — and a way to quantify how far reality drifts when the
independence assumption is broken (correlated failures), which the
analytic model cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.availability import expected_relative_error
from ..storage.failures import CorrelatedFailureModel

__all__ = ["MonteCarloResult", "simulate_expected_error", "simulate_unavailability"]


@dataclass
class MonteCarloResult:
    """Empirical estimate with its standard error and the analytic value."""

    empirical: float
    std_error: float
    analytic: float
    trials: int

    @property
    def z_score(self) -> float:
        """Standardised deviation of the empirical estimate from the
        analytic prediction (|z| < ~4 passes at any reasonable trials)."""
        if self.std_error == 0:
            return 0.0 if self.empirical == self.analytic else float("inf")
        return (self.empirical - self.analytic) / self.std_error


def _bernoulli_outages(
    n: int, p: float, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """(trials,) failure counts under i.i.d. outages."""
    return rng.binomial(n, p, size=trials)


def simulate_unavailability(
    n: int,
    p: float,
    tolerance: int,
    *,
    trials: int = 200_000,
    seed: int = 0,
) -> MonteCarloResult:
    """Empirical P(N > tolerance) vs the Eq. 2 binomial tail."""
    from ..core.availability import prob_more_than_k_failures

    rng = np.random.default_rng(seed)
    counts = _bernoulli_outages(n, p, trials, rng)
    hits = counts > tolerance
    emp = float(hits.mean())
    se = float(hits.std(ddof=1) / np.sqrt(trials))
    return MonteCarloResult(
        emp, se, prob_more_than_k_failures(n, tolerance, p), trials
    )


def simulate_expected_error(
    n: int,
    p: float,
    ms: list[int],
    errors: list[float],
    *,
    trials: int = 200_000,
    seed: int = 0,
    e0: float = 1.0,
    correlated: CorrelatedFailureModel | None = None,
) -> MonteCarloResult:
    """Empirical E[relative error] vs the Eq. 5 closed form.

    Each trial samples an outage vector, determines the deepest
    recoverable level (N <= m_j for a prefix because m is strictly
    decreasing), and scores that level's error (or ``e0`` if even level
    1 is lost).  Passing ``correlated`` replaces the i.i.d. sampler with
    region-shared-fate failures; the analytic value is still the Eq. 5
    i.i.d. prediction, so the result quantifies the model violation.
    """
    if any(a <= b for a, b in zip(ms, ms[1:])) or not ms:
        raise ValueError("ms must be non-empty and strictly decreasing")
    if len(ms) != len(errors):
        raise ValueError("ms and errors must align")
    rng = np.random.default_rng(seed)
    if correlated is None:
        counts = _bernoulli_outages(n, p, trials, rng)
    else:
        counts = np.array(
            [len(correlated.sample_failed_ids(n)) for _ in range(trials)]
        )
    # Vectorised scoring: thresholds m_l < m_{l-1} < ... < m_1.
    ms_arr = np.asarray(ms)
    err_arr = np.asarray(errors, dtype=np.float64)
    # deepest recoverable level index for each trial: the largest j with
    # counts <= m_j; since ms is decreasing, that is the count of levels
    # whose m_j >= N.
    recoverable = (counts[:, None] <= ms_arr[None, :]).sum(axis=1)
    scores = np.where(
        recoverable == 0, e0, err_arr[np.maximum(recoverable - 1, 0)]
    )
    emp = float(scores.mean())
    se = float(scores.std(ddof=1) / np.sqrt(trials))
    analytic = expected_relative_error(n, p, list(ms), list(errors), e0=e0)
    return MonteCarloResult(emp, se, analytic, trials)
