"""Systematic Reed-Solomon erasure codes over GF(2^8).

This is the replacement for ``liberasurecode`` used by RAPIDS.  An
``(k, m)`` code splits a payload into ``k`` equal data fragments and
produces ``m`` parity fragments; the original payload is recoverable from
*any* ``k`` of the ``k + m`` fragments (the MDS property), which is
exactly the guarantee the availability model in the paper relies on.

Construction: start from a ``(k+m) x k`` Vandermonde matrix, then
row-reduce so the top ``k x k`` block is the identity.  Row operations
preserve the any-k-rows-invertible property, and the identity block makes
the code systematic (data fragments are verbatim slices of the payload,
so the common no-failure read path needs no decode at all).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from . import gf256, kernels, matrix

__all__ = ["RSCode", "pad_to_fragments", "unpad"]

_MAX_TOTAL = 256

#: Per-code bound on cached decode/reconstruct plans.  Each entry is a
#: pointer to an interned :class:`~repro.ec.kernels.EncodePlan`; the cap
#: only guards pathological callers cycling through many erasure
#: patterns of a wide code.
_PLAN_CACHE_LIMIT = 512


def _systematic_generator(k: int, n: int) -> np.ndarray:
    """Build the systematic ``n x k`` generator matrix."""
    vand = matrix.vandermonde(n, k)
    top_inv = matrix.invert(vand[:k])
    gen = matrix.matmul(vand, top_inv)
    # Guard against construction bugs: the top block must be identity.
    assert matrix.is_identity(gen[:k])
    return gen


@dataclass(frozen=True)
class RSCode:
    """A systematic (k, m) Reed-Solomon erasure code.

    Parameters
    ----------
    k:
        Number of data fragments.
    m:
        Number of parity fragments.

    Notes
    -----
    ``k + m`` must not exceed 256 (the field size bounds the number of
    distinct evaluation points).  Instances are cheap: the generator
    matrix is built once in ``__post_init__`` and cached.
    """

    k: int
    m: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.m < 0:
            raise ValueError(f"m must be >= 0, got {self.m}")
        if self.k + self.m > _MAX_TOTAL:
            raise ValueError(
                f"k + m = {self.k + self.m} exceeds GF(256) limit of {_MAX_TOTAL}"
            )
        object.__setattr__(self, "_gen", _systematic_generator(self.k, self.n))
        # Planned encode kernel over the parity rows (the identity block
        # needs no arithmetic) plus per-erasure-pattern decode plans.
        object.__setattr__(
            self,
            "_parity_plan",
            kernels.plan_for(self._gen[self.k :]) if self.m else None,
        )
        object.__setattr__(self, "_decode_plans", {})

    @property
    def n(self) -> int:
        """Total number of fragments (k + m)."""
        return self.k + self.m

    @property
    def generator(self) -> np.ndarray:
        """The ``n x k`` systematic generator matrix (read-only view)."""
        g = self._gen.view()
        g.flags.writeable = False
        return g

    # -- encoding -----------------------------------------------------

    def encode(
        self, data: bytes | np.ndarray, *, workers: int | None = None
    ) -> list[np.ndarray]:
        """Encode a payload into ``n`` fragments.

        The payload is padded to a multiple of ``k`` (see
        :func:`pad_to_fragments`); each returned fragment is a uint8 array
        of identical length ``ceil((len(data)+8)/k)`` rounded for padding.
        Fragment ``i`` for ``i < k`` is a verbatim slice of the padded
        payload; fragments ``k..n-1`` are parity.  ``workers`` > 1
        parallelises the parity kernel across fragment chunks.
        """
        shards = pad_to_fragments(data, self.k)
        if self.m == 0:
            return [shards[i] for i in range(self.k)]
        parity = self._parity_plan.apply(shards, workers=workers)
        return [shards[i] for i in range(self.k)] + [parity[i] for i in range(self.m)]

    def encode_shards(
        self, shards: np.ndarray, *, workers: int | None = None
    ) -> np.ndarray:
        """Encode pre-split data: ``shards`` is (k, L) uint8, returns (n, L)."""
        shards = np.asarray(shards, dtype=np.uint8)
        if shards.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data shards, got {shards.shape[0]}")
        out = np.empty((self.n, shards.shape[1]), dtype=np.uint8)
        out[: self.k] = shards
        if self.m:
            self._parity_plan.apply(shards, out=out[self.k :], workers=workers)
        return out

    # -- decoding -----------------------------------------------------

    def decode(
        self,
        fragments: dict[int, np.ndarray],
        *,
        payload_len: int | None = None,
        workers: int | None = None,
    ) -> bytes:
        """Recover the original payload from any ``k`` fragments.

        Parameters
        ----------
        fragments:
            Mapping from fragment index (0-based, data fragments first)
            to the fragment bytes.  At least ``k`` entries are required.
        payload_len:
            If given, overrides the length header (for raw shard decode).
        workers:
            Optional thread fan-out across fragment chunks.
        """
        shards = self.decode_shards(fragments, workers=workers)
        return unpad(shards, payload_len=payload_len)

    def _gather_rows(
        self, fragments: dict[int, np.ndarray]
    ) -> tuple[list[int], list[np.ndarray]]:
        """Select the k lowest-index fragments as validated byte rows."""
        if len(fragments) < self.k:
            raise ValueError(
                f"need at least {self.k} fragments to decode, got {len(fragments)}"
            )
        idx = sorted(fragments)[: self.k]
        bad = [i for i in idx if not 0 <= i < self.n]
        if bad:
            raise ValueError(f"fragment indices out of range: {bad}")
        rows = [
            np.frombuffer(memoryview(fragments[i]), dtype=np.uint8) for i in idx
        ]
        lengths = [r.size for r in rows]
        if len(set(lengths)) > 1:
            # Name the offenders rather than letting shape errors surface
            # from deep inside the kernel: the expected length is the one
            # the majority of fragments agree on.
            expected, _ = Counter(lengths).most_common(1)[0]
            offending = [
                (i, n) for i, n in zip(idx, lengths) if n != expected
            ]
            raise ValueError(
                "fragments have unequal lengths: expected "
                f"{expected} bytes but "
                + ", ".join(f"fragment {i} has {n}" for i, n in offending)
            )
        return idx, rows

    def _decode_plan(self, idx: tuple[int, ...]) -> kernels.EncodePlan:
        """Cached planned kernel for the inverted ``gen[idx]`` submatrix."""
        plan = self._decode_plans.get(idx)
        if plan is None:
            inv = matrix.invert(self._gen[list(idx)])
            plan = kernels.plan_for(inv)
            if len(self._decode_plans) >= _PLAN_CACHE_LIMIT:
                self._decode_plans.clear()
            self._decode_plans[idx] = plan
        return plan

    def decode_shards(
        self, fragments: dict[int, np.ndarray], *, workers: int | None = None
    ) -> np.ndarray:
        """Recover the (k, L) data-shard matrix from any k fragments."""
        idx, rows = self._gather_rows(fragments)
        # Fast path: all k data fragments present, no algebra needed.
        if idx == list(range(self.k)):
            return np.stack(rows)
        return self._decode_plan(tuple(idx)).apply(rows, workers=workers)

    def reconstruct_fragment(
        self,
        fragments: dict[int, np.ndarray],
        target: int,
        *,
        workers: int | None = None,
    ) -> np.ndarray:
        """Rebuild a single lost fragment (data or parity) from any k others.

        Uses a cached single-row plan for ``gen[target] @ gen[idx]^-1``,
        so repair applies one combined pass over the survivors instead of
        a full decode followed by a re-encode.
        """
        if not 0 <= target < self.n:
            raise ValueError(f"fragment index out of range: {target}")
        idx, rows = self._gather_rows(fragments)
        if target in idx:
            return rows[idx.index(target)].copy()
        key = (tuple(idx), target)
        plan = self._decode_plans.get(key)
        if plan is None:
            inv = matrix.invert(self._gen[list(idx)])
            coeffs = matrix.matmul(self._gen[target : target + 1], inv)
            plan = kernels.plan_for(coeffs)
            if len(self._decode_plans) >= _PLAN_CACHE_LIMIT:
                self._decode_plans.clear()
            self._decode_plans[key] = plan
        return plan.apply(rows, workers=workers)[0]


def pad_to_fragments(data: bytes | np.ndarray, k: int) -> np.ndarray:
    """Split ``data`` into a (k, L) uint8 matrix with an 8-byte length header.

    The original length is prepended little-endian so that :func:`unpad`
    can strip the zero padding without out-of-band metadata.
    """
    raw = np.frombuffer(memoryview(data), dtype=np.uint8)
    header = np.frombuffer(np.uint64(raw.size).tobytes(), dtype=np.uint8)
    total = raw.size + 8
    frag_len = -(-total // k)  # ceil division
    padded = np.zeros(frag_len * k, dtype=np.uint8)
    padded[:8] = header
    padded[8 : 8 + raw.size] = raw
    return padded.reshape(k, frag_len)


def unpad(shards: np.ndarray, *, payload_len: int | None = None) -> bytes:
    """Inverse of :func:`pad_to_fragments`: flatten and strip padding."""
    flat = np.ascontiguousarray(shards).reshape(-1)
    if payload_len is None:
        payload_len = int(np.frombuffer(flat[:8].tobytes(), dtype=np.uint64)[0])
    if payload_len > flat.size - 8:
        raise ValueError(
            f"corrupt length header: {payload_len} > {flat.size - 8} available"
        )
    return flat[8 : 8 + payload_len].tobytes()
