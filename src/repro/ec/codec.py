"""Fragment-level erasure-coding API used by the RAPIDS pipeline.

Wraps :class:`repro.ec.reed_solomon.RSCode` with the vocabulary of the
paper: a *fault-tolerance configuration* ``m`` on ``n`` storage systems
means the level is split into ``k = n - m`` data fragments plus ``m``
parity fragments, one fragment per system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from .reed_solomon import RSCode

__all__ = ["ECConfig", "ErasureCodec", "EncodedLevel", "encoded_fragment_len"]


def encoded_fragment_len(k: int, payload_len: int) -> int:
    """Exact byte length of each fragment encoding a ``payload_len`` payload.

    Mirrors :func:`repro.ec.reed_solomon.pad_to_fragments`: the payload
    gains an 8-byte length header and is zero-padded to a multiple of
    ``k``.  The streaming pipeline uses this to size shared-memory
    segments and tile chunk tables before any fragment bytes exist.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if payload_len < 0:
        raise ValueError(f"payload_len must be >= 0, got {payload_len}")
    return -(-(payload_len + 8) // k)


@lru_cache(maxsize=512)
def _code(k: int, m: int) -> RSCode:
    return RSCode(k, m)


@dataclass(frozen=True)
class ECConfig:
    """Fault-tolerance configuration of one refactored level.

    ``n`` fragments total, of which ``m`` are parity; tolerates any ``m``
    concurrent storage-system outages (paper §3.2).
    """

    n: int
    m: int

    def __post_init__(self) -> None:
        if not 0 <= self.m < self.n:
            raise ValueError(f"require 0 <= m < n, got n={self.n}, m={self.m}")

    @property
    def k(self) -> int:
        """Number of data fragments (n - m)."""
        return self.n - self.m

    @property
    def storage_expansion(self) -> float:
        """Bytes stored per payload byte: n / k."""
        return self.n / self.k

    def fragment_size(self, payload_size: float) -> float:
        """Size of each fragment for a payload of ``payload_size`` bytes.

        Matches the paper's s_j / (n - m_j) accounting (the +8-byte length
        header is negligible at scientific-data scales and is ignored by
        the analytic models, but is physically present in encoded bytes).
        """
        return payload_size / self.k

    def parity_overhead(self, payload_size: float) -> float:
        """Total parity bytes: m / (n - m) * payload (paper Eq. 6 numerator)."""
        return self.m / self.k * payload_size


@dataclass
class EncodedLevel:
    """The n erasure-coded fragments of one refactored level."""

    config: ECConfig
    fragments: list[np.ndarray]
    payload_size: int
    level_index: int = 0
    meta: dict = field(default_factory=dict)
    _blobs: list[bytes] | None = field(default=None, repr=False, compare=False)

    @property
    def fragment_nbytes(self) -> int:
        return int(self.fragments[0].nbytes) if self.fragments else 0

    def fragment_blobs(self) -> list[bytes]:
        """The fragments as ``bytes``, materialised once and shared.

        Placement, checksumming, and fragment-file writes all need the
        same serialised view; caching it here keeps the pipeline to one
        ``tobytes`` copy per fragment instead of one per consumer.
        """
        if self._blobs is None:
            self._blobs = [
                np.ascontiguousarray(f).tobytes() for f in self.fragments
            ]
        return self._blobs


class ErasureCodec:
    """Encode/decode refactored levels with per-level FT configurations.

    ``workers`` sets the default thread fan-out the planned kernels use
    across fragment chunks (``None`` or 1 runs inline); per-call
    overrides are accepted by every method.
    """

    def __init__(self, n: int, *, workers: int | None = None) -> None:
        if not 2 <= n <= 256:
            raise ValueError(f"n must be in [2, 256], got {n}")
        self.n = n
        self.workers = workers
        #: Optional chaos seam (see :mod:`repro.chaos`): consulted at
        #: the top of every decode.  Keep decodes serial (workers=1)
        #: when injecting here so occurrence windows see a stable order.
        self.injector = None

    def attach_injector(self, injector) -> None:
        """Attach (or clear) a chaos injector."""
        self.injector = injector

    def encode_level(
        self,
        payload: bytes | np.ndarray,
        m: int,
        *,
        level_index: int = 0,
        workers: int | None = None,
    ) -> EncodedLevel:
        """Erasure-code one level payload with ``m`` parity fragments."""
        cfg = ECConfig(self.n, m)
        code = _code(cfg.k, cfg.m)
        nbytes = (
            len(payload) if isinstance(payload, (bytes, bytearray)) else payload.nbytes
        )
        return EncodedLevel(
            config=cfg,
            fragments=code.encode(payload, workers=workers or self.workers),
            payload_size=int(nbytes),
            level_index=level_index,
        )

    def decode_level(
        self, encoded: EncodedLevel | None = None, *,
        config: ECConfig | None = None,
        fragments: dict[int, np.ndarray] | None = None,
        workers: int | None = None,
        level_index: int | None = None,
    ) -> bytes:
        """Decode a level from an :class:`EncodedLevel` or a raw fragment map.

        Raises :class:`ValueError` if fewer than ``k`` fragments are
        supplied — the caller (the restoration component) treats that as
        "this level is unavailable".
        """
        if encoded is not None:
            config = encoded.config
            fragments = {i: f for i, f in enumerate(encoded.fragments)}
            if level_index is None:
                level_index = encoded.level_index
        if config is None or fragments is None:
            raise ValueError("provide either an EncodedLevel or (config, fragments)")
        if self.injector is not None:
            self.injector.check(
                "ec.decode", level=level_index, k=config.k, m=config.m,
            )
        code = _code(config.k, config.m)
        return code.decode(fragments, workers=workers or self.workers)

    def repair_fragment(
        self,
        config: ECConfig,
        fragments: dict[int, np.ndarray],
        target: int,
        *,
        workers: int | None = None,
    ) -> np.ndarray:
        """Rebuild a lost fragment for re-placement on a new storage system."""
        code = _code(config.k, config.m)
        return code.reconstruct_fragment(
            fragments, target, workers=workers or self.workers
        )
