"""Striped erasure coding for large payloads.

Encoding a multi-gigabyte level as one RS codeword requires the whole
payload in memory and serialises the matrix multiply.  Production EC
systems (including liberasurecode's callers) split the payload into
fixed-size *stripes* and encode each independently: memory stays
bounded, stripes parallelise across cores, and a torn stripe only
corrupts itself.

A striped fragment is the concatenation of its per-stripe fragments, so
storage/placement code is oblivious to striping; only the codec needs
the stripe size to slice fragments back apart.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from .reed_solomon import RSCode

__all__ = ["StripedCode", "StripedEncoding"]


@dataclass
class StripedEncoding:
    """The result of striped encoding: n fragments + reassembly info."""

    fragments: list[np.ndarray]
    stripe_fragment_sizes: list[int]
    payload_len: int
    k: int
    m: int

    @property
    def num_stripes(self) -> int:
        return len(self.stripe_fragment_sizes)


def _encode_stripe(args) -> list[bytes]:
    k, m, chunk = args
    return [f.tobytes() for f in RSCode(k, m).encode(chunk)]


class StripedCode:
    """A (k, m) Reed-Solomon code applied stripe by stripe.

    Parameters
    ----------
    k, m:
        Code parameters (shared by every stripe).
    stripe_bytes:
        Payload bytes per stripe (the last stripe may be short).
    """

    def __init__(self, k: int, m: int, *, stripe_bytes: int = 1 << 20) -> None:
        if stripe_bytes < k:
            raise ValueError("stripe_bytes must be at least k")
        self.code = RSCode(k, m)
        self.stripe_bytes = stripe_bytes

    @property
    def k(self) -> int:
        return self.code.k

    @property
    def m(self) -> int:
        return self.code.m

    @property
    def n(self) -> int:
        return self.code.n

    def _stripes(self, payload: bytes) -> list[bytes]:
        return [
            payload[off : off + self.stripe_bytes]
            for off in range(0, max(len(payload), 1), self.stripe_bytes)
        ]

    def encode(
        self, payload: bytes, *, processes: int = 1
    ) -> StripedEncoding:
        """Encode a payload; stripes run in parallel when processes > 1."""
        stripes = self._stripes(payload)
        jobs = [(self.k, self.m, s) for s in stripes]
        if processes > 1 and len(stripes) > 1:
            with ProcessPoolExecutor(max_workers=processes) as pool:
                per_stripe = list(pool.map(_encode_stripe, jobs))
        else:
            per_stripe = [_encode_stripe(j) for j in jobs]
        sizes = [len(frags[0]) for frags in per_stripe]
        fragments = [
            np.frombuffer(
                b"".join(frags[i] for frags in per_stripe), dtype=np.uint8
            )
            for i in range(self.n)
        ]
        return StripedEncoding(
            fragments=fragments,
            stripe_fragment_sizes=sizes,
            payload_len=len(payload),
            k=self.k,
            m=self.m,
        )

    def decode(
        self, enc_info: StripedEncoding, fragments: dict[int, np.ndarray]
    ) -> bytes:
        """Recover the payload from any k (striped) fragments."""
        if len(fragments) < self.k:
            raise ValueError(
                f"need at least {self.k} fragments, got {len(fragments)}"
            )
        out = bytearray()
        offsets = np.concatenate(
            [[0], np.cumsum(enc_info.stripe_fragment_sizes)]
        )
        for s in range(enc_info.num_stripes):
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            stripe_frags = {
                i: np.asarray(frag)[lo:hi] for i, frag in fragments.items()
            }
            out += self.code.decode(stripe_frags)
        if len(out) != enc_info.payload_len:
            raise ValueError(
                f"reassembled {len(out)} bytes, expected {enc_info.payload_len}"
            )
        return bytes(out)

    def repair_fragment(
        self,
        enc_info: StripedEncoding,
        fragments: dict[int, np.ndarray],
        target: int,
    ) -> np.ndarray:
        """Rebuild one lost striped fragment from any k others."""
        offsets = np.concatenate(
            [[0], np.cumsum(enc_info.stripe_fragment_sizes)]
        )
        parts = []
        for s in range(enc_info.num_stripes):
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            stripe_frags = {
                i: np.asarray(frag)[lo:hi] for i, frag in fragments.items()
            }
            parts.append(self.code.reconstruct_fragment(stripe_frags, target))
        return np.concatenate(parts)
