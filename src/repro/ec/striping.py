"""Striped erasure coding for large payloads.

Encoding a multi-gigabyte level as one RS codeword requires the whole
payload in memory and serialises the matrix multiply.  Production EC
systems (including liberasurecode's callers) split the payload into
fixed-size *stripes* and encode each independently: memory stays
bounded, stripes parallelise across cores, and a torn stripe only
corrupts itself.

A striped fragment is the concatenation of its per-stripe fragments, so
storage/placement code is oblivious to striping; only the codec needs
the stripe size to slice fragments back apart.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from .reed_solomon import RSCode

__all__ = ["StripedCode", "StripedEncoding"]


@dataclass
class StripedEncoding:
    """The result of striped encoding: n fragments + reassembly info."""

    fragments: list[np.ndarray]
    stripe_fragment_sizes: list[int]
    payload_len: int
    k: int
    m: int

    @property
    def num_stripes(self) -> int:
        return len(self.stripe_fragment_sizes)


def _encode_stripe(args) -> list[bytes]:
    # Process-pool worker: results cross the pipe as bytes.  Each worker
    # process builds (and then reuses, via the plan cache) its own code.
    k, m, chunk = args
    return [f.tobytes() for f in RSCode(k, m).encode(chunk)]


class StripedCode:
    """A (k, m) Reed-Solomon code applied stripe by stripe.

    Parameters
    ----------
    k, m:
        Code parameters (shared by every stripe).
    stripe_bytes:
        Payload bytes per stripe (the last stripe may be short).
    """

    def __init__(self, k: int, m: int, *, stripe_bytes: int = 1 << 20) -> None:
        if stripe_bytes < k:
            raise ValueError("stripe_bytes must be at least k")
        self.code = RSCode(k, m)
        self.stripe_bytes = stripe_bytes

    @property
    def k(self) -> int:
        return self.code.k

    @property
    def m(self) -> int:
        return self.code.m

    @property
    def n(self) -> int:
        return self.code.n

    def _stripes(self, payload: bytes) -> list[bytes]:
        return [
            payload[off : off + self.stripe_bytes]
            for off in range(0, max(len(payload), 1), self.stripe_bytes)
        ]

    def encode(
        self, payload: bytes, *, processes: int = 1, use_threads: bool = True
    ) -> StripedEncoding:
        """Encode a payload; stripes run in parallel when ``processes > 1``.

        With ``use_threads`` (the default) the stripe fan-out runs on a
        thread pool: the planned GF(256) kernels release the GIL, the
        shared :class:`RSCode` (and its cached encode plan) is reused by
        every stripe, and fragments stay NumPy arrays end to end — no
        pickling, no ``tobytes`` round-trips.  ``use_threads=False``
        keeps the original process-pool path for workloads that want
        full interpreter isolation.
        """
        stripes = self._stripes(payload)
        if processes > 1 and len(stripes) > 1 and not use_threads:
            jobs = [(self.k, self.m, s) for s in stripes]
            with ProcessPoolExecutor(max_workers=processes) as pool:
                per_stripe = [
                    [np.frombuffer(b, dtype=np.uint8) for b in frags]
                    for frags in pool.map(_encode_stripe, jobs)
                ]
        else:
            from ..parallel.threads import thread_map

            per_stripe = thread_map(
                self.code.encode, stripes, workers=processes
            )
        sizes = [int(frags[0].size) for frags in per_stripe]
        fragments = [
            np.concatenate([frags[i] for frags in per_stripe])
            for i in range(self.n)
        ]
        return StripedEncoding(
            fragments=fragments,
            stripe_fragment_sizes=sizes,
            payload_len=len(payload),
            k=self.k,
            m=self.m,
        )

    def decode(
        self,
        enc_info: StripedEncoding,
        fragments: dict[int, np.ndarray],
        *,
        workers: int = 1,
    ) -> bytes:
        """Recover the payload from any k (striped) fragments.

        ``workers`` > 1 decodes independent stripes on a thread pool.
        """
        if len(fragments) < self.k:
            raise ValueError(
                f"need at least {self.k} fragments, got {len(fragments)}"
            )
        offsets = np.concatenate(
            [[0], np.cumsum(enc_info.stripe_fragment_sizes)]
        )
        spans = [
            (int(offsets[s]), int(offsets[s + 1]))
            for s in range(enc_info.num_stripes)
        ]

        def _decode_span(span: tuple[int, int]) -> bytes:
            lo, hi = span
            return self.code.decode(
                {i: np.asarray(frag)[lo:hi] for i, frag in fragments.items()}
            )

        from ..parallel.threads import thread_map

        out = b"".join(thread_map(_decode_span, spans, workers=workers))
        if len(out) != enc_info.payload_len:
            raise ValueError(
                f"reassembled {len(out)} bytes, expected {enc_info.payload_len}"
            )
        return out

    def repair_fragment(
        self,
        enc_info: StripedEncoding,
        fragments: dict[int, np.ndarray],
        target: int,
    ) -> np.ndarray:
        """Rebuild one lost striped fragment from any k others."""
        offsets = np.concatenate(
            [[0], np.cumsum(enc_info.stripe_fragment_sizes)]
        )
        parts = []
        for s in range(enc_info.num_stripes):
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            stripe_frags = {
                i: np.asarray(frag)[lo:hi] for i, frag in fragments.items()
            }
            parts.append(self.code.reconstruct_fragment(stripe_frags, target))
        return np.concatenate(parts)
