"""Dense matrix algebra over GF(2^8).

Provides the matrix kernels the Reed-Solomon layer is built on: matrix
multiplication, Gauss-Jordan inversion, and Vandermonde construction.
Matrices are plain ``uint8`` NumPy arrays.  The inner products are
computed via the log/antilog tables with XOR-reduction implemented as a
parity fold over an int accumulator-free formulation: we gather the
product bytes for one output row at a time and XOR-reduce with
``np.bitwise_xor.reduce``, which keeps everything vectorised.
"""

from __future__ import annotations

import numpy as np

from . import gf256

__all__ = [
    "matmul",
    "identity",
    "vandermonde",
    "invert",
    "solve",
    "is_identity",
]


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256).

    ``a`` is (r, k), ``b`` is (k, c); the result is (r, c).  For the
    fragment-encoding case ``c`` is the fragment length (large), so the
    loop is arranged over the small ``k`` dimension with fully vectorised
    row operations.

    This is the *reference* kernel: simple, allocation-heavy, and kept
    unchanged as the ground truth the planned/chunked kernels in
    :mod:`repro.ec.kernels` are benchmarked and equivalence-tested
    against.  Hot paths should use :func:`repro.ec.kernels.planned_matmul`.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("matmul expects 2-D operands")
    r, k = a.shape
    k2, c = b.shape
    if k != k2:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((r, c), dtype=np.uint8)
    # XOR-accumulate rank-1 style updates: out ^= a[:, j:j+1] * b[j, :].
    # Each update is a single table gather over the full output.
    table = gf256.full_mul_table()
    for j in range(k):
        coeffs = a[:, j]  # (r,)
        row = b[j]  # (c,)
        # table[coeffs][:, row] would allocate (r, 256); gather directly:
        out ^= table[np.ix_(coeffs, row)]
    return out


def identity(n: int) -> np.ndarray:
    """The n-by-n identity matrix over GF(256)."""
    return np.eye(n, dtype=np.uint8)


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = i**j over GF(256).

    Any ``cols`` rows taken from the first 256 rows are linearly
    independent provided the evaluation points are distinct, which makes
    this the classical starting point for an MDS generator matrix.

    Built as one log/exp-table expression over a 2-D index grid:
    ``i**j = exp[(log[i] * j) mod 255]`` for ``i > 0``, with row 0 fixed
    up to ``0**0 = 1, 0**j = 0`` afterwards.
    """
    if rows > 256:
        raise ValueError("at most 256 distinct evaluation points in GF(256)")
    logs = gf256.LOG_TABLE[np.arange(rows)].astype(np.int64, copy=False)
    exponents = (logs[:, None] * np.arange(cols)[None, :]) % 255
    out = gf256.EXP_TABLE[exponents]
    if rows and cols:
        out[0, :] = 0
        out[0, 0] = 1
    return np.ascontiguousarray(out, dtype=np.uint8)


def invert(m: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(256) by Gauss-Jordan elimination.

    Raises :class:`numpy.linalg.LinAlgError` if the matrix is singular.
    """
    m = np.asarray(m, dtype=np.uint8)
    n, n2 = m.shape
    if n != n2:
        raise ValueError("matrix must be square")
    aug = np.concatenate([m.copy(), identity(n)], axis=1)
    for col in range(n):
        # Find a pivot at or below the diagonal.
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise np.linalg.LinAlgError("singular matrix over GF(256)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        # Normalise the pivot row.
        pv = aug[col, col]
        if pv != 1:
            aug[col] = gf256.mul(gf256.inv(pv), aug[col])
        # Eliminate every other row in one vectorised sweep.
        factors = aug[:, col].copy()
        factors[col] = 0
        nz = np.nonzero(factors)[0]
        if nz.size:
            table = gf256.full_mul_table()
            aug[nz] ^= table[np.ix_(factors[nz], aug[col])]
    return aug[:, n:].copy()


def solve(m: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``m @ x = rhs`` over GF(256) for possibly wide ``rhs``."""
    return matmul(invert(m), np.asarray(rhs, dtype=np.uint8))


def is_identity(m: np.ndarray) -> bool:
    """True if ``m`` is the identity matrix."""
    m = np.asarray(m)
    return m.ndim == 2 and m.shape[0] == m.shape[1] and bool(
        np.array_equal(m, identity(m.shape[0]))
    )
