"""Cauchy-matrix Reed-Solomon codes.

An alternative MDS construction to the Vandermonde-derived systematic
generator in :mod:`repro.ec.reed_solomon`: the parity block is a Cauchy
matrix ``C[i, j] = 1 / (x_i + y_j)`` over GF(2^8) with distinct ``x_i``
(parity points) and ``y_j`` (data points), ``x_i != y_j``.  Every square
submatrix of a Cauchy matrix is invertible, so ``[I | C^T]^T`` is MDS by
construction — no row reduction needed, and the parity coefficients are
available in closed form (which is why liberasurecode's
``jerasure_rs_cauchy`` backend favours this family).

The class mirrors :class:`~repro.ec.reed_solomon.RSCode`'s interface so
the two families are interchangeable and cross-checked in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import gf256, kernels, matrix
from .reed_solomon import pad_to_fragments, unpad

__all__ = ["CauchyRSCode", "cauchy_matrix"]


def cauchy_matrix(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """The Cauchy matrix C[i, j] = 1 / (x_i + y_j) over GF(2^8).

    Requires all ``x_i`` distinct, all ``y_j`` distinct, and the two
    point sets disjoint (in characteristic 2, x + y = 0 iff x == y).
    """
    xs = np.asarray(xs, dtype=np.uint8)
    ys = np.asarray(ys, dtype=np.uint8)
    if len(set(xs.tolist())) != xs.size or len(set(ys.tolist())) != ys.size:
        raise ValueError("Cauchy points must be distinct")
    if set(xs.tolist()) & set(ys.tolist()):
        raise ValueError("x and y point sets must be disjoint")
    denom = np.bitwise_xor(xs[:, None], ys[None, :])
    return gf256.inv(denom)


@dataclass(frozen=True)
class CauchyRSCode:
    """A systematic (k, m) erasure code with a Cauchy parity block."""

    k: int
    m: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.m < 0:
            raise ValueError(f"m must be >= 0, got {self.m}")
        if self.k + self.m > 256:
            raise ValueError(
                f"k + m = {self.k + self.m} exceeds the GF(256) limit"
            )
        ys = np.arange(self.k, dtype=np.uint8)
        xs = np.arange(self.k, self.k + self.m, dtype=np.uint8)
        gen = np.concatenate(
            [matrix.identity(self.k), cauchy_matrix(xs, ys)]
            if self.m
            else [matrix.identity(self.k)],
            axis=0,
        )
        object.__setattr__(self, "_gen", gen)

    @property
    def n(self) -> int:
        return self.k + self.m

    @property
    def generator(self) -> np.ndarray:
        g = self._gen.view()
        g.flags.writeable = False
        return g

    def encode(self, data: bytes | np.ndarray) -> list[np.ndarray]:
        """Encode a payload into n fragments (data fragments verbatim)."""
        shards = pad_to_fragments(data, self.k)
        if self.m == 0:
            return [shards[i] for i in range(self.k)]
        parity = kernels.planned_matmul(self._gen[self.k :], shards)
        return [shards[i] for i in range(self.k)] + [
            parity[i] for i in range(self.m)
        ]

    def decode(
        self, fragments: dict[int, np.ndarray], *, payload_len: int | None = None
    ) -> bytes:
        """Recover the payload from any k fragments."""
        if len(fragments) < self.k:
            raise ValueError(
                f"need at least {self.k} fragments, got {len(fragments)}"
            )
        idx = sorted(fragments)[: self.k]
        if any(not 0 <= i < self.n for i in idx):
            raise ValueError(f"fragment indices out of range: {idx}")
        rows = [
            np.frombuffer(memoryview(fragments[i]), dtype=np.uint8) for i in idx
        ]
        if idx == list(range(self.k)):
            shards = np.stack(rows)
        else:
            inv = matrix.invert(self._gen[idx])
            shards = kernels.plan_for(inv).apply(rows)
        return unpad(shards, payload_len=payload_len)

    def reconstruct_fragment(
        self, fragments: dict[int, np.ndarray], target: int
    ) -> np.ndarray:
        """Rebuild one lost fragment from any k others."""
        if not 0 <= target < self.n:
            raise ValueError(f"fragment index out of range: {target}")
        idx = sorted(fragments)[: self.k]
        rows = [
            np.frombuffer(memoryview(fragments[i]), dtype=np.uint8) for i in idx
        ]
        if target in idx:
            return rows[idx.index(target)].copy()
        # Single combined pass: gen[target] @ gen[idx]^-1 over the rows.
        coeffs = matrix.matmul(
            self._gen[target : target + 1], matrix.invert(self._gen[idx])
        )
        return kernels.plan_for(coeffs).apply(rows)[0]
