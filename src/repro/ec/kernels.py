"""Planned, cache-blocked GF(256) erasure-coding kernels.

This is the tuned replacement for driving :func:`repro.ec.matrix.matmul`
directly on the encode/decode hot paths.  ``matrix.matmul`` gathers an
``(r, c)`` temporary from the 64 KiB full multiplication table on every
one of its ``k`` inner iterations — ``k`` large allocations and ``k``
passes over an output that does not fit in cache.  The kernels here
instead follow the layout liberasurecode's tuned backends use:

* **Plan once.**  An :class:`EncodePlan` is built per coefficient matrix
  (generator parity block, inverted decode submatrix, or a single
  reconstruction row) and cached, so table lookups, zero/identity
  classification, and matrix inversions never repeat per call.
* **Pair tables.**  Each non-trivial coefficient uses a 65536-entry
  :func:`repro.ec.gf256.pair_mul_table`, multiplying two payload bytes
  per gather through a ``uint16`` view — halving index traffic.
* **Cache blocking.**  The fragment length is processed in chunks sized
  to stay L2-resident (64 KiB by default); all accumulation happens in
  preallocated, aligned scratch buffers with in-place
  ``np.bitwise_xor`` — zero allocations per chunk.
* **Threads, optionally.**  Chunks are independent, and NumPy's gather
  and XOR inner loops release the GIL, so ``apply(..., workers=w)``
  fans chunks out over :func:`repro.parallel.threads.thread_map`
  (inline when ``workers`` is ``None`` or 1).

The kernels are bit-exact with the ``matrix.matmul`` reference path —
the property tests in ``tests/test_kernels.py`` assert byte-identical
fragments across codes, payload sizes, and erasure patterns.
"""

from __future__ import annotations

import threading
from functools import lru_cache

import numpy as np

from . import gf256

__all__ = ["EncodePlan", "plan_for", "planned_matmul", "DEFAULT_CHUNK"]

#: Column-chunk size in bytes.  64 KiB keeps one input chunk, the
#: accumulator, and the scratch buffer comfortably L2-resident; measured
#: optimum on the bench machine (see benchmarks/bench_kernels.py).
DEFAULT_CHUNK = 1 << 16

#: Sentinel marking a coefficient of 1: the gather is skipped entirely
#: and the input chunk is XORed (or copied) straight into the accumulator.
_IDENTITY = object()


class EncodePlan:
    """A precomputed, chunked GF(256) matrix-vector kernel.

    Applies a fixed ``(r, k)`` coefficient matrix to ``k`` equal-length
    byte rows, producing ``r`` output rows — the single primitive behind
    RS encode (parity rows), decode (inverted submatrix), and fragment
    reconstruction (one combined row).  Build via :func:`plan_for` to
    get caching.
    """

    def __init__(self, coeffs: np.ndarray, *, chunk: int = DEFAULT_CHUNK) -> None:
        coeffs = np.ascontiguousarray(coeffs, dtype=np.uint8)
        if coeffs.ndim != 2:
            raise ValueError("EncodePlan expects a 2-D coefficient matrix")
        if chunk < 2 or chunk % 2:
            raise ValueError(f"chunk must be a positive even byte count, got {chunk}")
        self.coeffs = coeffs
        self.r, self.k = coeffs.shape
        self.chunk = chunk
        # Per-(i, j) lookup: None for 0 (skip), _IDENTITY for 1, else the
        # shared pair table for the coefficient value.
        self._tables: list[list] = [
            [
                None
                if c == 0
                else _IDENTITY
                if c == 1
                else gf256.pair_mul_table(int(c))
                for c in row
            ]
            for row in coeffs
        ]

    # -- buffers ------------------------------------------------------

    def _make_buffers(self):
        """Aligned per-worker scratch: input block, accumulator, gather."""
        inbuf = np.empty((self.k, self.chunk), dtype=np.uint8)
        accbuf = np.empty(self.chunk, dtype=np.uint8)
        return (
            inbuf,
            inbuf.view(np.uint16),
            accbuf,
            accbuf.view(np.uint16),
            np.empty(self.chunk // 2, dtype=np.uint16),
        )

    # -- kernel -------------------------------------------------------

    def _apply_span(self, srcs, out, lo: int, hi: int, bufs) -> None:
        """Encode columns ``[lo, hi)`` into ``out`` using ``bufs``."""
        inbuf, in16, accbuf, acc16, scr16 = bufs
        w = hi - lo
        we = (w + 1) & ~1  # even-rounded width for the uint16 view
        nh = we // 2
        # Stage the chunk into the aligned block buffer: rows of the
        # caller's fragments may start at odd offsets (frag_len is not
        # forced even), and a bounded copy is cheaper than unaligned
        # gathers.  The pad byte is zeroed so the uint16 lane is defined.
        for j in range(self.k):
            inbuf[j, :w] = srcs[j][lo:hi]
            if we != w:
                inbuf[j, w] = 0
        for i in range(self.r):
            acc = acc16[:nh]
            tables = self._tables[i]
            started = False
            for j in range(self.k):
                t = tables[j]
                if t is None:
                    continue
                src = in16[j, :nh]
                if t is _IDENTITY:
                    if started:
                        np.bitwise_xor(acc, src, out=acc)
                    else:
                        acc[:] = src
                        started = True
                elif started:
                    s = scr16[:nh]
                    np.take(t, src, out=s)
                    np.bitwise_xor(acc, s, out=acc)
                else:
                    np.take(t, src, out=acc)
                    started = True
            if not started:  # all-zero coefficient row
                accbuf[:w] = 0
            out[i, lo:hi] = accbuf[:w]

    def apply(
        self,
        rows,
        out: np.ndarray | None = None,
        *,
        workers: int | None = None,
    ) -> np.ndarray:
        """Apply the plan to ``k`` byte rows, returning ``(r, L)`` output.

        ``rows`` is a ``(k, L)`` uint8 array **or** a sequence of ``k``
        equal-length 1-D uint8 arrays — the latter avoids the
        ``np.stack`` copy the unplanned decode path paid per call.
        ``out`` optionally supplies a preallocated ``(r, L)`` uint8
        destination (rows need not be contiguous with each other).
        ``workers`` > 1 fans independent column chunks out over threads.
        """
        if isinstance(rows, np.ndarray) and rows.ndim == 2:
            srcs = [rows[j] for j in range(rows.shape[0])]
        else:
            srcs = [np.asarray(r, dtype=np.uint8).reshape(-1) for r in rows]
        if len(srcs) != self.k:
            raise ValueError(f"plan expects {self.k} input rows, got {len(srcs)}")
        L = srcs[0].size
        if any(s.size != L for s in srcs):
            raise ValueError("input rows must have equal lengths")
        if out is None:
            out = np.empty((self.r, L), dtype=np.uint8)
        elif out.shape != (self.r, L) or out.dtype != np.uint8:
            raise ValueError(
                f"out must be uint8 of shape {(self.r, L)}, got "
                f"{out.dtype} {out.shape}"
            )
        if L == 0:
            return out
        spans = [(lo, min(lo + self.chunk, L)) for lo in range(0, L, self.chunk)]
        if workers is None or workers <= 1 or len(spans) <= 1:
            bufs = self._make_buffers()
            for lo, hi in spans:
                self._apply_span(srcs, out, lo, hi, bufs)
        else:
            # One buffer set per worker; spans are dealt round-robin so
            # uneven tail chunks spread across threads.
            nw = min(workers, len(spans))
            groups = [spans[g::nw] for g in range(nw)]

            def _work(group):
                bufs = self._make_buffers()
                for lo, hi in group:
                    self._apply_span(srcs, out, lo, hi, bufs)

            # Span groups write disjoint column ranges of `out`, so the
            # thread sanitizer is told these writes are safe by design.
            _lazy_thread_map()(
                _work, groups, workers=nw, allow_shared_writes=("out",)
            )
        return out


_thread_map = None
_thread_map_lock = threading.Lock()


def _lazy_thread_map():
    """Import ``thread_map`` on first use to keep ``repro.ec`` import-light."""
    global _thread_map
    if _thread_map is None:
        with _thread_map_lock:
            if _thread_map is None:
                from ..parallel.threads import thread_map

                _thread_map = thread_map
    return _thread_map


@lru_cache(maxsize=256)
def _plan_from_bytes(buf: bytes, r: int, k: int, chunk: int) -> EncodePlan:
    coeffs = np.frombuffer(buf, dtype=np.uint8).reshape(r, k)
    return EncodePlan(coeffs, chunk=chunk)


def plan_for(coeffs: np.ndarray, *, chunk: int = DEFAULT_CHUNK) -> EncodePlan:
    """Return the cached :class:`EncodePlan` for a coefficient matrix.

    Keyed by the matrix bytes, so every ``(k, m)`` code — and every
    decode submatrix inverse — pays plan construction exactly once per
    process.
    """
    coeffs = np.ascontiguousarray(coeffs, dtype=np.uint8)
    if coeffs.ndim != 2:
        raise ValueError("plan_for expects a 2-D coefficient matrix")
    return _plan_from_bytes(coeffs.tobytes(), coeffs.shape[0], coeffs.shape[1], chunk)


def planned_matmul(
    a: np.ndarray,
    b,
    out: np.ndarray | None = None,
    *,
    workers: int | None = None,
) -> np.ndarray:
    """Drop-in planned/chunked replacement for :func:`matrix.matmul`.

    ``a`` is the small ``(r, k)`` coefficient matrix; ``b`` is ``(k, L)``
    (or a sequence of ``k`` rows) with large ``L``.  Bit-exact with the
    reference implementation.
    """
    return plan_for(np.asarray(a, dtype=np.uint8)).apply(b, out, workers=workers)
