"""Arithmetic over the Galois field GF(2^8).

This module is the lowest layer of the erasure-coding substrate.  All
operations are implemented with precomputed discrete-log / antilog tables
so that element-wise products over large NumPy arrays reduce to a pair of
table lookups and an integer add — there are no per-element Python loops
on any hot path.

The field is constructed from the AES polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B) with generator 3, the same field used
by ``liberasurecode``'s Reed-Solomon backends, so fragment bytes produced
here are interoperable with any standard RS implementation over the same
polynomial and evaluation points.
"""

from __future__ import annotations

import functools
import threading

import numpy as np

__all__ = [
    "FIELD_SIZE",
    "PRIMITIVE_POLY",
    "GENERATOR",
    "add",
    "sub",
    "mul",
    "div",
    "inv",
    "pow_",
    "mul_table_row",
    "full_mul_table",
    "pair_mul_table",
    "EXP_TABLE",
    "LOG_TABLE",
]

FIELD_SIZE = 256
#: AES field polynomial x^8 + x^4 + x^3 + x + 1.
PRIMITIVE_POLY = 0x11B
#: 3 is a primitive element (multiplicative generator) of this field.
GENERATOR = 3


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build antilog (exp) and log tables for the field.

    ``exp[i] = g**i`` for ``i`` in ``[0, 255)``; the exp table is doubled
    to 510 entries so that ``exp[log[a] + log[b]]`` never needs an
    explicit ``% 255`` reduction (the sum of two logs is at most 508).
    """
    exp = np.zeros(510, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # Multiply x by the generator 3 = x*2 ^ x, reducing mod the poly.
        x2 = x << 1
        if x2 & 0x100:
            x2 ^= PRIMITIVE_POLY
        x = x2 ^ x
    exp[255:510] = exp[0:255]
    # log[0] is undefined; keep a sentinel that, combined with the zero
    # masks in mul/div, is never consulted.
    log[0] = 0
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def add(a, b):
    """Field addition (XOR). Accepts scalars or uint8 arrays."""
    return np.bitwise_xor(a, b)


def sub(a, b):
    """Field subtraction — identical to addition in characteristic 2."""
    return np.bitwise_xor(a, b)


def mul(a, b):
    """Element-wise field multiplication of scalars or arrays.

    Broadcasts like ``numpy.multiply``.  Zero operands yield zero.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    la = LOG_TABLE[a]
    lb = LOG_TABLE[b]
    out = EXP_TABLE[la + lb]
    zero = (a == 0) | (b == 0)
    if zero.ndim == 0:
        return np.uint8(0) if zero else out[()]
    out = np.where(zero, np.uint8(0), out)
    return out


def div(a, b):
    """Element-wise field division ``a / b``.

    Raises :class:`ZeroDivisionError` if any divisor element is zero.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero in GF(256)")
    la = LOG_TABLE[a]
    lb = LOG_TABLE[b]
    out = EXP_TABLE[la - lb + 255]
    zero = a == 0
    if zero.ndim == 0:
        return np.uint8(0) if zero else out[()]
    return np.where(zero, np.uint8(0), out)


def inv(a):
    """Multiplicative inverse. Raises on zero."""
    return div(np.uint8(1), a)


def pow_(a, n: int):
    """Raise field element(s) ``a`` to the integer power ``n`` (n >= 0)."""
    a = np.asarray(a, dtype=np.uint8)
    if n == 0:
        return np.ones_like(a)
    la = LOG_TABLE[a].astype(np.int64, copy=False)
    out = EXP_TABLE[(la * n) % 255]
    zero = a == 0
    if zero.ndim == 0:
        return np.uint8(0) if zero else out[()]
    return np.where(zero, np.uint8(0), out)


def mul_table_row(c: int) -> np.ndarray:
    """Return the 256-entry lookup table for multiplication by constant ``c``.

    ``mul_table_row(c)[x] == mul(c, x)`` for every byte ``x``.  Encoding a
    large buffer by a constant then becomes a single fancy-index gather,
    which is the dominant kernel of Reed-Solomon encode/decode.
    """
    if not 0 <= c < 256:
        raise ValueError(f"field element out of range: {c}")
    xs = np.arange(256, dtype=np.uint8)
    return mul(np.uint8(c), xs)


# Full 256x256 multiplication table built lazily; ~64 KiB, used by the
# matrix kernels to turn GEMM-over-GF into row gathers.  The fill is
# guarded by a lock: encode/decode now fan out over thread_map, and an
# unguarded check-then-act would rebuild the table concurrently.
_FULL_TABLE: np.ndarray | None = None
_FULL_TABLE_LOCK = threading.Lock()


def full_mul_table() -> np.ndarray:
    """Return the complete 256x256 multiplication table (cached)."""
    global _FULL_TABLE
    if _FULL_TABLE is None:
        with _FULL_TABLE_LOCK:
            if _FULL_TABLE is None:
                xs = np.arange(256, dtype=np.uint8)
                _FULL_TABLE = mul(xs[:, None], xs[None, :])
    return _FULL_TABLE


@functools.lru_cache(maxsize=256)
def pair_mul_table(c: int) -> np.ndarray:
    """The 65536-entry table multiplying *byte pairs* by constant ``c``.

    Entry ``v`` holds ``mul(c, lo) | mul(c, hi) << 8`` for
    ``v = lo | hi << 8``, so gathering with a ``uint16`` view of a byte
    buffer multiplies two bytes per lookup.  Because GF multiplication is
    applied byte-wise on both sides, the result is endianness-agnostic:
    whichever byte the host packs into the low half comes back out in
    the low half.  Each table is 128 KiB; the cache is bounded at the
    256 possible constants (~32 MiB worst case, far less in practice
    since generator matrices reuse few distinct coefficients).
    """
    if not 0 <= c < 256:
        raise ValueError(f"field element out of range: {c}")
    row = full_mul_table()[c].astype(np.uint16, copy=False)
    # [hi, lo] -> row[lo] | row[hi] << 8, flattened so index = hi*256 + lo.
    return (row[None, :] | (row[:, None] << 8)).reshape(-1)
