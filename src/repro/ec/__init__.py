"""Erasure-coding substrate: GF(256) arithmetic and systematic Reed-Solomon.

Stand-in for ``liberasurecode`` in the original RAPIDS implementation.
"""

from .cauchy import CauchyRSCode
from .codec import ECConfig, EncodedLevel, ErasureCodec
from .reed_solomon import RSCode
from .striping import StripedCode, StripedEncoding

__all__ = [
    "ECConfig",
    "EncodedLevel",
    "ErasureCodec",
    "RSCode",
    "CauchyRSCode",
    "StripedCode",
    "StripedEncoding",
]
