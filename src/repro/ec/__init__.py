"""Erasure-coding substrate: GF(256) arithmetic and systematic Reed-Solomon.

Stand-in for ``liberasurecode`` in the original RAPIDS implementation.
The planned/chunked kernels in :mod:`repro.ec.kernels` are the hot
path; :mod:`repro.ec.matrix` keeps the simple reference implementation
they are verified against.
"""

from .cauchy import CauchyRSCode
from .codec import ECConfig, EncodedLevel, ErasureCodec
from .kernels import EncodePlan, plan_for, planned_matmul
from .reed_solomon import RSCode
from .striping import StripedCode, StripedEncoding

__all__ = [
    "ECConfig",
    "EncodedLevel",
    "ErasureCodec",
    "RSCode",
    "CauchyRSCode",
    "StripedCode",
    "StripedEncoding",
    "EncodePlan",
    "plan_for",
    "planned_matmul",
]
