"""Anti-entropy repair: regenerate exactly what the scrubber found lost.

The engine consumes a :class:`~repro.healing.scrubber.ScrubReport` and
returns every damaged level to full n-fragment redundancy:

* stripes are repaired in durability-risk order — smallest ledger
  headroom first (closest to unrecoverable), then level index (coarser
  levels matter more to progressive reconstruction);
* a stale copy that still matches the ledger CRC is *adopted* (metadata
  update, no data movement); redundant stale copies are cleared;
* lost fragments are regenerated over the minimal-read path: exactly
  ``k`` clean CRC-verified source fragments per stripe feed the cached
  single-row :meth:`~repro.ec.codec.ErasureCodec.repair_fragment`
  plans, however many targets the stripe needs;
* regenerated fragments are re-placed capacity-aware
  (:func:`~repro.storage.placement.plan_placement`) on healthy systems
  not already hosting the stripe, preferring the original home;
* every read and write runs under the :class:`RetryPolicy` and is
  charged to the WAN transfer model (one request per attempt), so
  repair traffic shows up in the same latency accounting as restores.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..chaos.retry import RetryPolicy
from ..ec import ECConfig, ErasureCodec
from ..formats import verify
from ..metadata import FragmentRecord
from ..storage.placement import (
    CapacityError,
    CapacityTracker,
    apply_moves,
    plan_placement,
    rebalance_moves,
)
from ..storage.system import StoredFragment
from ..transfer import TransferRequest, phase_latency
from .ledger import DurabilityLedger, LedgerEntry
from .scrubber import Damage, ScrubReport, Scrubber

__all__ = ["RepairEngine", "RepairReport", "RepairAction", "scrub_and_repair"]

_READ_ERRORS = (KeyError, ValueError, OSError, RuntimeError)


@dataclass
class RepairAction:
    """One executed (or, under ``dry_run``, planned) repair step."""

    object_name: str
    level: int
    index: int
    kind: str  # "regenerated" | "adopted" | "cleared-stale"
    system_id: int  # target (regenerated/adopted) or cleared holder
    sources: list[int] = field(default_factory=list)
    nbytes: int = 0


@dataclass
class RepairReport:
    """What a repair pass did, and what it cost on the WAN."""

    actions: list[RepairAction] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    dry_run: bool = False
    read_bytes: float = 0.0
    written_bytes: float = 0.0
    read_attempts: int = 0
    transfer_latency: float = 0.0
    rebalance_moves: int = 0

    @property
    def repaired(self) -> int:
        return sum(1 for a in self.actions if a.kind in ("regenerated", "adopted"))

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for a in self.actions:
            out[a.kind] = out.get(a.kind, 0) + 1
        return out

    def to_dict(self) -> dict:
        d = asdict(self)
        d["counts"] = self.counts()
        return d

    def describe(self) -> str:
        verb = "would repair" if self.dry_run else "repaired"
        lines = [
            f"{verb} {self.repaired} fragment(s) "
            f"({', '.join(f'{k}: {v}' for k, v in sorted(self.counts().items())) or 'nothing to do'})"
        ]
        lines.append(
            f"  WAN: {self.read_bytes:.0f} B read, "
            f"{self.written_bytes:.0f} B written, "
            f"latency {self.transfer_latency:.3f} s"
        )
        for msg in self.failures:
            lines.append(f"  FAILED {msg}")
        return "\n".join(lines)


class RepairEngine:
    """Regenerates damaged fragments and restores ledger redundancy.

    Parameters
    ----------
    cluster, catalog, ledger:
        The storage/metadata stack being healed.
    tracker:
        Optional :class:`CapacityTracker`; when given, re-placement is
        capacity-aware and ``rebalance=True`` runs a post-repair
        rebalancing pass.  Without one, targets are chosen least-loaded.
    retry_policy:
        Policy for every repair read/write (default: three immediate
        attempts, matching restore).
    workers:
        Thread fan-out for fragment reconstruction kernels.
    """

    def __init__(
        self,
        cluster,
        catalog,
        ledger: DurabilityLedger,
        *,
        tracker: CapacityTracker | None = None,
        retry_policy: RetryPolicy | None = None,
        workers: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.catalog = catalog
        self.ledger = ledger
        self.tracker = tracker
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=3, base=0.0)
        self.codec = ErasureCodec(cluster.n, workers=workers)
        self._requests: list[TransferRequest] = []

    # -- public ------------------------------------------------------------

    def repair(
        self,
        damage: "ScrubReport | list[Damage]",
        *,
        dry_run: bool = False,
        rebalance: bool = False,
    ) -> RepairReport:
        """Heal the damage a scrub found, riskiest stripes first."""
        items = damage.damage if isinstance(damage, ScrubReport) else list(damage)
        report = RepairReport(dry_run=dry_run)
        self._requests = []
        for entry, damaged, stale in self._prioritised(items):
            self._repair_stripe(entry, damaged, stale, report, dry_run)
        if rebalance and self.tracker is not None and not dry_run:
            report.rebalance_moves = self._rebalance(report)
        if self._requests:
            res = phase_latency(self._requests, self.cluster.bandwidths)
            report.transfer_latency = float(res.makespan)
        return report

    # -- prioritisation ----------------------------------------------------

    def _prioritised(self, items: list[Damage]):
        """Group damage per stripe, ordered by durability risk."""
        grouped: dict[tuple[str, int], dict] = {}
        for d in items:
            g = grouped.setdefault(
                (d.object_name, d.level), {"damaged": set(), "stale": {}}
            )
            if d.kind in ("missing", "corrupt"):
                g["damaged"].add(d.index)
            elif d.kind == "stale-placement":
                g["stale"].setdefault(d.index, []).append(d.system_id)
        ordered = []
        for (name, level), g in grouped.items():
            entry = self.ledger.get(name, level)
            if entry is None:
                continue  # nothing authoritative to heal against
            ordered.append((entry, g["damaged"], g["stale"]))
        # Smallest headroom first (closest to losing recoverability),
        # then level importance: coarser levels gate every finer one.
        ordered.sort(key=lambda t: (t[0].headroom, t[0].level))
        return ordered

    # -- per-stripe repair -------------------------------------------------

    def _repair_stripe(
        self,
        entry: LedgerEntry,
        damaged: set[int],
        stale: dict[int, list[int]],
        report: RepairReport,
        dry_run: bool,
    ) -> None:
        name, level = entry.store_name, entry.level
        damaged = set(damaged)

        # 1. Adopt or clear stale copies.  An index whose authoritative
        # home lost its copy but with a CRC-valid copy elsewhere needs a
        # metadata fix, not reconstruction.
        for index, holders in sorted(stale.items()):
            home_ok = index not in damaged and self._home_holds(entry, index)
            adopted = home_ok
            for sid in holders:
                if not adopted:
                    payload = self._read_verified(entry, index, sid, report)
                    if payload is not None:
                        if not dry_run:
                            self._point_at(entry, index, sid)
                        report.actions.append(
                            RepairAction(name, level, index, "adopted", sid,
                                         nbytes=entry.nbytes[index])
                        )
                        adopted = True
                        continue
                if not dry_run:
                    self._clear_copy(name, level, index, sid)
                report.actions.append(
                    RepairAction(name, level, index, "cleared-stale", sid)
                )
            if not adopted and not home_ok:
                damaged.add(index)  # every stale copy was rotten too

        # 2. Regenerate what is actually lost, from exactly k clean
        # sources shared across all of the stripe's targets.
        if not damaged:
            if not dry_run:
                self.ledger.set_headroom(entry.object_name, level, entry.m)
            return
        cfg = ECConfig(entry.n, entry.m)
        sources = self._gather_sources(entry, damaged, cfg.k, report)
        if sources is None:
            report.failures.append(
                f"{name!r} level {level}: fewer than k={cfg.k} clean "
                f"fragments survive — {sorted(damaged)} unrecoverable"
            )
            return
        unrepaired: set[int] = set()
        for index in sorted(damaged):
            rebuilt = self.codec.repair_fragment(cfg, sources, index)
            blob = np.ascontiguousarray(rebuilt).tobytes()
            if not verify(blob, entry.checksums[index]):
                report.failures.append(
                    f"{name!r} level {level} fragment {index}: "
                    "reconstruction does not match the ledger checksum"
                )
                unrepaired.add(index)
                continue
            target = self._place(entry, index, blob, dry_run, report)
            if target is None:
                unrepaired.add(index)
                continue
            report.actions.append(
                RepairAction(name, level, index, "regenerated", target,
                             sources=sorted(sources), nbytes=len(blob))
            )
        if not dry_run:
            self.ledger.set_headroom(
                entry.object_name, level, entry.m - len(unrepaired)
            )

    def _home_holds(self, entry: LedgerEntry, index: int) -> bool:
        home = self.cluster[entry.placement[index]]
        return home.available and home.has(entry.store_name, entry.level, index)

    def _point_at(self, entry: LedgerEntry, index: int, system_id: int) -> None:
        self.ledger.set_placement(
            entry.object_name, entry.level, index, system_id
        )
        entry.placement[index] = system_id
        self._upsert_record(entry, index, system_id)

    def _clear_copy(self, name: str, level: int, index: int, sid: int) -> None:
        system = self.cluster[sid]
        try:
            if system.available:
                system.delete(name, level, index)
        except _READ_ERRORS:
            pass  # an unreachable stale copy is next sweep's problem

    def _upsert_record(self, entry: LedgerEntry, index: int, sid: int) -> None:
        try:
            self.catalog.relocate_fragment(
                entry.store_name, entry.level, index, sid
            )
        except KeyError:
            self.catalog.put_fragment(
                FragmentRecord(
                    entry.store_name, entry.level, index, sid,
                    entry.nbytes[index], checksum=entry.checksums[index],
                )
            )

    # -- reads -------------------------------------------------------------

    def _read_verified(
        self, entry: LedgerEntry, index: int, system_id: int,
        report: RepairReport,
    ) -> bytes | None:
        """Fetch one fragment under retry; None unless it matches the ledger."""
        system = self.cluster[system_id]

        def attempt() -> bytes:
            frag = system.get(entry.store_name, entry.level, index)
            if frag.payload is None or not verify(
                frag.payload, entry.checksums[index]
            ):
                raise ValueError(
                    f"fragment {index} on system {system_id} fails the "
                    "ledger checksum"
                )
            return frag.payload

        out = self.retry_policy.call(attempt, retry_on=_READ_ERRORS)
        report.read_attempts += out.attempts
        report.read_bytes += float(entry.nbytes[index]) * out.attempts
        for _ in range(out.attempts):
            self._requests.append(
                TransferRequest(system_id, float(entry.nbytes[index]),
                                tag=("repair-read", entry.level, index))
            )
        return out.value if out.ok else None

    def _gather_sources(
        self, entry: LedgerEntry, damaged: set[int], k: int,
        report: RepairReport,
    ) -> dict[int, np.ndarray] | None:
        """Exactly ``k`` clean fragments (more only if reads fail)."""
        sources: dict[int, np.ndarray] = {}
        for index in range(entry.n):
            if len(sources) >= k:
                break
            if index in damaged:
                continue
            sid = self._holder_of(entry, index)
            if sid is None:
                continue
            payload = self._read_verified(entry, index, sid, report)
            if payload is not None:
                sources[index] = np.frombuffer(payload, dtype=np.uint8)
        return sources if len(sources) >= k else None

    def _holder_of(self, entry: LedgerEntry, index: int) -> int | None:
        home = entry.placement[index]
        if self.cluster[home].available and self.cluster[home].has(
            entry.store_name, entry.level, index
        ):
            return home
        for s in self.cluster.systems:
            if s.available and s.has(entry.store_name, entry.level, index):
                return s.system_id
        return None

    # -- placement ---------------------------------------------------------

    def _place(
        self, entry: LedgerEntry, index: int, blob: bytes,
        dry_run: bool, report: RepairReport,
    ) -> int | None:
        """Write one regenerated fragment; returns the system it landed on."""
        nbytes = entry.nbytes[index]
        for target in self._target_candidates(entry, index, nbytes):
            if dry_run:
                return target
            if self._write_fragment(entry, index, blob, target, report):
                self._point_at(entry, index, target)
                # Any other resident copy of this index is the damaged
                # one we just regenerated around (e.g. the corrupt copy
                # at the old home): clear it now rather than leaving a
                # stale-placement finding for the next sweep.
                for s in self.cluster.systems:
                    if s.system_id != target and s.available and s.has(
                        entry.store_name, entry.level, index
                    ):
                        self._clear_copy(
                            entry.store_name, entry.level, index,
                            s.system_id,
                        )
                return target
        report.failures.append(
            f"{entry.object_name!r} level {entry.level} fragment {index}: "
            "no system could take the regenerated fragment"
        )
        return None

    def _target_candidates(self, entry: LedgerEntry, index: int, nbytes: int):
        """Target systems in preference order.

        Home first; then systems hosting nothing of this stripe
        (capacity-aware when a tracker is attached); as a last resort —
        a stripe as wide as the cluster with outages leaves no empty
        system — any available system that does not already hold *this*
        fragment, trading placement independence for durability.
        """
        name, level = entry.store_name, entry.level
        home = entry.placement[index]
        # Systems hosting *other* fragments of this stripe; a system
        # holding only this index's (corrupt) copy may be overwritten.
        occupied = {
            sid
            for idx, sid in self.cluster.locate(name, level).items()
            if idx != index
        }
        yielded: set[int] = set()
        if self.cluster[home].available and home not in occupied:
            if self.tracker is None or self.tracker.fits(home, nbytes):
                yielded.add(home)
                yield home
        fresh: list[int] = []
        if self.tracker is not None:
            try:
                fresh = plan_placement(
                    self.tracker, float(nbytes), 1,
                    exclude=occupied | yielded, commit=True,
                )
            except CapacityError:
                fresh = []
        else:
            fresh = sorted(
                (
                    s.system_id
                    for s in self.cluster.systems
                    if s.available
                    and s.system_id not in occupied
                    and s.system_id not in yielded
                ),
                key=lambda sid: self.cluster[sid].used_bytes,
            )[:1]
        for sid in fresh:
            yielded.add(sid)
            yield sid
        fallback = sorted(
            (
                s.system_id
                for s in self.cluster.systems
                if s.available
                and s.system_id not in yielded
                and not s.has(name, level, index)
            ),
            key=lambda sid: self.cluster[sid].used_bytes,
        )
        yield from fallback

    def _write_fragment(
        self, entry: LedgerEntry, index: int, blob: bytes, target: int,
        report: RepairReport,
    ) -> bool:
        frag = StoredFragment(
            entry.store_name, entry.level, index,
            len(blob), blob, checksum=entry.checksums[index],
        )
        out = self.retry_policy.call(
            lambda: self.cluster[target].put(frag), retry_on=_READ_ERRORS
        )
        for _ in range(out.attempts):
            self._requests.append(
                TransferRequest(target, float(entry.nbytes[index]),
                                tag=("repair-write", entry.level, index))
            )
        if out.ok:
            report.written_bytes += float(entry.nbytes[index])
        return out.ok

    # -- rebalance ---------------------------------------------------------

    def _rebalance(self, report: RepairReport) -> int:
        """Post-repair rebalancing over the capacity tracker."""
        moves = rebalance_moves(self.tracker)
        applied = apply_moves(self.tracker, moves, catalog=self.catalog)
        for (obj, level, index), _src, dst in moves:
            try:
                if self.catalog.get_fragment(obj, level, index).system_id == dst:
                    self.ledger.set_placement(obj, level, index, dst)
            except KeyError:
                continue
        self.tracker.clear_commitments()
        return applied


def scrub_and_repair(
    cluster,
    catalog,
    *,
    ledger: DurabilityLedger | None = None,
    tracker: CapacityTracker | None = None,
    retry_policy: RetryPolicy | None = None,
    max_fragments: int | None = None,
    repair: bool = True,
    dry_run: bool = False,
    rebalance: bool = False,
) -> tuple[ScrubReport, RepairReport | None]:
    """One anti-entropy pass: scrub, then (optionally) repair.

    Ledger entries missing for already-catalogued objects are first
    rebuilt from the catalog, so workspaces prepared before the ledger
    existed heal like any other.  Returns the scrub report and — when
    ``repair`` and damage was found — the repair report.
    """
    ledger = ledger or DurabilityLedger(catalog)
    ledger.rebuild_from_catalog(catalog)
    scrub = Scrubber(
        cluster, ledger, retry_policy=retry_policy, max_fragments=max_fragments
    ).run()
    rep = None
    if repair and scrub.damage:
        engine = RepairEngine(
            cluster, catalog, ledger,
            tracker=tracker, retry_policy=retry_policy,
        )
        rep = engine.repair(scrub, dry_run=dry_run, rebalance=rebalance)
    return scrub, rep
