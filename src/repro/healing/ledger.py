"""The durability ledger: what fragments *should* exist, and where.

The metadata catalog's ``frag/…`` records answer "where is fragment i
right now"; the ledger answers the durability question: for each object
level, which fragment set (with CRCs) was committed at preparation
time, where each fragment is supposed to live, and how much redundancy
headroom remains against the planned fault tolerance ``m_j``.  The
scrubber verifies the store against it; the repair engine restores it.

Key layout (on the same KV store as the catalog)::

    ledger/<name>/<level:04d>   -> LedgerEntry (JSON)

``headroom`` is ``m_j`` minus the number of known unrepaired damaged
fragments: ``headroom == m_j`` means full redundancy, ``0`` means the
next loss makes the level unrecoverable, ``< 0`` means it already is.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["DurabilityLedger", "LedgerEntry"]

_PREFIX = b"ledger/"


def _key(object_name: str, level: int) -> bytes:
    return f"ledger/{object_name}/{level:04d}".encode()


@dataclass
class LedgerEntry:
    """Expected durable state of one erasure-coded level."""

    object_name: str
    level: int
    n: int
    m: int
    checksums: list[int]  # fragment index -> CRC-32 committed at encode time
    nbytes: list[int]     # fragment index -> payload size
    placement: list[int]  # fragment index -> authoritative system id
    headroom: int         # m minus known unrepaired damage
    #: Name the fragments are stored under on the cluster.  Empty means
    #: the object name itself (generation 0 — every pre-migration
    #: entry, so old JSON entries round-trip unchanged); live migration
    #: re-records the entry with the new generation's storage name.
    storage_name: str = ""

    def __post_init__(self) -> None:
        if not (len(self.checksums) == len(self.nbytes) == len(self.placement) == self.n):
            raise ValueError("checksums/nbytes/placement must have n entries")

    @property
    def k(self) -> int:
        """Fragments needed to decode (n - m)."""
        return self.n - self.m

    @property
    def store_name(self) -> str:
        """Cluster-side name of this level's fragment set."""
        return self.storage_name or self.object_name

    @property
    def deficit(self) -> int:
        """Known damaged-and-unrepaired fragment count (m - headroom)."""
        return self.m - self.headroom

    def describe(self) -> str:
        state = "full" if self.headroom == self.m else (
            "LOST" if self.headroom < 0 else f"headroom {self.headroom}/{self.m}"
        )
        return (
            f"{self.object_name!r} level {self.level}: "
            f"n={self.n} m={self.m} [{state}]"
        )


class DurabilityLedger:
    """Typed ledger facade over the catalog's KV store.

    Accepts a :class:`~repro.metadata.catalog.MetadataCatalog` (shares
    its store — one kvstore file holds catalog and ledger, so a single
    snapshot/restore covers both) or any object with the KV interface.
    """

    def __init__(self, store) -> None:
        self.store = getattr(store, "store", store)

    # -- record / read -----------------------------------------------------

    def record(self, entry: LedgerEntry) -> None:
        self.store.put(
            _key(entry.object_name, entry.level),
            json.dumps(asdict(entry)).encode(),
        )

    def get(self, object_name: str, level: int) -> LedgerEntry | None:
        raw = self.store.get(_key(object_name, level))
        return LedgerEntry(**json.loads(raw)) if raw is not None else None

    def entries(self, object_name: str | None = None) -> list[LedgerEntry]:
        """All entries (or one object's), in (object, level) key order."""
        prefix = (
            f"ledger/{object_name}/".encode() if object_name is not None else _PREFIX
        )
        return [
            LedgerEntry(**json.loads(v)) for _, v in self.store.scan(prefix)
        ]

    def deficits(self) -> list[LedgerEntry]:
        """Entries with known unrepaired damage (headroom < m)."""
        return [e for e in self.entries() if e.headroom < e.m]

    # -- mutation ----------------------------------------------------------

    def set_placement(
        self, object_name: str, level: int, index: int, system_id: int
    ) -> None:
        """Move fragment ``index``'s authoritative home after a repair."""
        entry = self.get(object_name, level)
        if entry is None:
            raise KeyError(f"no ledger entry for ({object_name!r}, {level})")
        entry.placement[index] = int(system_id)
        self.record(entry)

    def set_headroom(self, object_name: str, level: int, headroom: int) -> None:
        entry = self.get(object_name, level)
        if entry is None:
            raise KeyError(f"no ledger entry for ({object_name!r}, {level})")
        entry.headroom = int(headroom)
        self.record(entry)

    def delete_object(self, object_name: str) -> None:
        for key in self.store.keys(f"ledger/{object_name}/".encode()):
            self.store.delete(key)

    # -- recovery ----------------------------------------------------------

    def rebuild_from_catalog(self, catalog, *, only_missing: bool = True) -> int:
        """Reconstruct ledger entries from catalog object/fragment records.

        The ledger is derivable metadata: object records carry ``n`` and
        the per-level ``m_j``, fragment records carry checksums, sizes
        and locations.  Used to adopt workspaces prepared before the
        ledger existed (and after a catalog restore from snapshot).
        Returns the number of entries written.
        """
        written = 0
        for name in catalog.list_objects():
            rec = catalog.get_object(name)
            for level, m in enumerate(rec.ft_config):
                if only_missing and self.get(name, level) is not None:
                    continue
                sname = rec.level_storage_name(level)
                frags = sorted(
                    catalog.level_fragments(sname, level), key=lambda f: f.index
                )
                if len(frags) != rec.n_systems:
                    continue  # partial records: not a durable level
                self.record(
                    LedgerEntry(
                        object_name=name,
                        level=level,
                        n=rec.n_systems,
                        m=int(m),
                        checksums=[f.checksum for f in frags],
                        nbytes=[f.nbytes for f in frags],
                        placement=[f.system_id for f in frags],
                        headroom=int(m),
                        storage_name="" if sname == name else sname,
                    )
                )
                written += 1
        return written
