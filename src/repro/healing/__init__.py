"""Self-healing storage: durability ledger, scrubbing, anti-entropy repair.

The availability math (paper §4) holds only while every level keeps its
full n-fragment redundancy; the chaos layer (``repro.chaos``) injects
exactly the damage that erodes it.  This package closes the loop:

* :class:`DurabilityLedger` — the catalog's authoritative record of
  what *should* exist: per object/level, the expected fragment set with
  CRCs and the redundancy headroom against the planned ``m_j``;
* :class:`Scrubber` — an incremental, rate-limited, crash-resumable
  sweep verifying fragments at rest against the ledger and classifying
  damage (``missing`` / ``corrupt`` / ``stale-placement``);
* :class:`RepairEngine` — regenerates exactly the damaged fragments
  over minimal-read reconstruction, re-places them capacity-aware, and
  charges the traffic to the WAN transfer model;
* :func:`scrub_and_repair` — the one-call anti-entropy pass behind
  ``rapids scrub --repair``.
"""

from .ledger import DurabilityLedger, LedgerEntry
from .repair import RepairAction, RepairEngine, RepairReport, scrub_and_repair
from .scrubber import Damage, Scrubber, ScrubReport

__all__ = [
    "DurabilityLedger",
    "LedgerEntry",
    "Scrubber",
    "ScrubReport",
    "Damage",
    "RepairEngine",
    "RepairReport",
    "RepairAction",
    "scrub_and_repair",
]
