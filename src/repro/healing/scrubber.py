"""Integrity scrubbing: sweep storage at rest against the ledger.

The scrubber walks the durability ledger in key order, checks every
expected fragment on the cluster, and classifies damage:

* ``missing``          — no available system holds the fragment;
* ``corrupt``          — the authoritative copy exists but fails CRC
  verification against the ledger (bit rot, truncation, torn write);
* ``stale-placement``  — a copy lives on a system the ledger does not
  consider the fragment's home (left behind by a past repair or an
  operator move).

Every fragment read goes through the normal storage read path — chaos
injector seam, store-level checksum, ``RetryPolicy`` — so scrubbing
itself tolerates transient faults and never propagates corrupt bytes.

The sweep is incremental and crash-resumable: a cursor persisted in the
kvstore (key ``scrub/cursor``) records the next stripe to scan, and
``max_fragments`` bounds each run so scrubbing can be rate-limited
alongside production traffic.  A run always finishes the stripe it
started (damage classification is per-stripe), then checkpoints.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..chaos.retry import RetryPolicy
from ..formats import verify
from ..storage.system import CorruptFragmentError, UnavailableError
from .ledger import DurabilityLedger, LedgerEntry

__all__ = ["Scrubber", "ScrubReport", "Damage"]

CURSOR_KEY = b"scrub/cursor"

#: Everything a single fragment read may fail with on the scrub path.
_READ_ERRORS = (KeyError, ValueError, OSError, RuntimeError)


@dataclass(frozen=True)
class Damage:
    """One damaged (or misplaced) fragment found by the scrubber."""

    object_name: str
    level: int
    index: int
    kind: str  # "missing" | "corrupt" | "stale-placement"
    system_id: int  # holder (stale/corrupt) or expected home (missing)
    detail: str = ""

    def describe(self) -> str:
        return (
            f"{self.kind}: {self.object_name!r} level {self.level} "
            f"fragment {self.index} (system {self.system_id})"
            + (f" — {self.detail}" if self.detail else "")
        )


@dataclass
class ScrubReport:
    """What one scrub run examined and found."""

    stripes_scanned: int = 0
    fragments_scanned: int = 0
    verified: int = 0
    damage: list[Damage] = field(default_factory=list)
    complete: bool = True     # False: stopped at the rate limit
    resumed: bool = False     # True: started from a persisted cursor
    read_bytes: float = 0.0   # bytes pulled at rest (retries included)
    read_attempts: int = 0

    @property
    def clean(self) -> bool:
        return not self.damage

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for d in self.damage:
            out[d.kind] = out.get(d.kind, 0) + 1
        return out

    def to_dict(self) -> dict:
        d = asdict(self)
        d["counts"] = self.counts()
        return d

    def describe(self) -> str:
        head = (
            f"scrubbed {self.fragments_scanned} fragment(s) in "
            f"{self.stripes_scanned} stripe(s): {self.verified} verified"
        )
        if not self.complete:
            head += " [rate-limited: sweep incomplete]"
        lines = [head]
        for d in self.damage:
            lines.append(f"  {d.describe()}")
        if self.clean:
            lines.append("  no damage found")
        return "\n".join(lines)


class Scrubber:
    """Incremental at-rest verification of a cluster against its ledger.

    Parameters
    ----------
    cluster:
        The storage cluster to sweep (in-memory or file-backed).
    ledger:
        The :class:`DurabilityLedger` holding the expected state.
    retry_policy:
        Per-read retry policy; defaults to three immediate attempts
        (matching the restore pipeline).
    max_fragments:
        Rate limit — stop after roughly this many fragments per
        :meth:`run` (the stripe in progress is always finished).
        ``None`` sweeps everything.
    """

    def __init__(
        self,
        cluster,
        ledger: DurabilityLedger,
        *,
        retry_policy: RetryPolicy | None = None,
        max_fragments: int | None = None,
    ) -> None:
        if max_fragments is not None and max_fragments < 1:
            raise ValueError("max_fragments must be >= 1")
        self.cluster = cluster
        self.ledger = ledger
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=3, base=0.0)
        self.max_fragments = max_fragments

    # -- cursor ------------------------------------------------------------

    def _load_cursor(self) -> tuple[str, int] | None:
        raw = self.ledger.store.get(CURSOR_KEY)
        if raw is None:
            return None
        d = json.loads(raw)
        return (d["object"], int(d["level"]))

    def _save_cursor(self, object_name: str, level: int) -> None:
        self.ledger.store.put(
            CURSOR_KEY,
            json.dumps({"object": object_name, "level": level}).encode(),
        )

    def _clear_cursor(self) -> None:
        if self.ledger.store.get(CURSOR_KEY) is not None:
            self.ledger.store.delete(CURSOR_KEY)

    # -- sweep -------------------------------------------------------------

    def run(self, *, reset: bool = False) -> ScrubReport:
        """Scrub from the persisted cursor (or the start) onward.

        Scans ledger stripes in key order until the ledger is exhausted
        or the rate limit trips; the cursor is checkpointed after every
        stripe, so a crash mid-run loses at most the stripe in progress.
        Each scanned stripe's ledger headroom is refreshed to ``m`` minus
        its damaged fragment count.
        """
        report = ScrubReport()
        if reset:
            self._clear_cursor()
        cursor = self._load_cursor()
        entries = self.ledger.entries()
        start = 0
        if cursor is not None:
            report.resumed = True
            for pos, entry in enumerate(entries):
                if (entry.object_name, entry.level) >= cursor:
                    start = pos
                    break
            else:
                start = len(entries)
        for pos in range(start, len(entries)):
            entry = entries[pos]
            if (
                self.max_fragments is not None
                and report.fragments_scanned > 0
                and report.fragments_scanned + entry.n > self.max_fragments
            ):
                self._save_cursor(entry.object_name, entry.level)
                report.complete = False
                return report
            self._scrub_stripe(entry, report)
            if pos + 1 < len(entries):
                nxt = entries[pos + 1]
                self._save_cursor(nxt.object_name, nxt.level)
        self._clear_cursor()
        return report

    def _scrub_stripe(self, entry: LedgerEntry, report: ScrubReport) -> None:
        damaged_indices: set[int] = set()
        for index in range(entry.n):
            report.fragments_scanned += 1
            home = entry.placement[index]
            holders = [
                s.system_id
                for s in self.cluster.systems
                if s.available
                and s.has(entry.store_name, entry.level, index)
            ]
            if home in holders:
                kind, detail = self._verify_at(entry, index, home, report)
                if kind is None:
                    report.verified += 1
                else:
                    damaged_indices.add(index)
                    report.damage.append(
                        Damage(entry.object_name, entry.level, index,
                               kind, home, detail)
                    )
                extras = [sid for sid in holders if sid != home]
            elif holders:
                # The fragment survives, just not where the ledger says:
                # durability is intact, placement is stale.  The repair
                # engine adopts (or clears) these copies.
                extras = holders
            else:
                damaged_indices.add(index)
                detail = (
                    "authoritative home unavailable"
                    if not self.cluster.systems[home].available
                    else "no copy on any available system"
                )
                report.damage.append(
                    Damage(entry.object_name, entry.level, index,
                           "missing", home, detail)
                )
                extras = []
            for sid in extras:
                report.damage.append(
                    Damage(entry.object_name, entry.level, index,
                           "stale-placement", sid,
                           f"authoritative home is system {home}")
                )
        report.stripes_scanned += 1
        headroom = entry.m - len(damaged_indices)
        if headroom != entry.headroom:
            self.ledger.set_headroom(entry.object_name, entry.level, headroom)

    def _verify_at(
        self, entry: LedgerEntry, index: int, system_id: int,
        report: ScrubReport,
    ) -> tuple[str | None, str]:
        """Read one fragment at rest and verify it against the ledger.

        Returns ``(None, "")`` when clean, else ``(kind, detail)``.
        """
        system = self.cluster[system_id]

        def attempt():
            frag = system.get(entry.store_name, entry.level, index)
            if frag.payload is not None and not verify(
                frag.payload, entry.checksums[index]
            ):
                raise CorruptFragmentError(
                    f"fragment {index} of level {entry.level} does not "
                    "match the ledger checksum"
                )
            return frag

        out = self.retry_policy.call(attempt, retry_on=_READ_ERRORS)
        report.read_attempts += out.attempts
        report.read_bytes += float(entry.nbytes[index]) * out.attempts
        if out.ok:
            return None, ""
        if isinstance(out.error, UnavailableError):
            return "missing", "system became unavailable mid-scrub"
        if isinstance(out.error, KeyError):
            return "missing", "fragment vanished mid-scrub"
        return "corrupt", repr(out.error)
