"""Self-describing fragment container format (HDF5/ADIOS substitute).

RAPIDS writes each data/parity fragment to its own file in a
self-describing format so that the information of the original data
object (name, level, fragment index, EC parameters) travels with the
bytes (§4.1 step 5).  The container holds a JSON attribute document and
any number of named, CRC-checked binary blocks.

File layout (little-endian)::

    magic  "RDC1"                      (4 bytes)
    u16    version                     (currently 1)
    u32    attrs_len | attrs JSON (UTF-8)
    u32    num_blocks
    per block:
        u16 name_len | name (UTF-8)
        u32 crc32 | u64 payload_len | payload
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path

from .checksum import crc32, verify

__all__ = ["Container", "write_fragment_file", "read_fragment_file", "FormatError"]

_MAGIC = b"RDC1"
_VERSION = 1


class FormatError(ValueError):
    """Raised on malformed or corrupted container files."""


class Container:
    """An in-memory self-describing container: attributes + named blocks."""

    def __init__(self, attrs: dict | None = None) -> None:
        self.attrs: dict = dict(attrs or {})
        self._blocks: dict[str, bytes] = {}

    def add_block(self, name: str, payload: bytes) -> None:
        if not name:
            raise ValueError("block name must be non-empty")
        if name in self._blocks:
            raise ValueError(f"duplicate block name: {name!r}")
        self._blocks[name] = bytes(payload)

    def block(self, name: str) -> bytes:
        return self._blocks[name]

    def block_names(self) -> list[str]:
        return list(self._blocks)

    # -- wire format -----------------------------------------------------

    def to_bytes(self) -> bytes:
        out = io.BytesIO()
        out.write(_MAGIC)
        out.write(struct.pack("<H", _VERSION))
        attrs = json.dumps(self.attrs, sort_keys=True).encode()
        out.write(struct.pack("<I", len(attrs)))
        out.write(attrs)
        out.write(struct.pack("<I", len(self._blocks)))
        for name, payload in self._blocks.items():
            nm = name.encode()
            out.write(struct.pack("<H", len(nm)))
            out.write(nm)
            out.write(struct.pack("<IQ", crc32(payload), len(payload)))
            out.write(payload)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Container":
        if data[:4] != _MAGIC:
            raise FormatError("not a RAPIDS container (bad magic)")
        (version,) = struct.unpack_from("<H", data, 4)
        if version != _VERSION:
            raise FormatError(f"unsupported container version {version}")
        (alen,) = struct.unpack_from("<I", data, 6)
        off = 10
        try:
            attrs = json.loads(data[off : off + alen].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FormatError(f"corrupt attribute document: {exc}") from exc
        off += alen
        (nblocks,) = struct.unpack_from("<I", data, off)
        off += 4
        out = cls(attrs)
        for _ in range(nblocks):
            (nlen,) = struct.unpack_from("<H", data, off)
            off += 2
            name = data[off : off + nlen].decode()
            off += nlen
            crc, plen = struct.unpack_from("<IQ", data, off)
            off += 12
            payload = data[off : off + plen]
            if len(payload) != plen:
                raise FormatError(f"truncated payload for block {name!r}")
            if not verify(payload, crc):
                raise FormatError(f"checksum mismatch in block {name!r}")
            off += plen
            out.add_block(name, bytes(payload))
        return out

    def write(self, path: str | Path) -> None:
        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def read(cls, path: str | Path) -> "Container":
        return cls.from_bytes(Path(path).read_bytes())


def write_fragment_file(
    path: str | Path,
    payload: bytes,
    *,
    object_name: str,
    level: int,
    index: int,
    k: int,
    m: int,
    extra: dict | None = None,
) -> None:
    """Write one EC fragment to a self-describing file."""
    c = Container(
        {
            "object_name": object_name,
            "level": level,
            "index": index,
            "k": k,
            "m": m,
            **(extra or {}),
        }
    )
    c.add_block("fragment", payload)
    c.write(path)


def read_fragment_file(path: str | Path) -> tuple[dict, bytes]:
    """Read a fragment file; returns (attributes, payload)."""
    c = Container.read(path)
    if "fragment" not in c.block_names():
        raise FormatError("container has no 'fragment' block")
    return c.attrs, c.block("fragment")
