"""Checksums for fragment payload integrity."""

from __future__ import annotations

import zlib

__all__ = ["crc32", "verify"]


def crc32(data: bytes | memoryview) -> int:
    """CRC-32 of a payload (the container's block checksum)."""
    return zlib.crc32(bytes(data)) & 0xFFFFFFFF


def verify(data: bytes | memoryview, expected: int) -> bool:
    """True iff the payload matches its recorded checksum."""
    return crc32(data) == expected
