"""Self-describing fragment container format (HDF5/ADIOS substitute)."""

from .checksum import crc32, verify
from .container import Container, FormatError, read_fragment_file, write_fragment_file

__all__ = [
    "Container",
    "FormatError",
    "write_fragment_file",
    "read_fragment_file",
    "crc32",
    "verify",
]
