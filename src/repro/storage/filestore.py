"""File-backed storage systems: fragments persisted as container files.

The in-memory :class:`~repro.storage.cluster.StorageCluster` is ideal
for simulation; real deployments keep fragments on disk.  This module
mirrors the cluster API over a directory tree::

    root/
      system-00/
        <object>.l0.f00.rdc      # self-describing fragment containers
        .unavailable             # marker while failed / in maintenance
      system-01/
      ...
      cluster.json               # bandwidths + names

Every fragment file is a :mod:`repro.formats` container, so each one
carries its object name, level, index and EC parameters — a directory
restored from tape is fully self-describing even without the metadata
catalog.  The tree survives process restarts, which is what the CLI's
``prepare``/``restore`` workflows rely on.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..formats import crc32, read_fragment_file, verify, write_fragment_file
from .system import CorruptFragmentError, StoredFragment, UnavailableError

__all__ = ["FileStorageSystem", "FileStorageCluster"]

_MARKER = ".unavailable"


def _fragment_filename(object_name: str, level: int, index: int) -> str:
    safe = object_name.replace("/", "_").replace(":", "_")
    return f"{safe}.l{level}.f{index:02d}.rdc"


class FileStorageSystem:
    """One storage endpoint persisting fragments under a directory."""

    def __init__(self, system_id: int, name: str, bandwidth: float, root: Path):
        self.system_id = system_id
        self.name = name
        self.bandwidth = float(bandwidth)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Optional chaos seam (see :mod:`repro.chaos`).
        self.injector = None

    # -- availability -----------------------------------------------------

    @property
    def available(self) -> bool:
        return not (self.root / _MARKER).exists()

    def fail(self) -> None:
        (self.root / _MARKER).touch()

    def restore(self) -> None:
        marker = self.root / _MARKER
        if marker.exists():
            marker.unlink()

    def _check(self) -> None:
        if not self.available:
            raise UnavailableError(f"system {self.name} is unavailable")

    # -- fragments ----------------------------------------------------------

    def put(self, frag: StoredFragment) -> None:
        self._check()
        if frag.payload is None:
            raise ValueError("file-backed systems need real payloads")
        path = self.root / _fragment_filename(*frag.key)
        spec = None
        if self.injector is not None:
            spec = self.injector.check(
                "filestore.write", handled=("torn",),
                system_id=self.system_id, object_name=frag.object_name,
                level=frag.level, index=frag.index,
            )
        write_fragment_file(
            path,
            frag.payload,
            object_name=frag.object_name,
            level=frag.level,
            index=frag.index,
            k=0,
            m=0,
            # The payload CRC recorded at put time, not recomputed from
            # whatever lands on disk: it is what read-path verification
            # and the scrubber compare against.
            extra={"crc32": frag.checksum if frag.checksum is not None
                   else crc32(frag.payload)},
        )
        if spec is not None:
            # Torn write: keep only a prefix of the container file, then
            # crash the operation — what a power cut mid-write leaves.
            from ..chaos import InjectedFault

            size = path.stat().st_size
            keep = min(size - 1, int(size * min(spec.magnitude, 1.0)))
            with open(path, "ab") as fh:
                fh.truncate(max(0, keep))
            raise InjectedFault(
                "filestore.write", "torn",
                {"system_id": self.system_id, "object_name": frag.object_name,
                 "level": frag.level, "index": frag.index},
            )

    def get(self, object_name: str, level: int, index: int) -> StoredFragment:
        self._check()
        path = self.root / _fragment_filename(object_name, level, index)
        if not path.exists():
            raise KeyError((object_name, level, index))
        attrs, payload = read_fragment_file(path)
        if self.injector is not None:
            payload = self.injector.filter_payload(
                "filestore.read", payload, system_id=self.system_id,
                object_name=object_name, level=level, index=index,
            )
        expected = attrs.get("crc32")
        if expected is not None and not verify(payload, expected):
            raise CorruptFragmentError(
                f"fragment ({object_name!r}, level {level}, index {index}) "
                f"on system {self.name} failed its checksum"
            )
        return StoredFragment(
            attrs["object_name"], attrs["level"], attrs["index"],
            len(payload), payload, checksum=expected,
        )

    def has(self, object_name: str, level: int, index: int) -> bool:
        return (self.root / _fragment_filename(object_name, level, index)).exists()

    def delete(self, object_name: str, level: int, index: int) -> None:
        self._check()
        path = self.root / _fragment_filename(object_name, level, index)
        if not path.exists():
            raise KeyError((object_name, level, index))
        path.unlink()

    def fragment_keys(self) -> list[tuple[str, int, int]]:
        """Keys of all resident fragments (readable while down: this is
        inventory, not data access)."""
        keys = []
        for path in sorted(self.root.glob("*.rdc")):
            attrs, _ = read_fragment_file(path)
            keys.append((attrs["object_name"], attrs["level"], attrs["index"]))
        return keys

    @property
    def used_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.root.glob("*.rdc"))


class FileStorageCluster:
    """A persistent cluster over per-system directories.

    Mirrors the parts of :class:`StorageCluster` the pipeline consumes
    (``n``, ``bandwidths``, ``failed_ids``, ``fail``/``restore_all``,
    ``place_level``, ``locate``, ``fetch``, ``total_stored_bytes``,
    ``level_available``), so :class:`repro.core.pipeline.RAPIDS` runs on
    either implementation unchanged.
    """

    def __init__(
        self,
        root: str | Path,
        bandwidths=None,
        names=None,
    ) -> None:
        self.root = Path(root)
        config_path = self.root / "cluster.json"
        if bandwidths is None:
            if not config_path.exists():
                raise ValueError(
                    f"no cluster at {self.root}; pass bandwidths to create one"
                )
            # rapidslint: disable-next=RPD115 -- cluster.json bootstrap read at attach time, before any injector can exist; data-path I/O goes through the filestore.read/write seams
            cfg = json.loads(config_path.read_text())
            bandwidths = cfg["bandwidths"]
            names = cfg["names"]
        else:
            bandwidths = [float(b) for b in bandwidths]
            if len(bandwidths) < 2:
                raise ValueError("a cluster needs at least 2 systems")
            if any(b <= 0 for b in bandwidths):
                raise ValueError("bandwidths must be positive")
            if names is None:
                names = [f"gcs-{i:02d}" for i in range(len(bandwidths))]
            self.root.mkdir(parents=True, exist_ok=True)
            config_path.write_text(
                json.dumps({"bandwidths": bandwidths, "names": list(names)})
            )
        self.systems = [
            FileStorageSystem(i, nm, bw, self.root / f"system-{i:02d}")
            for i, (nm, bw) in enumerate(zip(names, bandwidths))
        ]

    @property
    def n(self) -> int:
        return len(self.systems)

    @property
    def bandwidths(self) -> np.ndarray:
        return np.array([s.bandwidth for s in self.systems])

    def __getitem__(self, system_id: int) -> FileStorageSystem:
        return self.systems[system_id]

    def available_ids(self) -> list[int]:
        return [s.system_id for s in self.systems if s.available]

    def failed_ids(self) -> list[int]:
        return [s.system_id for s in self.systems if not s.available]

    def attach_injector(self, injector) -> None:
        """Attach (or clear) a chaos injector on every system."""
        for s in self.systems:
            s.injector = injector

    def fail(self, system_ids) -> None:
        for sid in system_ids:
            self.systems[sid].fail()

    def restore_all(self) -> None:
        for s in self.systems:
            s.restore()

    def place_level(
        self, object_name, level, fragments, *, system_ids=None, checksums=None
    ):
        if system_ids is None:
            system_ids = list(range(len(fragments)))
        if len(system_ids) != len(fragments):
            raise ValueError("system_ids must align with fragments")
        if len(fragments) > self.n:
            raise ValueError("more fragments than systems")
        if checksums is not None and len(checksums) != len(fragments):
            raise ValueError("checksums must align with fragments")
        for idx, (frag, sid) in enumerate(zip(fragments, system_ids)):
            data = bytes(frag) if not isinstance(frag, bytes) else frag
            crc = checksums[idx] if checksums is not None else crc32(data)
            self.systems[sid].put(
                StoredFragment(object_name, level, idx, len(data), data,
                               checksum=crc)
            )
        return list(system_ids)

    def locate(self, object_name, level, *, available_only=True):
        out = {}
        for s in self.systems:
            if available_only and not s.available:
                continue
            for name, lvl, idx in s.fragment_keys():
                if name == object_name and lvl == level:
                    out[idx] = s.system_id
        return out

    def fetch(self, object_name, level, index) -> StoredFragment:
        for s in self.systems:
            if s.available and s.has(object_name, level, index):
                return s.get(object_name, level, index)
        raise KeyError(
            f"fragment ({object_name!r}, {level}, {index}) unreachable"
        )

    def total_stored_bytes(self) -> int:
        return sum(s.used_bytes for s in self.systems)

    def level_available(self, object_name, level, needed) -> bool:
        return len(self.locate(object_name, level)) >= needed
