"""The geo-distributed storage cluster: n independently operated systems.

Owns fragment placement (one fragment per system per level, as in the
paper), failure injection, and the fragment inventory queries the
gathering optimiser needs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..formats import crc32
from .system import StorageSystem, StoredFragment, UnavailableError

__all__ = ["StorageCluster"]


class StorageCluster:
    """A set of geo-distributed storage systems.

    Parameters
    ----------
    bandwidths:
        Per-system WAN bandwidth estimates (bytes/s); the cluster size n
        is ``len(bandwidths)``.
    names:
        Optional endpoint names (defaults to ``gcs-00`` ... ``gcs-NN``).
    """

    def __init__(
        self,
        bandwidths: Sequence[float],
        names: Sequence[str] | None = None,
    ) -> None:
        if len(bandwidths) < 2:
            raise ValueError("a cluster needs at least 2 systems")
        if any(b <= 0 for b in bandwidths):
            raise ValueError("bandwidths must be positive")
        if names is None:
            names = [f"gcs-{i:02d}" for i in range(len(bandwidths))]
        if len(names) != len(bandwidths):
            raise ValueError("names and bandwidths must align")
        self.systems = [
            StorageSystem(system_id=i, name=nm, bandwidth=float(bw))
            for i, (nm, bw) in enumerate(zip(names, bandwidths))
        ]

    # -- basic queries --------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.systems)

    @property
    def bandwidths(self) -> np.ndarray:
        return np.array([s.bandwidth for s in self.systems])

    def available_ids(self) -> list[int]:
        return [s.system_id for s in self.systems if s.available]

    def failed_ids(self) -> list[int]:
        return [s.system_id for s in self.systems if not s.available]

    def __getitem__(self, system_id: int) -> StorageSystem:
        return self.systems[system_id]

    # -- failure injection -----------------------------------------------

    def attach_injector(self, injector) -> None:
        """Attach (or clear, with ``None``) a chaos
        :class:`~repro.chaos.FaultInjector` on every system."""
        for s in self.systems:
            s.injector = injector

    def fail(self, system_ids: Iterable[int]) -> None:
        for sid in system_ids:
            self.systems[sid].fail()

    def restore_all(self) -> None:
        for s in self.systems:
            s.restore()

    # -- placement --------------------------------------------------------

    def place_level(
        self,
        object_name: str,
        level: int,
        fragments: Sequence[bytes | np.ndarray | int],
        *,
        system_ids: Sequence[int] | None = None,
        checksums: Sequence[int] | None = None,
    ) -> list[int]:
        """Place one level's fragments, one per storage system.

        ``fragments`` entries may be payload bytes/arrays or plain byte
        counts (simulated fragments).  Default placement is fragment i on
        system i, matching the paper's one-EC-fragment-per-system layout;
        a custom ``system_ids`` permutation may be supplied.  Real
        payloads are stored with a CRC-32 (``checksums`` passes
        already-computed values so the pipeline hashes each blob once);
        reads verify it, so at-rest damage surfaces as a typed
        :class:`~repro.storage.system.CorruptFragmentError`.  Returns the
        placement (fragment index -> system id).
        """
        if system_ids is None:
            system_ids = list(range(len(fragments)))
        if len(system_ids) != len(fragments):
            raise ValueError("system_ids must align with fragments")
        if len(set(system_ids)) != len(system_ids):
            raise ValueError("one fragment per system: duplicate placement")
        if len(fragments) > self.n:
            raise ValueError(
                f"{len(fragments)} fragments exceed cluster size {self.n}"
            )
        if checksums is not None and len(checksums) != len(fragments):
            raise ValueError("checksums must align with fragments")
        for idx, (frag, sid) in enumerate(zip(fragments, system_ids)):
            if isinstance(frag, (int, np.integer)):
                sf = StoredFragment(object_name, level, idx, int(frag), None)
            else:
                data = bytes(frag) if not isinstance(frag, bytes) else frag
                crc = checksums[idx] if checksums is not None else crc32(data)
                sf = StoredFragment(
                    object_name, level, idx, len(data), data, checksum=crc
                )
            self.systems[sid].put(sf)
        return list(system_ids)

    # -- inventory --------------------------------------------------------

    def locate(
        self, object_name: str, level: int, *, available_only: bool = True
    ) -> dict[int, int]:
        """Map fragment index -> system id for one object level."""
        out: dict[int, int] = {}
        for s in self.systems:
            if available_only and not s.available:
                continue
            for frag in s._store.values():
                if frag.object_name == object_name and frag.level == level:
                    out[frag.index] = s.system_id
        return out

    def fetch(
        self, object_name: str, level: int, index: int
    ) -> StoredFragment:
        """Fetch a fragment from whichever available system holds it."""
        for s in self.systems:
            if s.available and s.has(object_name, level, index):
                return s.get(object_name, level, index)
        raise KeyError(
            f"fragment ({object_name!r}, level {level}, index {index}) "
            "not reachable on any available system"
        )

    def total_stored_bytes(self) -> int:
        return sum(s.used_bytes for s in self.systems)

    def level_available(
        self, object_name: str, level: int, needed: int
    ) -> bool:
        """Can ``needed`` (= k = n - m) fragments of this level be reached?"""
        return len(self.locate(object_name, level)) >= needed
