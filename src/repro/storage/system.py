"""A single geo-distributed storage system (endpoint).

Models one independently operated site: a Globus-Connect-Server-fronted
HPC storage system with a WAN bandwidth estimate and an availability
state.  Fragment payloads are held in an in-memory object store keyed by
``(object_name, level, fragment_index)``; at paper scale the benches use
*simulated* fragments (byte counts without payloads), which the store
also accepts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = [
    "StorageSystem",
    "StoredFragment",
    "UnavailableError",
    "CorruptFragmentError",
]


@dataclass
class StoredFragment:
    """One fragment resident on a storage system.

    ``payload`` is ``None`` for simulated (size-only) fragments.
    """

    object_name: str
    level: int
    index: int
    nbytes: int
    payload: bytes | None = None
    checksum: int | None = None

    @property
    def key(self) -> tuple[str, int, int]:
        return (self.object_name, self.level, self.index)


@dataclass
class StorageSystem:
    """An independently operated storage endpoint.

    Parameters
    ----------
    system_id:
        Stable integer id (index into the cluster).
    name:
        Human-readable endpoint name.
    bandwidth:
        Estimated WAN bandwidth to/from the user's site, in bytes/second
        (the paper derives these from Globus transfer logs; ours come
        from :mod:`repro.transfer.logs`).
    available:
        False while the system is failed or under maintenance.
    """

    system_id: int
    name: str
    bandwidth: float
    available: bool = True
    #: Optional chaos seam (see :mod:`repro.chaos`): consulted at every
    #: fragment read/write when set; ``None`` costs one identity check.
    injector: object | None = field(default=None, repr=False, compare=False)
    _store: dict[tuple[str, int, int], StoredFragment] = field(
        default_factory=dict, repr=False
    )
    #: Serialises store mutation against snapshot reads: the pipelined
    #: preparation path and the threaded tile helpers may place
    #: fragments from worker threads while another thread iterates
    #: ``fragments()`` or totals ``used_bytes``.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def put(self, frag: StoredFragment) -> None:
        """Store a fragment. Refuses while unavailable. Thread-safe."""
        if not self.available:
            raise UnavailableError(f"system {self.name} is unavailable")
        if self.injector is not None:
            self.injector.check(
                "storage.write", system_id=self.system_id,
                object_name=frag.object_name, level=frag.level,
                index=frag.index,
            )
        with self._lock:
            self._store[frag.key] = frag

    def get(self, object_name: str, level: int, index: int) -> StoredFragment:
        """Fetch a fragment, verifying its checksum when one is recorded.

        Raises KeyError if absent, UnavailableError if down, and
        :class:`CorruptFragmentError` when the payload — after the chaos
        seam's wire effects — no longer matches the checksum recorded at
        put time: corrupt bytes never reach the erasure decoder.
        """
        if not self.available:
            raise UnavailableError(f"system {self.name} is unavailable")
        with self._lock:
            frag = self._store[(object_name, level, index)]
        if self.injector is not None and frag.payload is not None:
            # Corruption/truncation mutates a copy: the resident
            # fragment survives intact, like bit rot on the wire.
            payload = self.injector.filter_payload(
                "storage.read", frag.payload, system_id=self.system_id,
                object_name=object_name, level=level, index=index,
            )
            if payload is not frag.payload:
                frag = StoredFragment(
                    object_name, level, index, len(payload), payload,
                    checksum=frag.checksum,
                )
        elif self.injector is not None:
            self.injector.check(
                "storage.read", system_id=self.system_id,
                object_name=object_name, level=level, index=index,
            )
        if frag.payload is not None and frag.checksum is not None:
            from ..formats import verify

            if not verify(frag.payload, frag.checksum):
                raise CorruptFragmentError(
                    f"fragment ({object_name!r}, level {level}, index {index}) "
                    f"on system {self.name} failed its checksum"
                )
        return frag

    def has(self, object_name: str, level: int, index: int) -> bool:
        with self._lock:
            return (object_name, level, index) in self._store

    def delete(self, object_name: str, level: int, index: int) -> None:
        if not self.available:
            raise UnavailableError(f"system {self.name} is unavailable")
        with self._lock:
            del self._store[(object_name, level, index)]

    def fragments(self) -> list[StoredFragment]:
        """All resident fragments (available systems only)."""
        if not self.available:
            raise UnavailableError(f"system {self.name} is unavailable")
        with self._lock:
            return list(self._store.values())

    @property
    def used_bytes(self) -> int:
        """Total bytes resident (counted even while unavailable)."""
        with self._lock:
            return sum(f.nbytes for f in self._store.values())

    def fail(self) -> None:
        """Take the system down (outage or scheduled maintenance)."""
        self.available = False

    def restore(self) -> None:
        """Bring the system back; resident fragments survive the outage."""
        self.available = True


class UnavailableError(RuntimeError):
    """Raised when an operation targets a failed/maintenance system."""


class CorruptFragmentError(RuntimeError):
    """A fragment payload no longer matches its recorded checksum.

    Subclasses :class:`RuntimeError` so the restoration pipeline's
    erasure handling (``_FETCH_ERRORS``) absorbs it like any other
    per-fragment loss; the scrubber catches it explicitly to classify
    at-rest damage as ``corrupt``.
    """
