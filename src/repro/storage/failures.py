"""Failure models for geo-distributed storage systems.

The paper assumes independent outages with per-system probability ``p``
(set to 0.01 from the OLCF 2020 operational assessment).  Besides the
i.i.d. Bernoulli model used by the analytic availability formulas, this
module provides a scheduled-maintenance model and a correlated
(region-shared-fate) model for failure-injection tests — both stress the
qualitative claim that upper levels survive more concurrent outages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BernoulliFailureModel",
    "MaintenanceSchedule",
    "CorrelatedFailureModel",
    "exact_k_failures",
]


@dataclass
class BernoulliFailureModel:
    """Independent outages: each system down with probability ``p``.

    This is the model behind Eqs. 1, 2, 4 and 5 in the paper.
    """

    p: float
    seed: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be a probability, got {self.p}")
        self._rng = np.random.default_rng(self.seed)

    def sample(self, n: int) -> np.ndarray:
        """Boolean mask of length n; True = system failed."""
        return self._rng.random(n) < self.p

    def sample_failed_ids(self, n: int) -> list[int]:
        return np.nonzero(self.sample(n))[0].tolist()


def exact_k_failures(n: int, k: int, seed: int | None = None) -> list[int]:
    """Draw exactly ``k`` distinct failed systems out of ``n`` (for the
    'N concurrent failures' scenarios in Fig. 1 and the restoration
    experiments)."""
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, {n}], got {k}")
    rng = np.random.default_rng(seed)
    return sorted(rng.choice(n, size=k, replace=False).tolist())


@dataclass
class MaintenanceSchedule:
    """Deterministic maintenance windows: system -> list of (start, end).

    Times are in arbitrary simulation units; a system is unavailable at
    time ``t`` iff some window contains it.
    """

    windows: dict[int, list[tuple[float, float]]] = field(default_factory=dict)

    def add_window(self, system_id: int, start: float, end: float) -> None:
        if end <= start:
            raise ValueError("maintenance window must have end > start")
        self.windows.setdefault(system_id, []).append((start, end))

    def down_at(self, t: float) -> list[int]:
        """Systems unavailable at time t."""
        return sorted(
            sid
            for sid, ws in self.windows.items()
            if any(s <= t < e for s, e in ws)
        )


@dataclass
class CorrelatedFailureModel:
    """Region-shared-fate failures.

    Systems are partitioned into regions; with probability ``p_region`` a
    whole region fails together, and surviving systems additionally fail
    independently with ``p_single``.  Violates the independence
    assumption of the analytic model on purpose — used to test that the
    pipeline degrades gracefully, not to reproduce paper numbers.
    """

    regions: list[list[int]]
    p_region: float
    p_single: float
    seed: int | None = None

    def __post_init__(self) -> None:
        for prob in (self.p_region, self.p_single):
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"invalid probability {prob}")
        seen: set[int] = set()
        for region in self.regions:
            for sid in region:
                if sid in seen:
                    raise ValueError(f"system {sid} appears in two regions")
                seen.add(sid)
        self._rng = np.random.default_rng(self.seed)

    def sample_failed_ids(self, n: int) -> list[int]:
        failed: set[int] = set()
        for region in self.regions:
            if self._rng.random() < self.p_region:
                failed.update(region)
        for sid in range(n):
            if sid not in failed and self._rng.random() < self.p_single:
                failed.add(sid)
        return sorted(failed)
