"""Geo-distributed storage substrate: systems, clusters, failure models."""

from .cluster import StorageCluster
from .failures import (
    BernoulliFailureModel,
    CorrelatedFailureModel,
    MaintenanceSchedule,
    exact_k_failures,
)
from .filestore import FileStorageCluster, FileStorageSystem
from .placement import (
    CapacityError,
    CapacityTracker,
    apply_moves,
    plan_placement,
    rebalance_moves,
)
from .system import (
    CorruptFragmentError,
    StorageSystem,
    StoredFragment,
    UnavailableError,
)

__all__ = [
    "StorageCluster",
    "FileStorageCluster",
    "FileStorageSystem",
    "CapacityTracker",
    "CapacityError",
    "plan_placement",
    "rebalance_moves",
    "apply_moves",
    "StorageSystem",
    "StoredFragment",
    "UnavailableError",
    "CorruptFragmentError",
    "BernoulliFailureModel",
    "CorrelatedFailureModel",
    "MaintenanceSchedule",
    "exact_k_failures",
]
