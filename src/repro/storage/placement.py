"""Fragment placement policies.

The paper's layout is one EC-fragment per storage system per level,
which assumes every system can absorb its share.  Real geo-distributed
sites have unequal free capacity, and a placement that ignores it
concentrates load on the biggest sites — hurting both balance and the
independence assumption behind the availability math.  This module adds
capacity-aware placement:

* :class:`CapacityTracker` — per-system capacity/usage accounting over a
  cluster;
* :func:`plan_placement` — choose which ``n_frag <= n`` systems host a
  level's fragments, balancing post-placement utilisation;
* :func:`rebalance_moves` — propose fragment moves that shrink the
  utilisation spread (greedy, move-count bounded).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cluster import StorageCluster

__all__ = [
    "CapacityTracker",
    "plan_placement",
    "rebalance_moves",
    "apply_moves",
    "CapacityError",
]


class CapacityError(RuntimeError):
    """Raised when fragments cannot fit under the capacity constraints."""


@dataclass
class CapacityTracker:
    """Tracks per-system capacity and committed bytes for a cluster.

    ``used()`` counts resident bytes *plus* pending commitments —
    placements and rebalance moves that have been planned but not yet
    applied.  Planners register their proposals with :meth:`commit`, so
    successive planning calls against one tracker see each other's
    reservations instead of overcommitting the same free space.
    """

    cluster: StorageCluster
    capacities: np.ndarray
    _pending: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.capacities = np.asarray(self.capacities, dtype=np.float64)
        if len(self.capacities) != self.cluster.n:
            raise ValueError("capacities must align with the cluster")
        if np.any(self.capacities <= 0):
            raise ValueError("capacities must be positive")
        self._pending = np.zeros(self.cluster.n, dtype=np.float64)

    def resident(self) -> np.ndarray:
        """Bytes physically stored per system (no commitments)."""
        return np.array(
            [s.used_bytes for s in self.cluster.systems], dtype=np.float64
        )

    def used(self) -> np.ndarray:
        return self.resident() + self._pending

    def free(self) -> np.ndarray:
        return self.capacities - self.used()

    def utilization(self) -> np.ndarray:
        return self.used() / self.capacities

    def fits(self, system_id: int, nbytes: float) -> bool:
        return self.free()[system_id] >= nbytes

    # -- pending commitments ------------------------------------------------

    @property
    def pending(self) -> np.ndarray:
        """Planned-but-unapplied byte deltas per system (signed)."""
        return self._pending.copy()

    def commit(self, system_id: int, nbytes: float) -> None:
        """Reserve (or, with a negative delta, unreserve) planned bytes."""
        self._pending[system_id] += nbytes

    def settle(self, system_id: int, nbytes: float) -> None:
        """A planned transfer of ``nbytes`` onto/off ``system_id`` became
        physical: drop its reservation (the bytes now show up — or no
        longer show up — in ``resident()``)."""
        self._pending[system_id] -= nbytes

    def clear_commitments(self) -> None:
        self._pending[:] = 0.0


def plan_placement(
    tracker: CapacityTracker,
    fragment_bytes: float,
    n_fragments: int,
    *,
    available_only: bool = True,
    exclude: "set[int] | frozenset[int] | tuple | list" = (),
    commit: bool = False,
) -> list[int]:
    """Pick the systems for one level's fragments (one fragment each).

    Greedy balanced fill: repeatedly assign the next fragment to the
    system with the lowest *post-placement* utilisation that still has
    room.  ``exclude`` removes systems from consideration (the repair
    engine uses it to keep a regenerated fragment off systems already
    hosting one of the same stripe); ``commit=True`` registers the
    chosen placements as pending bytes on the tracker so later planning
    calls cannot hand out the same space.  Raises
    :class:`CapacityError` when fewer than ``n_fragments`` systems can
    absorb a fragment.
    """
    if n_fragments < 1:
        raise ValueError("need at least one fragment")
    if n_fragments > tracker.cluster.n:
        raise CapacityError(
            f"{n_fragments} fragments exceed the {tracker.cluster.n}-system cluster"
        )
    used = tracker.used()
    caps = tracker.capacities
    excluded = set(int(i) for i in exclude)
    eligible = [
        s.system_id
        for s in tracker.cluster.systems
        if (s.available or not available_only) and s.system_id not in excluded
    ]
    chosen: list[int] = []
    for _ in range(n_fragments):
        best, best_util = None, np.inf
        for sid in eligible:
            if sid in chosen:
                continue
            if caps[sid] - used[sid] < fragment_bytes:
                continue
            util = (used[sid] + fragment_bytes) / caps[sid]
            if util < best_util:
                best, best_util = sid, util
        if best is None:
            raise CapacityError(
                f"only {len(chosen)} of {n_fragments} fragments fit "
                "under current capacities"
            )
        chosen.append(best)
        used[best] += fragment_bytes
    if commit:
        for sid in chosen:
            tracker.commit(sid, fragment_bytes)
    return chosen


def rebalance_moves(
    tracker: CapacityTracker,
    *,
    max_moves: int = 16,
    threshold: float = 0.05,
    commit: bool = True,
) -> list[tuple[tuple[str, int, int], int, int]]:
    """Propose fragment moves that reduce the utilisation spread.

    Returns ``[(fragment_key, from_system, to_system), ...]``; each move
    takes a fragment from the most-utilised *available* system to the
    least-utilised one with room, stopping when the spread falls below
    ``threshold`` or ``max_moves`` is reached.  Moves honour the
    one-fragment-per-system rule (a system never receives a fragment of
    a level it already hosts).

    ``commit=True`` (the default) registers each proposal's byte deltas
    as pending commitments on the tracker, so a ``plan_placement`` call
    issued mid-plan sees the space these moves will consume and free;
    :func:`apply_moves` settles the commitments as it executes them.
    """
    if max_moves < 0:
        raise ValueError("max_moves must be >= 0")
    moves = []
    used = tracker.used()
    caps = tracker.capacities
    available = np.array([s.available for s in tracker.cluster.systems])
    # Working copy of each system's resident fragment keys.
    resident = {
        s.system_id: {f.key: f.nbytes for f in s._store.values()}
        for s in tracker.cluster.systems
        if s.available
    }
    for _ in range(max_moves):
        utils = used / caps
        # Unavailable systems can neither donate nor receive: mask them
        # out of both ends instead of letting an offline hot spot stall
        # the whole plan.
        donor_utils = np.where(available, utils, -np.inf)
        hot = int(np.argmax(donor_utils))
        reachable = utils[available]
        spread = float(reachable.max() - reachable.min()) if reachable.size else 0.0
        if spread < threshold or hot not in resident or not resident[hot]:
            break
        # Pick the hot system's largest fragment that fits somewhere colder.
        candidates = sorted(
            resident[hot].items(), key=lambda kv: -kv[1]
        )
        moved = False
        for key, nbytes in candidates:
            obj, level, _ = key
            order = np.argsort(utils)
            for cold in order:
                cold = int(cold)
                if cold == hot or cold not in resident:
                    continue
                if caps[cold] - used[cold] < nbytes:
                    continue
                if any(
                    k[0] == obj and k[1] == level for k in resident[cold]
                ):
                    continue  # one fragment of a level per system
                if (used[hot] - nbytes) / caps[hot] < (used[cold] + nbytes) / caps[cold]:
                    continue  # the move would just swap who is hot
                moves.append((key, hot, cold))
                used[hot] -= nbytes
                used[cold] += nbytes
                if commit:
                    tracker.commit(hot, -nbytes)
                    tracker.commit(cold, nbytes)
                resident[cold][key] = nbytes
                del resident[hot][key]
                moved = True
                break
            if moved:
                break
        if not moved:
            break
    return moves


def apply_moves(
    tracker: CapacityTracker,
    moves: list[tuple[tuple[str, int, int], int, int]],
    *,
    catalog=None,
) -> int:
    """Execute proposed moves on the tracker's cluster.

    Each fragment is read from its source (through the chaos seam and
    checksum verification — corrupt bytes are never propagated), written
    to the destination, deleted at the source, and its pending
    commitments settled.  ``catalog`` optionally keeps the metadata
    catalog's fragment locations in sync.  Returns the number of moves
    applied; a move whose source read fails is skipped with its
    reservation left in place (the scrubber classifies the damage on its
    next sweep; call ``tracker.clear_commitments()`` when the planning
    session ends).
    """
    cluster = tracker.cluster
    applied = 0
    for (obj, level, index), src, dst in moves:
        try:
            frag = cluster[src].get(obj, level, index)
        except (KeyError, ValueError, OSError, RuntimeError):
            continue
        cluster[dst].put(frag)
        cluster[src].delete(obj, level, index)
        tracker.settle(src, -frag.nbytes)
        tracker.settle(dst, frag.nbytes)
        if catalog is not None:
            catalog.relocate_fragment(obj, level, index, dst)
        applied += 1
    return applied
