"""``repro.analysis`` — rapidslint static analysis + thread sanitizer.

Three complementary layers:

* :mod:`repro.analysis.framework` / :mod:`repro.analysis.rules` — an
  AST-based analyzer with project-specific single-file rules (GF(256)
  operator misuse, EC dtype hygiene, thread_map shared-state writes,
  solver nondeterminism, …), per-line suppression comments that
  *require* a justification, and the ``rapids lint`` CLI entry point.
* the whole-program engine — :mod:`repro.analysis.callgraph` (project
  symbol table + call graph from JSON-serializable per-file summaries),
  :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow`
  (per-function CFGs with exception edges and a forward dataflow
  framework), :mod:`repro.analysis.wholeprog` (the interprocedural
  rules RPD113–RPD116), and :mod:`repro.analysis.cache` (the
  content-hash incremental driver behind ``rapids lint --changed``).
* :mod:`repro.analysis.sanitizer` — a runtime shadow-tracker that
  instruments pooled :func:`repro.parallel.threads.thread_map` calls
  (``RAPIDS_THREAD_SANITIZER=1``) and fails tests when a worker
  callable writes shared state without a lock.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

from . import rules as _rules  # noqa: F401 — importing registers the rules
from . import wholeprog as _wholeprog  # noqa: F401 — registers RPD113-RPD116
from .cache import DEFAULT_CACHE_PATH, LintCache
from .callgraph import CallGraph, ModuleSummary, summarize_module
from .cfg import CFG, build_cfg
from .dataflow import ForwardAnalysis, run_forward, tainted_names
from .framework import (
    META_RULE_ID,
    Analyzer,
    Finding,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    Severity,
    all_rules,
    get_rule,
    iter_python_files,
    register,
)
from .sanitizer import (
    SANITIZER_ENV,
    MutationEvent,
    SharedStateTracker,
    ThreadSanitizerError,
    sanitizer_mode,
)

__all__ = [
    "META_RULE_ID",
    "Analyzer",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "ProjectRule",
    "Severity",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "register",
    "CFG",
    "build_cfg",
    "ForwardAnalysis",
    "run_forward",
    "tainted_names",
    "CallGraph",
    "ModuleSummary",
    "summarize_module",
    "LintCache",
    "DEFAULT_CACHE_PATH",
    "SANITIZER_ENV",
    "MutationEvent",
    "SharedStateTracker",
    "ThreadSanitizerError",
    "sanitizer_mode",
    "run_lint",
    "changed_files",
]


def changed_files(base: str = "HEAD", cwd: str | None = None) -> set[str]:
    """Posix paths changed vs ``base`` (git diff + untracked files)."""
    out: set[str] = set()
    for args in (
        ["git", "diff", "--name-only", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args, capture_output=True, text=True, cwd=cwd, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            continue
        out.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    return {p for p in out if p.endswith(".py")}


def run_lint(
    paths,
    *,
    select=None,
    output=print,
    fmt: str = "text",
    use_cache: bool = True,
    cache_path: str | None = None,
    changed_base: str | None = None,
) -> int:
    """Lint ``paths`` and report findings; returns a process exit code.

    ``0`` when the tree is clean, ``1`` when any non-suppressed finding
    remains (regardless of severity — the CI gate fails on warnings
    too), ``2`` on usage errors.  ``changed_base`` restricts *reported*
    findings to files that differ from that git ref (the whole project
    is still analyzed, so whole-program rules see every caller).
    """
    analyzer = Analyzer(select=select)
    cache = LintCache(cache_path or DEFAULT_CACHE_PATH) if use_cache else None
    restrict = None
    if changed_base is not None:
        restrict = changed_files(changed_base)
        # Paths may be reported relative to the repo root; accept both
        # spellings so `rapids lint --changed src` works from anywhere.
        restrict |= {str(Path(p)) for p in restrict}
    findings = analyzer.check_paths(paths, cache=cache, restrict_to=restrict)
    if fmt == "json":
        import json

        output(
            json.dumps(
                [
                    {
                        "rule": f.rule_id,
                        "severity": str(f.severity),
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for f in findings:
            output(f.render())
    if findings:
        worst = max(f.severity for f in findings)
        output(
            f"rapidslint: {len(findings)} finding(s), worst severity "
            f"{worst} ({len(analyzer.rules)} rules active)"
        )
        return 1
    return 0
