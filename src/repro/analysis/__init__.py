"""``repro.analysis`` — rapidslint static analysis + thread sanitizer.

Two complementary halves:

* :mod:`repro.analysis.framework` / :mod:`repro.analysis.rules` — an
  AST-based analyzer with ~10 project-specific rules (GF(256) operator
  misuse, EC dtype hygiene, thread_map shared-state writes, solver
  nondeterminism, …), per-line suppression comments that *require* a
  justification, and the ``rapids lint`` CLI entry point.
* :mod:`repro.analysis.sanitizer` — a runtime shadow-tracker that
  instruments pooled :func:`repro.parallel.threads.thread_map` calls
  (``RAPIDS_THREAD_SANITIZER=1``) and fails tests when a worker
  callable writes shared state without a lock.
"""

from __future__ import annotations

from . import rules as _rules  # noqa: F401 — importing registers the rules
from .framework import (
    META_RULE_ID,
    Analyzer,
    Finding,
    ModuleContext,
    Rule,
    Severity,
    all_rules,
    get_rule,
    iter_python_files,
    register,
)
from .sanitizer import (
    SANITIZER_ENV,
    MutationEvent,
    SharedStateTracker,
    ThreadSanitizerError,
    sanitizer_mode,
)

__all__ = [
    "META_RULE_ID",
    "Analyzer",
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "register",
    "SANITIZER_ENV",
    "MutationEvent",
    "SharedStateTracker",
    "ThreadSanitizerError",
    "sanitizer_mode",
    "run_lint",
]


def run_lint(
    paths,
    *,
    select=None,
    output=print,
    fmt: str = "text",
) -> int:
    """Lint ``paths`` and report findings; returns a process exit code.

    ``0`` when the tree is clean, ``1`` when any non-suppressed finding
    remains (regardless of severity — the CI gate fails on warnings
    too), ``2`` on usage errors.
    """
    analyzer = Analyzer(select=select)
    findings = analyzer.check_paths(paths)
    if fmt == "json":
        import json

        output(
            json.dumps(
                [
                    {
                        "rule": f.rule_id,
                        "severity": str(f.severity),
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for f in findings:
            output(f.render())
    if findings:
        worst = max(f.severity for f in findings)
        output(
            f"rapidslint: {len(findings)} finding(s), worst severity "
            f"{worst} ({len(analyzer.rules)} rules active)"
        )
        return 1
    return 0
