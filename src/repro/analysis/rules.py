"""The rapidslint rule set — project-specific checks for this codebase.

Every rule exists because this repository has a class of bug that is
*silent* when it happens: GF(256) arithmetic done with integer operators
produces plausible-looking wrong fragments; dtype upcasts on the EC path
change bytes without an exception; a ``thread_map`` callable that
mutates shared state corrupts results only under load.  The rules:

========  =======================  ========================================
id        name                     catches
========  =======================  ========================================
RPD101    gf256-raw-arith          ``*``/``**``/``+``/``-`` applied to
                                   values produced by :mod:`repro.ec.gf256`
RPD102    ec-astype-copy           ``.astype`` on an EC path without an
                                   explicit ``copy=`` intent
RPD103    threadmap-shared-state   worker callables mutating closure /
                                   global / ``self`` state without a lock
RPD104    solver-nondeterminism    ``time.time`` / unseeded or legacy RNG
                                   inside solver & optimizer modules
RPD105    broad-except             bare ``except`` or ``except Exception``
                                   that swallows instead of re-raising
RPD106    all-drift                ``__all__`` out of sync with public defs
RPD107    mutable-default          mutable default argument values
RPD108    open-no-ctx              ``open()`` outside a ``with`` block
RPD109    ec-implicit-dtype        EC buffers created without ``dtype=``
RPD110    unlocked-global-cache    ``global`` rebinds and module-dict
                                   fill-on-first-use without a lock
                                   (racy under ``thread_map``)
RPD111    unverified-payload       fragment ``.payload`` consumed in a
                                   scope with no ``verify``/``crc32``
                                   call (corrupt bytes reach the decoder)
RPD112    procpool-callable        lambdas / nested functions / bound
                                   methods submitted to a
                                   ``ProcessPoolExecutor`` (not picklable
                                   by reference; break under ``spawn``)
RPD117    service-blocking-no-     unbounded blocking calls (queue get,
          deadline                 ``.wait()``, future ``.result()``,
                                   lock ``.acquire()``, fsync) inside
                                   ``repro.service`` handlers that never
                                   consult the request deadline
========  =======================  ========================================

(``RPD100`` is reserved by the framework for malformed / unused
suppression comments.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from .dataflow import tainted_names
from .framework import Finding, ModuleContext, Rule, Severity, register

__all__ = [
    "GFRawArithRule",
    "ECAstypeCopyRule",
    "ThreadMapSharedStateRule",
    "SolverNondeterminismRule",
    "BroadExceptRule",
    "AllDriftRule",
    "MutableDefaultRule",
    "OpenNoContextRule",
    "ECImplicitDtypeRule",
    "UnlockedGlobalCacheRule",
    "UnverifiedPayloadRule",
    "ProcessPoolCallableRule",
    "ServiceBlockingNoDeadlineRule",
]

#: Public callables of :mod:`repro.ec.gf256` that return field elements.
_GF_API = {
    "add", "sub", "mul", "div", "inv", "pow_",
    "mul_table_row", "full_mul_table", "pair_mul_table",
}

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _root_name(node: ast.AST) -> str | None:
    """The base ``Name`` id of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _attr_chain(node: ast.AST) -> str:
    """Render ``a.b.c`` chains; empty string for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_lock_name(text: str) -> bool:
    low = text.lower()
    return "lock" in low or "mutex" in low or "sem" in low


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's nodes without descending into nested function
    scopes (class bodies are transparent; methods are not)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPES):
            stack.extend(ast.iter_child_nodes(node))


@register
class GFRawArithRule(Rule):
    """Integer arithmetic on GF(256) values.

    ``a * b`` on arrays holding field elements is the canonical silent
    EC bug: NumPy happily multiplies the byte values as integers and the
    parity fragments come out wrong with no exception.  Any value
    produced by the :mod:`repro.ec.gf256` API must be combined with
    ``gf256.mul`` / ``gf256.add`` (XOR), never with ``*``, ``**``, ``+``
    or ``-``.
    """

    rule_id = "RPD101"
    name = "gf256-raw-arith"
    severity = Severity.ERROR
    description = "raw */**/+/- applied to GF(256) field elements"
    rationale = (
        "integer arithmetic on field elements silently corrupts fragments"
    )

    _OPS = {ast.Mult: "*", ast.Pow: "**", ast.Add: "+", ast.Sub: "-"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        mod_aliases, fn_aliases = self._gf_imports(module.tree)
        if not mod_aliases and not fn_aliases:
            return
        scopes: list[ast.AST] = [module.tree]
        scopes += [n for n in ast.walk(module.tree) if isinstance(n, _SCOPES[:2])]
        for scope in scopes:
            tainted = self._tainted_names(scope, mod_aliases, fn_aliases)
            if not tainted:
                continue
            for node in _walk_scope(scope):
                if not isinstance(node, ast.BinOp):
                    continue
                op = self._OPS.get(type(node.op))
                if op is None:
                    continue
                for side in (node.left, node.right):
                    name = _root_name(side)
                    if name in tainted or self._is_gf_call(
                        side, mod_aliases, fn_aliases
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"raw '{op}' on GF(256) value "
                            f"{name or 'expression'!r} — use gf256.mul/"
                            "add (XOR) instead of integer arithmetic",
                        )
                        break

    @staticmethod
    def _gf_imports(tree: ast.Module) -> tuple[set[str], set[str]]:
        """Names bound to the gf256 module / to its field functions."""
        mods: set[str] = set()
        fns: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name.endswith("gf256"):
                        mods.add(a.asname or a.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                for a in node.names:
                    if a.name == "gf256":
                        mods.add(a.asname or "gf256")
                    elif mod.endswith("gf256") and a.name in _GF_API:
                        fns.add(a.asname or a.name)
        return mods, fns

    @staticmethod
    def _is_gf_call(node: ast.AST, mods: set[str], fns: set[str]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        f = node.func
        if isinstance(f, ast.Name) and f.id in fns:
            return True
        if (
            isinstance(f, ast.Attribute)
            and f.attr in _GF_API
            and isinstance(f.value, ast.Name)
            and f.value.id in mods
        ):
            return True
        return False

    def _tainted_names(
        self, scope: ast.AST, mods: set[str], fns: set[str]
    ) -> set[str]:
        """Names assigned (anywhere in the scope) from gf256 API calls,
        propagated to any fixpoint through names/subscripts of tainted
        names — the generic :func:`repro.analysis.dataflow.tainted_names`
        engine with gf256 calls as seeds."""
        assigns = [
            n
            for n in _walk_scope(scope)
            if isinstance(n, ast.Assign)
            and len(n.targets) == 1
            and isinstance(n.targets[0], ast.Name)
        ]
        return tainted_names(
            scope,
            seeds=lambda v: self._is_gf_call(v, mods, fns),
            propagate=lambda v: isinstance(v, (ast.Subscript, ast.Name)),
            stmts=assigns,
        )


@register
class ECAstypeCopyRule(Rule):
    """``.astype`` without explicit ``copy=`` on EC modules.

    On the EC path an ``astype`` is either a deliberate widening for an
    intermediate (``copy=True`` is the safe default but costs an
    allocation on a hot path) or a free view-cast (``copy=False``).
    Forcing the keyword makes the overflow/aliasing intent visible at
    the call site.
    """

    rule_id = "RPD102"
    name = "ec-astype-copy"
    severity = Severity.WARNING
    description = ".astype without explicit copy= on an EC path"
    rationale = "implicit copies hide aliasing and overflow intent"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_package("/ec/"):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and not any(k.arg == "copy" for k in node.keywords)
            ):
                yield self.finding(
                    module,
                    node,
                    ".astype(...) on an EC path without copy= — state the "
                    "copy/overflow intent explicitly",
                )


@register
class ThreadMapSharedStateRule(Rule):
    """Worker callables that write shared state without a lock.

    A callable handed to ``thread_map`` / ``pool.map`` / ``pool.submit``
    runs concurrently; any write it makes to a closure variable, a
    module global, or ``self`` is a data race unless it happens under a
    lock (or the writes are provably disjoint — in which case suppress
    with a justification, and pass ``allow_shared_writes`` to the
    runtime sanitizer).
    """

    rule_id = "RPD103"
    name = "threadmap-shared-state"
    severity = Severity.ERROR
    description = "thread_map callable mutates shared state without a lock"
    rationale = "unsynchronized writes corrupt results only under load"

    _MUTATORS = {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "write",
    }

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        reported: set[ast.AST] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn_arg = self._worker_callable(node)
            if fn_arg is None:
                continue
            target = self._resolve(fn_arg, node, parents)
            if target is None or target in reported:
                continue
            reported.add(target)
            yield from self._scan_callable(module, target)

    @staticmethod
    def _worker_callable(call: ast.Call) -> ast.AST | None:
        f = call.func
        if isinstance(f, ast.Name) and f.id == "thread_map" and call.args:
            return call.args[0]
        if (
            isinstance(f, ast.Attribute)
            and f.attr in {"map", "submit"}
            and call.args
        ):
            root = _root_name(f.value) or ""
            if any(s in root.lower() for s in ("pool", "executor", "ex")):
                return call.args[0]
        return None

    @staticmethod
    def _resolve(
        node: ast.AST, call: ast.Call, parents: dict
    ) -> ast.AST | None:
        """Find the def a worker-callable reference points at, searching
        the call's enclosing scopes innermost-first so same-named defs in
        other scopes don't shadow the real one."""
        if isinstance(node, ast.Lambda):
            return node
        if isinstance(node, ast.Name):
            wanted = node.id
        elif isinstance(node, ast.Attribute):
            wanted = node.attr
        else:
            return None
        scope: ast.AST | None = call
        while scope is not None:
            scope = parents.get(scope)
            if scope is None or not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module,
                        ast.ClassDef)
            ):
                continue
            for n in _walk_scope(scope):
                if (
                    isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and n.name == wanted
                ):
                    return n
            if isinstance(scope, ast.Module):
                break
        # methods referenced as attributes (self.work / obj.work) may
        # live in any class of the module
        for n in parents:
            if (
                isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n.name == wanted
                and isinstance(parents.get(n), ast.ClassDef)
            ):
                return n
        return None

    def _scan_callable(
        self, module: ModuleContext, fn: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(fn, ast.Lambda):
            return  # lambdas cannot contain statements, nothing to mutate
        local = {a.arg for a in fn.args.args}
        local |= {a.arg for a in fn.args.posonlyargs}
        local |= {a.arg for a in fn.args.kwonlyargs}
        if fn.args.vararg:
            local.add(fn.args.vararg.arg)
        if fn.args.kwarg:
            local.add(fn.args.kwarg.arg)
        declared: set[str] = set()
        for n in ast.walk(fn):
            if isinstance(n, (ast.Global, ast.Nonlocal)):
                declared.update(n.names)
            elif isinstance(n, ast.Assign):
                for t in n.targets:
                    if isinstance(t, ast.Name):
                        local.add(t.id)
            elif isinstance(n, (ast.For, ast.comprehension)):
                t = n.target
                if isinstance(t, ast.Name):
                    local.add(t.id)
        local -= declared
        yield from self._scan_body(module, fn.body, fn.name, local, declared,
                                   locked=False)

    @staticmethod
    def _holds_lock(stmt: ast.With) -> bool:
        for item in stmt.items:
            ctx = item.context_expr
            chain = _attr_chain(ctx)
            if not chain and isinstance(ctx, ast.Call):
                chain = _attr_chain(ctx.func)
            if chain and _is_lock_name(chain):
                return True
        return False

    def _stmt_exprs(self, stmt: ast.stmt) -> Iterator[ast.AST]:
        """The statement itself plus its expression-level nodes, not
        descending into nested statement bodies."""
        yield stmt
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody", "handlers"):
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                if isinstance(v, ast.AST):
                    yield from ast.walk(v)

    def _scan_body(
        self, module, stmts, fn_name, local, declared, *, locked
    ) -> Iterator[Finding]:
        for stmt in stmts:
            now_locked = locked or (
                isinstance(stmt, ast.With) and self._holds_lock(stmt)
            )
            for node in self._stmt_exprs(stmt):
                yield from self._check_node(
                    module, node, fn_name, local, declared, now_locked
                )
            for sub in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, sub, None)
                if inner:
                    yield from self._scan_body(
                        module, inner, fn_name, local, declared,
                        locked=now_locked,
                    )
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._scan_body(
                    module, handler.body, fn_name, local, declared,
                    locked=now_locked,
                )

    def _check_node(
        self, module, node, fn_name, local, declared, locked
    ) -> Iterator[Finding]:
        if locked:
            return
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, (ast.Subscript, ast.Attribute)):
                    root = _root_name(t)
                    if root is not None and (root == "self" or root not in local):
                        yield self.finding(
                            module, node,
                            f"worker callable {fn_name!r} writes shared "
                            f"state {root!r} without a lock",
                        )
                elif isinstance(t, ast.Name) and t.id in declared:
                    yield self.finding(
                        module, node,
                        f"worker callable {fn_name!r} rebinds "
                        f"{t.id!r} (global/nonlocal) without a lock",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in self._MUTATORS:
                root = _root_name(node.func.value)
                if root is not None and (root == "self" or root not in local):
                    yield self.finding(
                        module, node,
                        f"worker callable {fn_name!r} calls "
                        f".{node.func.attr}() on shared {root!r} "
                        "without a lock",
                    )


@register
class SolverNondeterminismRule(Rule):
    """Nondeterminism inside solver / optimizer modules.

    The gathering and FT solvers must be replayable: a result that
    cannot be reproduced cannot be debugged or benchmarked.  Wall-clock
    *budgets* use ``time.perf_counter`` (allowed); ``time.time``,
    legacy ``np.random.*`` calls, the stdlib ``random`` module, and
    ``default_rng()`` with no seed argument are flagged.
    """

    rule_id = "RPD104"
    name = "solver-nondeterminism"
    severity = Severity.ERROR
    description = "time.time / unseeded or legacy RNG in solver code"
    rationale = "solver results must be replayable for debugging and benches"

    _SCOPED = ("/optimize/", "core/ft_optimizer", "core/gathering")
    _LEGACY_NP = {
        "rand", "randn", "randint", "random", "choice", "shuffle",
        "permutation", "seed", "uniform", "normal", "random_sample",
    }
    _STDLIB_RANDOM = {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "seed", "gauss",
    }

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_package(*self._SCOPED):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain.endswith("default_rng") or chain == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "default_rng() with no seed — thread the caller's "
                        "seed through so solver runs are replayable",
                    )
            elif chain == "time.time":
                yield self.finding(
                    module, node,
                    "time.time() in solver code — use time.perf_counter() "
                    "for budgets and keep results seed-deterministic",
                )
            elif chain.startswith(("np.random.", "numpy.random.")):
                attr = chain.rsplit(".", 1)[1]
                if attr in self._LEGACY_NP:
                    yield self.finding(
                        module, node,
                        f"legacy global-state RNG {chain}() — use a seeded "
                        "np.random.default_rng(seed) Generator",
                    )
            elif chain.split(".", 1)[0] == "random" and "." in chain:
                if chain.split(".", 1)[1] in self._STDLIB_RANDOM:
                    yield self.finding(
                        module, node,
                        f"stdlib {chain}() in solver code — use a seeded "
                        "np.random.default_rng(seed) Generator",
                    )


@register
class BroadExceptRule(Rule):
    """Bare or overly broad exception handlers that swallow errors.

    On the prepare/restore pipeline a swallowed exception turns a loud
    failure into silently missing fragments.  ``except Exception`` is
    allowed only when the handler re-raises.
    """

    rule_id = "RPD105"
    name = "broad-except"
    severity = Severity.WARNING
    description = "bare except / except Exception without re-raise"
    rationale = "swallowed errors become silent data loss on pipeline paths"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or any(
                isinstance(t, ast.Name) and t.id in ("Exception", "BaseException")
                for t in (
                    node.type.elts
                    if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
                if t is not None
            )
            if not broad:
                continue
            reraises = any(
                isinstance(n, ast.Raise) for n in ast.walk(node)
            )
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare 'except:' — name the exceptions you expect",
                )
            elif not reraises:
                yield self.finding(
                    module, node,
                    "broad 'except Exception' without re-raise — name the "
                    "exceptions or re-raise after handling",
                )


@register
class AllDriftRule(Rule):
    """``__all__`` drifting away from the module's public definitions.

    Checked both ways: every ``__all__`` entry must resolve to a
    top-level definition, and every public top-level ``def``/``class``
    must appear in ``__all__`` (or be renamed ``_private``).
    """

    rule_id = "RPD106"
    name = "all-drift"
    severity = Severity.WARNING
    description = "__all__ out of sync with public top-level definitions"
    rationale = "drifting exports break star-imports and API docs"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        tree = module.tree
        all_node, exported = self._find_all(tree)
        if all_node is None:
            return
        defined, public_defs = set(), {}
        self._collect(tree.body, defined, public_defs)
        for name in exported:
            if name not in defined:
                yield self.finding(
                    module, all_node,
                    f"__all__ exports {name!r} which is not defined at "
                    "module top level",
                )
        for name, node in public_defs.items():
            if name not in exported:
                yield self.finding(
                    module, node,
                    f"public {type(node).__name__.replace('Def', '').lower()}"
                    f" {name!r} is missing from __all__",
                )

    @staticmethod
    def _find_all(tree: ast.Module):
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "__all__"
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                names = [
                    e.value
                    for e in node.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
                return node, set(names)
        return None, set()

    def _collect(self, stmts, defined: set, public_defs: dict) -> None:
        for node in stmts:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                defined.add(node.name)
                if not node.name.startswith("_"):
                    public_defs.setdefault(node.name, node)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        defined.add(t.id)
                    elif isinstance(t, ast.Tuple):
                        defined.update(
                            e.id for e in t.elts if isinstance(e, ast.Name)
                        )
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    defined.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for a in node.names:
                    defined.add(a.asname or a.name.split(".")[0])
            elif isinstance(node, (ast.If, ast.Try)):
                for sub in ("body", "orelse", "finalbody"):
                    self._collect(getattr(node, sub, []) or [], defined,
                                  public_defs)
                for h in getattr(node, "handlers", []) or []:
                    self._collect(h.body, defined, public_defs)


@register
class MutableDefaultRule(Rule):
    """Mutable default argument values — shared across every call."""

    rule_id = "RPD107"
    name = "mutable-default"
    severity = Severity.ERROR
    description = "mutable default argument ([], {}, set(), ...)"
    rationale = "defaults are evaluated once and shared between calls"

    _CTORS = {"list", "dict", "set", "bytearray"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                        ast.ListComp, ast.DictComp,
                                        ast.SetComp)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._CTORS
                ):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {name!r} — use None "
                        "and create inside the function",
                    )


@register
class OpenNoContextRule(Rule):
    """``open()`` whose handle is not managed by a ``with`` block.

    A leaked handle on the storage path keeps fragment files locked on
    some platforms and loses buffered writes on crash.  Long-lived
    handles that are closed elsewhere must be suppressed with a
    justification naming where they are closed.
    """

    rule_id = "RPD108"
    name = "open-no-ctx"
    severity = Severity.WARNING
    description = "open() call outside a with-statement"
    rationale = "leaked handles lose buffered writes and lock files"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        with_exprs = {
            id(item.context_expr)
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and id(node) not in with_exprs
            ):
                yield self.finding(
                    module, node,
                    "open() outside a 'with' — use a context manager, or "
                    "suppress stating where the handle is closed",
                )


@register
class ECImplicitDtypeRule(Rule):
    """EC buffers created without an explicit ``dtype``.

    ``np.zeros(n)`` is float64; on the EC path every buffer is
    ``uint8``/``uint16`` and an implicit float buffer silently corrupts
    the byte math the first time it is mixed in.  (``arange`` is exempt:
    index arrays legitimately default to the platform int.)
    """

    rule_id = "RPD109"
    name = "ec-implicit-dtype"
    severity = Severity.WARNING
    description = "np.zeros/ones/empty/full without dtype= on an EC path"
    rationale = "default float64 buffers silently corrupt GF(256) byte math"

    _CTORS = {"zeros", "ones", "empty", "full"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_package("/ec/"):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._CTORS
                and _root_name(node.func) in ("np", "numpy")
                and not any(k.arg == "dtype" for k in node.keywords)
                # dtype may also be positional: arg 2 for zeros/ones/empty,
                # arg 3 for full(shape, fill_value, dtype).
                and len(node.args) < (3 if node.func.attr == "full" else 2)
            ):
                yield self.finding(
                    module, node,
                    f"np.{node.func.attr}(...) without dtype= on an EC "
                    "path — the float64 default corrupts byte math",
                )


@register
class UnlockedGlobalCacheRule(Rule):
    """Module-level cache populated without a lock.

    Since PR 1 every hot path may run under ``thread_map``; the
    fill-on-first-use pattern then has a check-then-act race.  Even when
    the computation is idempotent, redundant rebuilds waste work and the
    pattern breaks the moment the cached value is mutable.

    Two shapes are caught:

    * rebinding a module global (``global X`` + ``X = ...``) outside a
      lock, and
    * filling a module-level dict cache by subscript
      (``_CACHE[key] = ...``) outside a lock, in a function that first
      *checks* the dict (``_CACHE.get(...)`` or ``key in _CACHE``) —
      the check is what makes it check-then-act rather than a benign
      import-time registry write.
    """

    rule_id = "RPD110"
    name = "unlocked-global-cache"
    severity = Severity.WARNING
    description = (
        "fill-on-first-use of module-level cache without holding a lock"
    )
    rationale = "check-then-act on module state races under thread_map"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        module_dicts = self._module_dicts(module.tree)
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            globals_declared: set[str] = set()
            for n in ast.walk(fn):
                if isinstance(n, ast.Global):
                    globals_declared.update(n.names)
            checked_dicts = self._checked_dicts(fn, module_dicts)
            if not globals_declared and not checked_dicts:
                continue
            yield from self._scan(module, fn.body, fn.name, globals_declared,
                                  checked_dicts, locked=False)

    @staticmethod
    def _module_dicts(tree: ast.Module) -> set[str]:
        """Names bound at module level to a dict literal or ``dict()``."""
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            is_dict = isinstance(value, ast.Dict) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "dict"
            )
            if not is_dict:
                continue
            for t in targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        return names

    @staticmethod
    def _checked_dicts(fn: ast.AST, module_dicts: set[str]) -> set[str]:
        """Module dicts this function reads via ``.get`` or ``in`` first."""
        checked: set[str] = set()
        if not module_dicts:
            return checked
        for n in ast.walk(fn):
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "get"
                and isinstance(n.func.value, ast.Name)
                and n.func.value.id in module_dicts
            ):
                checked.add(n.func.value.id)
            elif isinstance(n, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in n.ops
            ):
                for comp in n.comparators:
                    if isinstance(comp, ast.Name) and comp.id in module_dicts:
                        checked.add(comp.id)
        return checked

    def _scan(self, module, stmts, fn_name, names, dict_names, *, locked):
        for stmt in stmts:
            now_locked = locked
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    ctx = item.context_expr
                    chain = _attr_chain(ctx) or _attr_chain(
                        getattr(ctx, "func", None) or ast.Name(id="")
                    )
                    if chain and _is_lock_name(chain):
                        now_locked = True
            if isinstance(stmt, (ast.Assign, ast.AugAssign)) and not now_locked:
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name) and t.id in names:
                        yield self.finding(
                            module, stmt,
                            f"{fn_name!r} assigns global {t.id!r} without "
                            "holding a lock — guard the fill-on-first-use "
                            "with threading.Lock",
                        )
                    elif (
                        isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id in dict_names
                    ):
                        yield self.finding(
                            module, stmt,
                            f"{fn_name!r} fills module-level cache "
                            f"{t.value.id!r} by subscript after an unlocked "
                            "get/containment check — guard the "
                            "fill-on-first-use with threading.Lock",
                        )
            for sub in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, sub, None)
                if inner:
                    yield from self._scan(module, inner, fn_name, names,
                                          dict_names, locked=now_locked)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._scan(module, handler.body, fn_name, names,
                                      dict_names, locked=now_locked)


@register
class UnverifiedPayloadRule(Rule):
    """Fragment payloads consumed without checksum verification in scope.

    PR 5's integrity contract: corrupt bytes never reach the erasure
    decoder (or any other consumer) silently.  Every scope that *reads*
    a fragment's ``.payload`` must either verify it (``verify(...)``),
    be the producer stamping its checksum (``crc32(...)``), or carry a
    suppression explaining why verification already happened upstream —
    e.g. the payload came from :meth:`StorageSystem.get`, which raises
    :class:`~repro.storage.system.CorruptFragmentError` on mismatch.

    ``x.payload is None``-style presence checks are not consumption and
    are exempt; so are stores (``frag.payload = ...``).
    """

    rule_id = "RPD111"
    name = "unverified-payload"
    severity = Severity.WARNING
    description = (
        "fragment .payload consumed in a scope without a "
        "verify()/crc32() call"
    )
    rationale = "unverified fragment bytes silently corrupt decoded data"

    _BLESSING = {"verify", "crc32"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_package("/repro/"):
            return
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            n for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            use = self._first_unchecked_use(scope)
            if use is None:
                continue
            where = getattr(scope, "name", "<module>")
            yield self.finding(
                module, use,
                f"{where!r} consumes a fragment .payload with no "
                "verify()/crc32() call in scope — corrupt bytes pass "
                "through undetected",
            )

    def _first_unchecked_use(self, scope: ast.AST) -> ast.AST | None:
        exempt: set[int] = set()
        uses: list[ast.Attribute] = []
        blessed = False
        for node in _walk_scope(scope):
            if isinstance(node, ast.Call):
                fname = (
                    node.func.id if isinstance(node.func, ast.Name)
                    else node.func.attr if isinstance(node.func, ast.Attribute)
                    else None
                )
                if fname in self._BLESSING:
                    blessed = True
            elif isinstance(node, ast.Compare):
                # `x.payload is None` / `is not None`: presence check,
                # not consumption.
                operands = [node.left, *node.comparators]
                if any(
                    isinstance(o, ast.Constant) and o.value is None
                    for o in operands
                ):
                    exempt.update(
                        id(o) for o in operands
                        if isinstance(o, ast.Attribute)
                        and o.attr == "payload"
                    )
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "payload"
                and isinstance(node.ctx, ast.Load)
            ):
                uses.append(node)
        if blessed:
            return None
        for use in sorted(uses, key=lambda n: (n.lineno, n.col_offset)):
            if id(use) not in exempt:
                return use
        return None


@register
class ProcessPoolCallableRule(Rule):
    """Non-module-level callables submitted to a process pool.

    A ``ProcessPoolExecutor`` pickles the callable by *reference*
    (module + qualified name): lambdas and nested functions fail at
    submission under ``spawn`` — and, worse, appear to work under
    ``fork`` until the start method changes — while bound methods drag
    their whole instance through the pickle on every call, exactly the
    bulk-data-on-the-hot-path traffic the shared-memory transport
    exists to avoid.  Stage callables must be module-level functions
    (see ``repro.parallel.procpipe``'s ``_prepare_tile_worker``).
    """

    rule_id = "RPD112"
    name = "procpool-callable"
    severity = Severity.ERROR
    description = (
        "lambda / nested function / bound method submitted to a "
        "ProcessPoolExecutor"
    )
    rationale = (
        "only module-level functions pickle by reference portably; "
        "anything else breaks under spawn or ships bulk state per call"
    )

    _SUBMITTERS = {"submit", "map"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        pools = self._pool_names(module.tree)
        nested = self._nested_defs(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._SUBMITTERS
                and node.args
            ):
                continue
            receiver = node.func.value
            direct = (
                isinstance(receiver, ast.Call)
                and self._is_pool_ctor(receiver)
            )
            named = (
                isinstance(receiver, ast.Name) and receiver.id in pools
            )
            if not (direct or named):
                continue
            target = node.args[0]
            problem = self._describe_problem(target, nested)
            if problem is not None:
                yield self.finding(
                    module, target,
                    f"{problem} submitted to process pool "
                    f"'{getattr(receiver, 'id', 'ProcessPoolExecutor()')}' "
                    "— use a module-level function (pickled by "
                    "reference; no per-call state shipping)",
                )

    @staticmethod
    def _is_pool_ctor(call: ast.Call) -> bool:
        func = call.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        return name == "ProcessPoolExecutor"

    def _pool_names(self, tree: ast.AST) -> set[str]:
        """Names bound to process pools via assignment or ``with``."""
        pools: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Call) and self._is_pool_ctor(
                    node.value
                ):
                    pools.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and self._is_pool_ctor(item.context_expr)
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        pools.add(item.optional_vars.id)
        return pools

    @staticmethod
    def _nested_defs(tree: ast.AST) -> set[str]:
        """Names of functions defined inside another function."""
        nested: set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is outer:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(inner.name)
        return nested

    @staticmethod
    def _describe_problem(target: ast.AST, nested: set[str]) -> str | None:
        if isinstance(target, ast.Lambda):
            return "lambda"
        if isinstance(target, ast.Name) and target.id in nested:
            return f"nested function '{target.id}'"
        if isinstance(target, ast.Attribute):
            root = _root_name(target)
            if root == "self":
                return f"bound method 'self.{target.attr}'"
        return None


@register
class ServiceBlockingNoDeadlineRule(Rule):
    """Unbounded blocking calls in service handlers that ignore deadlines.

    The archive service's contract is that every request carries a
    deadline and every stage boundary honours it: a handler that parks
    on ``queue.get()``, ``future.result()``, ``event.wait()``,
    ``lock.acquire()`` or an fsync with no bound can absorb a request
    past its deadline — the caller sees neither a result nor a typed
    rejection, which is exactly the hang the service exists to prevent.
    A blocking call is fine when it passes an explicit ``timeout=`` (the
    bound usually derives from ``deadline.remaining()``), or when its
    enclosing function consults the request deadline and so owns the
    budget explicitly.
    """

    rule_id = "RPD117"
    name = "service-blocking-no-deadline"
    severity = Severity.WARNING
    description = (
        "unbounded blocking call in a repro.service handler that never "
        "consults the request deadline"
    )
    rationale = (
        "a handler parked without a bound absorbs requests past their "
        "deadline with neither a result nor a typed rejection"
    )

    #: Attribute calls that block indefinitely by default.  ``get`` /
    #: ``wait`` / ``result`` / ``acquire`` only count with *zero*
    #: positional arguments (``d.get(key)`` is a dict lookup,
    #: ``ev.wait(5)`` is already bounded); ``fsync`` always blocks on
    #: durability regardless of its fd argument.
    _BLOCKING = {"get", "wait", "result", "acquire"}
    _ALWAYS_BLOCKING = {"fsync"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_package("/service/"):
            return
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if self._consults_deadline(fn):
                continue
            for node in _walk_scope(fn):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                attr = node.func.attr
                if attr in self._ALWAYS_BLOCKING:
                    blocking = True
                elif attr in self._BLOCKING:
                    blocking = not node.args
                else:
                    continue
                if not blocking or self._has_timeout(node):
                    continue
                yield self.finding(
                    module, node,
                    f"'.{attr}()' can block past the request deadline — "
                    "pass timeout= (e.g. from deadline.remaining()) or "
                    f"consult the deadline in '{fn.name}'",
                )

    @staticmethod
    def _has_timeout(call: ast.Call) -> bool:
        return any(kw.arg == "timeout" for kw in call.keywords)

    @staticmethod
    def _consults_deadline(fn: ast.AST) -> bool:
        """Does this function's own scope touch the request deadline —
        a ``deadline``-named binding or a ``.remaining()``/``.expired``
        consultation?"""
        for node in _walk_scope(fn):
            if isinstance(node, ast.Attribute):
                if node.attr in ("remaining", "expired"):
                    return True
                if "deadline" in node.attr.lower():
                    return True
            elif isinstance(node, ast.Name):
                if "deadline" in node.id.lower():
                    return True
        return False
