"""Core of ``rapidslint`` — the project-specific static analyzer.

The framework is deliberately small: a rule is a class with an id, a
severity, and a ``check(module)`` generator; the analyzer parses each
file once into an :class:`ast.Module`, hands every registered rule the
same :class:`ModuleContext`, and filters the resulting findings through
the suppression comments found in the source.

Suppression syntax (one honest justification per suppression)::

    x = risky()  # rapidslint: disable=RPD105 -- handle is closed in close()
    # rapidslint: disable-next=RPD108,RPD105 -- long-lived segment handle
    fh = open(path, "rb")
    # rapidslint: disable-file=RPD106 -- generated module, names re-exported

``disable=`` applies to the findings on its own line, ``disable-next=``
to the following line, and ``disable-file=`` to the whole module.  The
`` -- justification`` part is **mandatory**: a suppression without one
(or naming an unknown rule id) is itself reported as :data:`META_RULE_ID`
and does not silence anything.
"""

from __future__ import annotations

import ast
import enum
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from .cache import LintCache, content_hash
from .callgraph import CallGraph, ModuleSummary, summarize_module

__all__ = [
    "Severity",
    "Finding",
    "Rule",
    "ProjectRule",
    "ModuleContext",
    "ProjectContext",
    "Analyzer",
    "register",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "META_RULE_ID",
]

#: Reserved id for problems with suppression comments themselves.
META_RULE_ID = "RPD100"

_SUPPRESS_RE = re.compile(
    r"#\s*rapidslint:\s*(?P<kind>disable|disable-next|disable-file)\s*="
    r"\s*(?P<rules>[A-Z0-9, ]+?)\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


class Severity(enum.IntEnum):
    """Finding severities, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error" reads better than "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule (or by the suppression parser)."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )


@dataclass
class _Suppression:
    rules: tuple[str, ...]
    line: int          # the line the suppression applies to (1-based)
    whole_file: bool
    justification: str
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        if finding.rule_id not in self.rules:
            return False
        return self.whole_file or finding.line == self.line


class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    def __init__(self, path: str | Path, source: str, tree: ast.Module):
        self.path = str(path)
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        # Normalised, '/'-separated path for cheap "is this an EC
        # module?" checks in path-scoped rules.
        self.posix_path = Path(path).as_posix()

    def in_package(self, *fragments: str) -> bool:
        """True if the module path contains any of the given fragments
        (e.g. ``"/ec/"`` or ``"/optimize/"``)."""
        return any(f in self.posix_path for f in fragments)


class ProjectContext:
    """Everything a whole-program rule needs: every module's extracted
    :class:`~repro.analysis.callgraph.ModuleSummary` plus the linked
    :class:`~repro.analysis.callgraph.CallGraph`.

    Project rules see *summaries*, never ASTs — that restriction is what
    lets the incremental driver run them from the cache without
    re-parsing unchanged files.
    """

    def __init__(self, summaries: dict[str, ModuleSummary]) -> None:
        self.summaries = summaries
        self.graph = CallGraph(summaries.values())


class Rule:
    """Base class for rapidslint rules.

    Subclasses set the class attributes and implement :meth:`check` as a
    generator of :class:`Finding`.  Use :meth:`finding` to stamp the
    rule's id/severity and the node's position automatically.
    """

    rule_id: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""
    rationale: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Instead of :meth:`check` (which is a no-op for these), subclasses
    implement :meth:`check_project` over a :class:`ProjectContext`.
    Findings still carry a concrete file/line so suppressions work the
    same way as for local rules.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self, path: str, line: int, message: str, col: int = 0
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY or cls.rule_id == META_RULE_ID:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    # rapidslint: disable-next=RPD110 -- import-time registration; decorators run on the single thread importing the module
    _REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one registered rule by id (KeyError if unknown)."""
    return _REGISTRY[rule_id]


def _known_rule_ids() -> set[str]:
    return set(_REGISTRY) | {META_RULE_ID}


def _parse_suppressions(
    module: ModuleContext,
) -> tuple[list[_Suppression], list[Finding]]:
    """Extract suppression comments; malformed ones become findings."""
    suppressions: list[_Suppression] = []
    problems: list[Finding] = []
    known = _known_rule_ids()
    # Only genuine COMMENT tokens count — a suppression example quoted in
    # a docstring or string literal must not silence anything.
    try:
        comments = [
            (tok.start[0], tok.start[1], tok.string)
            for tok in tokenize.generate_tokens(
                io.StringIO(module.source).readline
            )
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        comments = []
    for lineno, col, text in comments:
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        rules = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
        why = (m.group("why") or "").strip()
        bad: str | None = None
        unknown = [r for r in rules if r not in known]
        if not rules:
            bad = "suppression lists no rule ids"
        elif unknown:
            bad = f"suppression names unknown rule id(s): {', '.join(unknown)}"
        elif not why:
            bad = (
                "suppression has no justification — write "
                "'# rapidslint: disable=ID -- why this is safe'"
            )
        if bad is not None:
            problems.append(
                Finding(META_RULE_ID, Severity.ERROR, module.path, lineno, col, bad)
            )
            continue
        kind = m.group("kind")
        suppressions.append(
            _Suppression(
                rules=rules,
                line=lineno + 1 if kind == "disable-next" else lineno,
                whole_file=kind == "disable-file",
                justification=why,
            )
        )
    return suppressions, problems


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if "__pycache__" in c.parts or c in seen:
                continue
            seen.add(c)
            yield c


def _finding_to_json(f: Finding) -> list[Any]:
    return [f.rule_id, int(f.severity), f.path, f.line, f.col, f.message]


def _finding_from_json(row: Sequence[Any]) -> Finding:
    return Finding(row[0], Severity(row[1]), row[2], row[3], row[4], row[5])


def _suppression_to_json(s: _Suppression) -> list[Any]:
    return [list(s.rules), s.line, s.whole_file, s.justification]


def _suppression_from_json(row: Sequence[Any]) -> _Suppression:
    return _Suppression(tuple(row[0]), row[1], row[2], row[3])


@dataclass
class _FileResult:
    """Raw (pre-selection, pre-suppression) analysis of one file."""

    path: str
    meta: list[Finding]          # RPD100 problems: syntax errors, bad disables
    raw: list[Finding]           # every local rule's findings, unfiltered
    suppressions: list[_Suppression]
    summary: ModuleSummary | None

    def to_cache(self) -> dict[str, Any]:
        return {
            "meta": [_finding_to_json(f) for f in self.meta],
            "findings": [_finding_to_json(f) for f in self.raw],
            "suppressions": [
                _suppression_to_json(s) for s in self.suppressions
            ],
            "summary": self.summary.to_json() if self.summary else None,
        }

    @classmethod
    def from_cache(cls, path: str, data: dict[str, Any]) -> "_FileResult":
        return cls(
            path=path,
            meta=[_finding_from_json(r) for r in data["meta"]],
            raw=[_finding_from_json(r) for r in data["findings"]],
            suppressions=[
                _suppression_from_json(r) for r in data["suppressions"]
            ],
            summary=(
                ModuleSummary.from_json(data["summary"])
                if data["summary"] else None
            ),
        )


class Analyzer:
    """Runs a set of rules over files and applies suppressions.

    ``select`` restricts to the given rule ids; by default every
    registered rule runs.  Unused suppressions are reported (as
    :data:`META_RULE_ID` warnings) so stale disables cannot accumulate.

    The driver always *computes* with every registered rule and applies
    ``select`` when combining results — that is what lets one on-disk
    cache entry serve any rule subset.  Whole-program rules
    (:class:`ProjectRule`) run over the linked module summaries after
    the per-file pass; their findings flow through the same per-file
    suppression machinery.
    """

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        *,
        select: Sequence[str] | None = None,
        report_unused_suppressions: bool = True,
    ) -> None:
        self._all = list(rules) if rules is not None else all_rules()
        self.rules = list(self._all)
        if select is not None:
            wanted = set(select)
            unknown = wanted - {r.rule_id for r in self.rules}
            if unknown:
                raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
            self.rules = [r for r in self.rules if r.rule_id in wanted]
        self.report_unused_suppressions = report_unused_suppressions

    # -- per-file raw pass -------------------------------------------------

    def _analyze_one(self, source: str, path: str) -> _FileResult:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return _FileResult(
                path=path,
                meta=[
                    Finding(
                        META_RULE_ID,
                        Severity.ERROR,
                        path,
                        exc.lineno or 1,
                        exc.offset or 0,
                        f"syntax error: {exc.msg}",
                    )
                ],
                raw=[],
                suppressions=[],
                summary=None,
            )
        module = ModuleContext(path, source, tree)
        suppressions, problems = _parse_suppressions(module)
        raw: list[Finding] = []
        for rule in self._all:
            if isinstance(rule, ProjectRule):
                continue
            raw.extend(rule.check(module))
        return _FileResult(
            path=path,
            meta=problems,
            raw=raw,
            suppressions=suppressions,
            summary=summarize_module(module.posix_path, tree),
        )

    def _project_findings(
        self, results: Sequence[_FileResult]
    ) -> list[Finding]:
        project_rules = [r for r in self._all if isinstance(r, ProjectRule)]
        if not project_rules:
            return []
        summaries = {
            r.summary.path: r.summary for r in results if r.summary is not None
        }
        if not summaries:
            return []
        project = ProjectContext(summaries)
        findings: list[Finding] = []
        for rule in project_rules:
            findings.extend(rule.check_project(project))
        return findings

    # -- combining ---------------------------------------------------------

    def _combine(
        self,
        results: Sequence[_FileResult],
        project_findings: Sequence[Finding],
    ) -> list[Finding]:
        active = {r.rule_id for r in self.rules}
        by_path: dict[str, list[Finding]] = {}
        for f in project_findings:
            if f.rule_id in active:
                by_path.setdefault(f.path, []).append(f)
        out: list[Finding] = []
        known_paths = set()
        for res in results:
            known_paths.add(res.path)
            if res.summary is not None:
                known_paths.add(res.summary.path)
            findings = list(res.meta)
            candidates = [f for f in res.raw if f.rule_id in active]
            candidates += by_path.get(res.path, [])
            if res.summary is not None and res.summary.path != res.path:
                candidates += by_path.get(res.summary.path, [])
            for f in candidates:
                hit = next(
                    (s for s in res.suppressions if s.matches(f)), None
                )
                if hit is not None:
                    hit.used = True
                else:
                    findings.append(f)
            if self.report_unused_suppressions:
                for s in res.suppressions:
                    if not s.used and set(s.rules) & active:
                        findings.append(
                            Finding(
                                META_RULE_ID,
                                Severity.WARNING,
                                res.path,
                                s.line,
                                0,
                                "unused suppression for "
                                + ", ".join(s.rules)
                                + " — remove it",
                            )
                        )
            findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
            out.extend(findings)
        # A project rule may (rarely) blame a path outside the analyzed
        # set, e.g. a missing declaration file; don't drop those.
        for f in project_findings:
            if f.rule_id in active and f.path not in known_paths:
                out.append(f)
        return out

    # -- public entry points -----------------------------------------------

    def check_source(
        self, source: str, path: str | Path = "<string>"
    ) -> list[Finding]:
        """Analyze one source string (the unit-test entry point).

        Whole-program rules run too, over a single-module project — so a
        fixture exercising RPD113-RPD116 works through the same helper
        as the local rules.
        """
        return self.check_sources({str(path): source})

    def check_sources(self, sources: dict[str, str]) -> list[Finding]:
        """Analyze a dict of ``path -> source`` as one project."""
        results = [
            self._analyze_one(src, path) for path, src in sources.items()
        ]
        return self._combine(results, self._project_findings(results))

    def check_file(self, path: str | Path) -> list[Finding]:
        source = Path(path).read_text(encoding="utf-8")
        return self.check_source(source, str(path))

    def check_paths(
        self,
        paths: Sequence[str | Path],
        *,
        cache: LintCache | None = None,
        restrict_to: set[str] | None = None,
    ) -> list[Finding]:
        """Analyze files/directories, optionally through ``cache``.

        ``restrict_to`` (posix paths) filters which files' findings are
        *reported*; everything is still analyzed so whole-program rules
        see the full project (``rapids lint --changed``).
        """
        results: list[_FileResult] = []
        file_hashes: dict[str, str] = {}
        for f in iter_python_files(paths):
            path = str(f)
            posix = f.as_posix()
            try:
                source = Path(f).read_text(encoding="utf-8")
            except OSError as exc:
                results.append(
                    _FileResult(
                        path=path,
                        meta=[
                            Finding(
                                META_RULE_ID, Severity.ERROR, path, 1, 0,
                                f"cannot read file: {exc}",
                            )
                        ],
                        raw=[], suppressions=[], summary=None,
                    )
                )
                continue
            h = content_hash(source)
            file_hashes[posix] = h
            entry = cache.lookup(posix, h) if cache is not None else None
            if entry is not None:
                results.append(_FileResult.from_cache(path, entry))
            else:
                res = self._analyze_one(source, path)
                results.append(res)
                if cache is not None:
                    cache.store(posix, h, res.to_cache())

        if cache is not None:
            fp = LintCache.project_fingerprint(file_hashes)
            cached = cache.lookup_project(fp)
            if cached is not None:
                project_findings = [_finding_from_json(r) for r in cached]
            else:
                project_findings = self._project_findings(results)
                cache.store_project(
                    fp, [_finding_to_json(f) for f in project_findings]
                )
            cache.prune(set(file_hashes))
            cache.save()
        else:
            project_findings = self._project_findings(results)

        findings = self._combine(results, project_findings)
        if restrict_to is not None:
            findings = [
                f for f in findings
                if Path(f.path).as_posix() in restrict_to
            ]
        return findings
