"""Core of ``rapidslint`` — the project-specific static analyzer.

The framework is deliberately small: a rule is a class with an id, a
severity, and a ``check(module)`` generator; the analyzer parses each
file once into an :class:`ast.Module`, hands every registered rule the
same :class:`ModuleContext`, and filters the resulting findings through
the suppression comments found in the source.

Suppression syntax (one honest justification per suppression)::

    x = risky()  # rapidslint: disable=RPD105 -- handle is closed in close()
    # rapidslint: disable-next=RPD108,RPD105 -- long-lived segment handle
    fh = open(path, "rb")
    # rapidslint: disable-file=RPD106 -- generated module, names re-exported

``disable=`` applies to the findings on its own line, ``disable-next=``
to the following line, and ``disable-file=`` to the whole module.  The
`` -- justification`` part is **mandatory**: a suppression without one
(or naming an unknown rule id) is itself reported as :data:`META_RULE_ID`
and does not silence anything.
"""

from __future__ import annotations

import ast
import enum
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Severity",
    "Finding",
    "Rule",
    "ModuleContext",
    "Analyzer",
    "register",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "META_RULE_ID",
]

#: Reserved id for problems with suppression comments themselves.
META_RULE_ID = "RPD100"

_SUPPRESS_RE = re.compile(
    r"#\s*rapidslint:\s*(?P<kind>disable|disable-next|disable-file)\s*="
    r"\s*(?P<rules>[A-Z0-9, ]+?)\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


class Severity(enum.IntEnum):
    """Finding severities, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error" reads better than "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule (or by the suppression parser)."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )


@dataclass
class _Suppression:
    rules: tuple[str, ...]
    line: int          # the line the suppression applies to (1-based)
    whole_file: bool
    justification: str
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        if finding.rule_id not in self.rules:
            return False
        return self.whole_file or finding.line == self.line


class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    def __init__(self, path: str | Path, source: str, tree: ast.Module):
        self.path = str(path)
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        # Normalised, '/'-separated path for cheap "is this an EC
        # module?" checks in path-scoped rules.
        self.posix_path = Path(path).as_posix()

    def in_package(self, *fragments: str) -> bool:
        """True if the module path contains any of the given fragments
        (e.g. ``"/ec/"`` or ``"/optimize/"``)."""
        return any(f in self.posix_path for f in fragments)


class Rule:
    """Base class for rapidslint rules.

    Subclasses set the class attributes and implement :meth:`check` as a
    generator of :class:`Finding`.  Use :meth:`finding` to stamp the
    rule's id/severity and the node's position automatically.
    """

    rule_id: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""
    rationale: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY or cls.rule_id == META_RULE_ID:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    # rapidslint: disable-next=RPD110 -- import-time registration; decorators run on the single thread importing the module
    _REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def _known_rule_ids() -> set[str]:
    return set(_REGISTRY) | {META_RULE_ID}


def _parse_suppressions(
    module: ModuleContext,
) -> tuple[list[_Suppression], list[Finding]]:
    """Extract suppression comments; malformed ones become findings."""
    suppressions: list[_Suppression] = []
    problems: list[Finding] = []
    known = _known_rule_ids()
    # Only genuine COMMENT tokens count — a suppression example quoted in
    # a docstring or string literal must not silence anything.
    try:
        comments = [
            (tok.start[0], tok.start[1], tok.string)
            for tok in tokenize.generate_tokens(
                io.StringIO(module.source).readline
            )
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        comments = []
    for lineno, col, text in comments:
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        rules = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
        why = (m.group("why") or "").strip()
        bad: str | None = None
        unknown = [r for r in rules if r not in known]
        if not rules:
            bad = "suppression lists no rule ids"
        elif unknown:
            bad = f"suppression names unknown rule id(s): {', '.join(unknown)}"
        elif not why:
            bad = (
                "suppression has no justification — write "
                "'# rapidslint: disable=ID -- why this is safe'"
            )
        if bad is not None:
            problems.append(
                Finding(META_RULE_ID, Severity.ERROR, module.path, lineno, col, bad)
            )
            continue
        kind = m.group("kind")
        suppressions.append(
            _Suppression(
                rules=rules,
                line=lineno + 1 if kind == "disable-next" else lineno,
                whole_file=kind == "disable-file",
                justification=why,
            )
        )
    return suppressions, problems


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if "__pycache__" in c.parts or c in seen:
                continue
            seen.add(c)
            yield c


class Analyzer:
    """Runs a set of rules over files and applies suppressions.

    ``select`` restricts to the given rule ids; by default every
    registered rule runs.  Unused suppressions are reported (as
    :data:`META_RULE_ID` warnings) so stale disables cannot accumulate.
    """

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        *,
        select: Sequence[str] | None = None,
        report_unused_suppressions: bool = True,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {r.rule_id for r in self.rules}
            if unknown:
                raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
            self.rules = [r for r in self.rules if r.rule_id in wanted]
        self.report_unused_suppressions = report_unused_suppressions

    def check_source(
        self, source: str, path: str | Path = "<string>"
    ) -> list[Finding]:
        """Analyze one source string (the unit-test entry point)."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Finding(
                    META_RULE_ID,
                    Severity.ERROR,
                    str(path),
                    exc.lineno or 1,
                    exc.offset or 0,
                    f"syntax error: {exc.msg}",
                )
            ]
        module = ModuleContext(path, source, tree)
        suppressions, findings = _parse_suppressions(module)
        for rule in self.rules:
            for f in rule.check(module):
                hit = next((s for s in suppressions if s.matches(f)), None)
                if hit is not None:
                    hit.used = True
                else:
                    findings.append(f)
        if self.report_unused_suppressions:
            for s in suppressions:
                active = {r.rule_id for r in self.rules}
                if not s.used and set(s.rules) & active:
                    findings.append(
                        Finding(
                            META_RULE_ID,
                            Severity.WARNING,
                            module.path,
                            s.line,
                            0,
                            "unused suppression for "
                            + ", ".join(s.rules)
                            + " — remove it",
                        )
                    )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def check_file(self, path: str | Path) -> list[Finding]:
        source = Path(path).read_text(encoding="utf-8")
        return self.check_source(source, path)

    def check_paths(self, paths: Sequence[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        for f in iter_python_files(paths):
            findings.extend(self.check_file(f))
        return findings
