"""Runtime thread sanitizer for ``thread_map`` worker callables.

The static rule RPD103 catches shared-state writes it can see in the
AST; this module catches the ones it cannot.  When enabled, every
pooled :func:`repro.parallel.threads.thread_map` call shadow-tracks the
mutable state its callable can reach — closure cells, the bound
``self``, and module globals the code object references — by
fingerprinting each object before the map and after every worker
invocation.  A fingerprint that changes during the parallel region is
an *observed write to shared state*; unless the callable also carries a
lock (it closed over a ``threading.Lock``-like object, so the writes
are presumed synchronized) or the caller explicitly vouched for the
object via ``allow_shared_writes``, the map fails with
:class:`ThreadSanitizerError` naming the object and the threads that
wrote it.

Enable it with the environment variable ``RAPIDS_THREAD_SANITIZER``:

* ``1`` / ``strict`` — violations raise :class:`ThreadSanitizerError`;
* ``warn`` — violations emit a :class:`RuntimeWarning` instead (useful
  for first runs over an unsanitized suite).

The fingerprints are best-effort (capped ``repr`` for containers, a
CRC over the bytes for ndarrays): the sanitizer is a test-time oracle,
not a proof system — it reliably catches the "append to a closure list
from eight threads" class of bug that only corrupts results under load.
"""

from __future__ import annotations

import os
import threading
import warnings
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Collection

__all__ = [
    "ThreadSanitizerError",
    "MutationEvent",
    "SharedStateTracker",
    "sanitizer_mode",
    "SANITIZER_ENV",
]

SANITIZER_ENV = "RAPIDS_THREAD_SANITIZER"

#: Containers the tracker fingerprints by (capped) repr.
_CONTAINER_TYPES = (list, dict, set, bytearray)

#: Fingerprint at most this many repr characters / ndarray bytes — the
#: tracker is an under-approximating oracle, not a checksum of the world.
_CAP = 1 << 16


def sanitizer_mode() -> str | None:
    """Current mode: ``"strict"``, ``"warn"`` or ``None`` (disabled)."""
    raw = os.environ.get(SANITIZER_ENV, "").strip().lower()
    if raw in ("", "0", "off", "false"):
        return None
    if raw == "warn":
        return "warn"
    return "strict"


class ThreadSanitizerError(RuntimeError):
    """A worker callable wrote shared state without synchronization."""


@dataclass(frozen=True)
class MutationEvent:
    """One observed unsynchronized write."""

    name: str
    thread: str

    def __str__(self) -> str:
        return f"{self.name!r} mutated by worker thread {self.thread!r}"


def _is_lock_like(obj: Any) -> bool:
    return callable(getattr(obj, "acquire", None)) and callable(
        getattr(obj, "release", None)
    )


def _fingerprint(obj: Any, depth: int = 0) -> Any:
    """A cheap, stable digest of an object's observable state."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        np = None
    if np is not None and isinstance(obj, np.ndarray):
        data = obj.tobytes()[:_CAP] if obj.size else b""
        return ("ndarray", obj.shape, str(obj.dtype), zlib.crc32(data))
    if isinstance(obj, _CONTAINER_TYPES):
        try:
            body = repr(obj)[:_CAP]
        # rapidslint: disable-next=RPD105 -- defensive: arbitrary user reprs may raise anything; fall back to a typed placeholder
        except Exception:  # reprs of user objects may themselves raise
            body = f"<unreprable {type(obj).__name__}>"
        return ("container", len(obj), zlib.crc32(body.encode("utf-8", "replace")))
    if hasattr(obj, "__dict__") and depth == 0:
        return ("object", _fingerprint(dict(vars(obj)), depth=1))
    return ("opaque", id(obj))


def _shared_objects(fn: Callable) -> tuple[dict[str, Any], bool]:
    """Discover the mutable state ``fn`` can reach, plus whether a
    lock-like object travels with it (presumed synchronization)."""
    shared: dict[str, Any] = {}
    has_lock = False

    def consider(name: str, obj: Any) -> None:
        nonlocal has_lock
        if _is_lock_like(obj):
            has_lock = True
            return
        import numpy as np

        if isinstance(obj, (_CONTAINER_TYPES, np.ndarray)):
            shared[name] = obj
        elif hasattr(obj, "__dict__") and not callable(obj):
            shared[name] = obj

    seen_self = getattr(fn, "__self__", None)
    if seen_self is not None:
        consider("self", seen_self)
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is not None and closure:
        for name, cell in zip(code.co_freevars, closure):
            try:
                consider(name, cell.cell_contents)
            except ValueError:  # empty cell
                continue
    if code is not None:
        fn_globals = getattr(fn, "__globals__", {})
        for name in code.co_names:
            if name in fn_globals:
                obj = fn_globals[name]
                if isinstance(obj, _CONTAINER_TYPES):
                    consider(name, obj)
                elif _is_lock_like(obj):
                    has_lock = True
    return shared, has_lock


class SharedStateTracker:
    """Shadow-tracks one callable's shared state across worker calls."""

    def __init__(
        self,
        fn: Callable,
        *,
        allow: Collection[str] = (),
        mode: str = "strict",
    ) -> None:
        self.fn = fn
        self.mode = mode
        self.allow = set(allow)
        shared, self.has_lock = _shared_objects(fn)
        self.shared = {n: o for n, o in shared.items() if n not in self.allow}
        self._guard = threading.Lock()
        self._baseline = {n: _fingerprint(o) for n, o in self.shared.items()}
        self.events: list[MutationEvent] = []

    def wrap(self) -> Callable:
        """The instrumented callable to hand to the pool."""
        if not self.shared or self.has_lock:
            return self.fn

        def instrumented(item):
            result = self.fn(item)
            with self._guard:
                for name, obj in self.shared.items():
                    fp = _fingerprint(obj)
                    if fp != self._baseline[name]:
                        self._baseline[name] = fp
                        self.events.append(
                            MutationEvent(name, threading.current_thread().name)
                        )
            return result

        return instrumented

    def verify(self) -> None:
        """Raise (or warn) if any unsynchronized write was observed."""
        if not self.events:
            return
        detail = "; ".join(str(e) for e in self.events[:8])
        more = len(self.events) - 8
        if more > 0:
            detail += f"; … {more} more"
        message = (
            f"thread sanitizer: callable {getattr(self.fn, '__qualname__', self.fn)!r} "
            f"wrote shared state without a lock ({detail}). Synchronize with "
            "threading.Lock, return results instead of mutating, or pass "
            "allow_shared_writes=(...) if the writes are provably disjoint."
        )
        if self.mode == "warn":
            warnings.warn(message, RuntimeWarning, stacklevel=3)
        else:
            raise ThreadSanitizerError(message)
