"""Content-hash incremental cache for ``rapids lint``.

The cold full-tree lint costs seconds; a CI matrix running it per entry
and a developer re-linting after a one-line edit should pay only for
what changed.  The cache persists, per analyzed file, everything the
driver needs to skip re-parsing it:

* the raw per-file findings of **all** registered local rules (selection
  with ``--select`` is applied at combine time, so one cache serves any
  rule subset),
* the suppression table parsed from its comments,
* its :class:`~repro.analysis.callgraph.ModuleSummary` — which is what
  lets the *interprocedural* rules run incrementally: the call graph is
  relinked from summaries (cheap), not from re-parsed ASTs (expensive).

Project-wide findings are cached against a *project fingerprint* (hash
of every member file's content hash), so a no-op re-lint skips the
whole-program pass too, while any single-file edit invalidates exactly
the project section plus that file's entry.

The whole cache is keyed by an *engine fingerprint* — a hash over the
source of the :mod:`repro.analysis` package itself — so editing any
rule, the CFG builder, or this module silently discards stale entries
rather than serving results computed by old code.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "LintCache",
    "DEFAULT_CACHE_PATH",
    "engine_fingerprint",
    "content_hash",
]

DEFAULT_CACHE_PATH = ".rapidslint-cache.json"
_VERSION = 1


def engine_fingerprint() -> str:
    """Hash of the analysis package's own sources."""
    pkg = Path(__file__).resolve().parent
    h = hashlib.sha256()
    for p in sorted(pkg.glob("*.py")):
        h.update(p.name.encode())
        try:
            h.update(p.read_bytes())
        except OSError:
            continue
    return h.hexdigest()[:16]


def content_hash(source: str) -> str:
    """Stable per-file cache key for one source text."""
    return hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()[:24]


class LintCache:
    """Per-file + project-level lint result cache.

    Structure on disk (one JSON document)::

        {"version": 1, "engine": "<fp>",
         "files": {"<posix path>": {"hash": ..., "findings": [...],
                                    "suppressions": [...], "summary": {...}}},
         "project": {"fingerprint": "<fp>", "findings": [...]}}
    """

    def __init__(self, path: str | os.PathLike[str] | None = None,
                 *, enabled: bool = True) -> None:
        self.path = Path(path or DEFAULT_CACHE_PATH)
        self.enabled = enabled
        self.engine = engine_fingerprint()
        self.files: dict[str, dict[str, Any]] = {}
        self.project: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        if enabled:
            self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            return
        if data.get("engine") != self.engine:
            return  # engine changed: every cached result is suspect
        files = data.get("files")
        if isinstance(files, dict):
            self.files = files
        project = data.get("project")
        if isinstance(project, dict):
            self.project = project

    def save(self) -> None:
        if not self.enabled:
            return
        doc = {
            "version": _VERSION,
            "engine": self.engine,
            "files": self.files,
            "project": self.project,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_text(json.dumps(doc), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            pass  # a cache that can't persist is only a slowdown

    # -- per-file entries --------------------------------------------------

    def lookup(self, posix_path: str, source_hash: str) -> dict[str, Any] | None:
        entry = self.files.get(posix_path)
        if entry is not None and entry.get("hash") == source_hash:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, posix_path: str, source_hash: str,
              entry: dict[str, Any]) -> None:
        entry = dict(entry)
        entry["hash"] = source_hash
        self.files[posix_path] = entry

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files no longer part of the lint set."""
        for stale in set(self.files) - live_paths:
            del self.files[stale]

    # -- project section ---------------------------------------------------

    @staticmethod
    def project_fingerprint(file_hashes: dict[str, str]) -> str:
        h = hashlib.sha256()
        for path in sorted(file_hashes):
            h.update(path.encode())
            h.update(file_hashes[path].encode())
        return h.hexdigest()[:24]

    def lookup_project(self, fingerprint: str) -> list[Any] | None:
        if self.project.get("fingerprint") == fingerprint:
            findings = self.project.get("findings")
            if isinstance(findings, list):
                return findings
        return None

    def store_project(self, fingerprint: str, findings: list[Any]) -> None:
        self.project = {"fingerprint": fingerprint, "findings": findings}
