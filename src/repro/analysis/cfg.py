"""Per-function control-flow graphs with exception edges.

The whole-program rules (RPD113-RPD116) and the resource-lifecycle
dataflow need to reason about *paths* through a function, not just the
set of nodes in its AST: "is this ``lease`` released on every path,
including the one where ``fut.result()`` raises?" is unanswerable
without explicit exception edges.

The CFG built here is statement-granular — every simple statement gets
its own :class:`Block` — because exception edges leave the *middle* of
what a coarser builder would call one basic block, and the dataflow
layer (:mod:`repro.analysis.dataflow`) wants the state at exactly the
raise point.  Design decisions, all biased toward the leak/lock rules
that consume the graph:

* ``try``/``except``/``else``/``finally`` are modelled with a synthetic
  *except-dispatch* block (exception edges from every may-raise
  statement in the body) and a single ``finally`` region whose out-edges
  conservatively cover normal completion, the re-raise path, and — when
  the protected region contains ``return``/``break``/``continue`` —
  the corresponding jump targets.
* ``with`` bodies get a pair of synthetic *with-cleanup* blocks (normal
  and exceptional __exit__) carrying the context-expression chains, so
  a dataflow client can apply context-manager release semantics on both
  paths.  ``cfg.enclosing_withs`` additionally maps every statement to
  the ``with`` items active around it (used for ``return``, which jumps
  straight to the exit block).
* A statement *may raise* iff it contains a call, ``raise``, ``assert``
  or ``await`` — attribute access and arithmetic are deliberately not
  counted, trading soundness for a signal-to-noise ratio the lint gate
  can live with.
* Two exit blocks: ``cfg.exit`` (return / fall-off) and ``cfg.exc_exit``
  (an exception escaping the function).  A resource live at
  ``exc_exit`` is exactly "leaked on an exception path".
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "EDGE_NORMAL",
    "EDGE_EXC",
    "EDGE_LOOP",
    "Block",
    "CFG",
    "build_cfg",
    "may_raise",
    "attr_chain",
]

EDGE_NORMAL = "normal"
EDGE_EXC = "exception"
EDGE_LOOP = "loop"

_FUNC_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_RAISERS = (ast.Call, ast.Raise, ast.Assert, ast.Await)


def attr_chain(node: ast.AST) -> str:
    """Render an ``a.b.c`` attribute chain; '' for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _walk_no_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function scopes."""
    stack = [node]
    while stack:
        n = stack.pop()
        yield n
        if not isinstance(n, _FUNC_SCOPES):
            stack.extend(ast.iter_child_nodes(n))


def may_raise(node: ast.AST) -> bool:
    """Heuristic: does evaluating ``node`` potentially raise?

    Calls, explicit ``raise``, ``assert`` and ``await`` count; attribute
    access, subscripts and arithmetic deliberately do not (they raise in
    principle but flagging every one drowns the rules in noise).
    """
    return any(isinstance(n, _RAISERS) for n in _walk_no_defs(node))


class Block:
    """One CFG node: at most one statement, or a synthetic label."""

    def __init__(self, idx: int, label: str = "") -> None:
        self.idx = idx
        self.label = label
        self.stmts: list[ast.stmt] = []
        self.succs: list[tuple["Block", str]] = []
        self.preds: list[tuple["Block", str]] = []
        #: On ``with-cleanup`` blocks: the (context-expr chain, as-name)
        #: pairs of the ``with`` statement this block exits.
        self.with_items: list[tuple[str, str | None]] = []

    def edge(self, other: "Block | None", kind: str = EDGE_NORMAL) -> None:
        if other is None:
            return
        for b, k in self.succs:
            if b is other and k == kind:
                return
        self.succs.append((other, kind))
        other.preds.append((self, kind))

    def __repr__(self) -> str:  # debugging aid
        what = self.label or (
            type(self.stmts[0]).__name__ if self.stmts else "?"
        )
        return f"<Block {self.idx} {what}>"


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, fn: ast.AST) -> None:
        self.fn = fn
        self.blocks: list[Block] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")
        self.exc_exit = self.new_block("exc-exit")
        #: ``id(stmt)`` -> the with items active around that statement
        #: (innermost last), for clients that must apply __exit__
        #: semantics at a ``return``.
        self.enclosing_withs: dict[int, tuple[tuple[str, str | None], ...]] = {}
        #: ``id(stmt)`` -> owning block, for tests and clients.
        self.block_of: dict[int, Block] = {}

    def new_block(self, label: str = "") -> Block:
        b = Block(len(self.blocks), label)
        self.blocks.append(b)
        return b

    def reachable(self) -> set[Block]:
        seen: set[int] = set()
        order: list[Block] = []
        stack = [self.entry]
        while stack:
            b = stack.pop()
            if b.idx in seen:
                continue
            seen.add(b.idx)
            order.append(b)
            stack.extend(s for s, _ in b.succs)
        return set(order)

    def unreachable_stmts(self) -> list[ast.stmt]:
        """Statements in blocks no path from the entry reaches."""
        live = {b.idx for b in self.reachable()}
        return [
            s for b in self.blocks if b.idx not in live for s in b.stmts
        ]

    def statements(self) -> list[ast.stmt]:
        return [s for b in self.blocks for s in b.stmts]


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function definition."""
    cfg = CFG(fn)
    builder = _Builder(cfg)
    end = builder.seq(fn.body, cfg.entry)
    if end is not None:
        end.edge(cfg.exit)
    return cfg


def _jump_kinds(stmts: list[ast.stmt]) -> set[str]:
    """Which of return/break/continue occur in ``stmts`` (not crossing
    nested function scopes, and not counting jumps that stay inside a
    nested loop for break/continue)."""
    kinds: set[str] = set()

    def scan(body, loop_depth):
        for s in body:
            if isinstance(s, ast.Return):
                kinds.add("return")
            elif isinstance(s, ast.Break) and loop_depth == 0:
                kinds.add("break")
            elif isinstance(s, ast.Continue) and loop_depth == 0:
                kinds.add("continue")
            elif isinstance(s, _FUNC_SCOPES):
                continue
            inner = loop_depth + (1 if isinstance(s, (ast.For, ast.While,
                                                      ast.AsyncFor)) else 0)
            for field in ("body", "orelse", "finalbody"):
                scan(getattr(s, field, []) or [], inner)
            for h in getattr(s, "handlers", []) or []:
                scan(h.body, inner)

    scan(stmts, 0)
    return kinds


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.raise_stack: list[Block] = [cfg.exc_exit]
        self.finally_stack: list[Block] = []
        self.loop_stack: list[tuple[Block, Block]] = []  # (head, after)
        self.with_stack: list[tuple[str, str | None]] = []

    # -- helpers -----------------------------------------------------------

    def raise_target(self) -> Block:
        return self.raise_stack[-1]

    def _stmt_block(self, stmt: ast.stmt, pred: Block | None) -> Block:
        blk = self.cfg.new_block()
        blk.stmts = [stmt]
        self.cfg.block_of[id(stmt)] = blk
        self.cfg.enclosing_withs[id(stmt)] = tuple(self.with_stack)
        if pred is not None:
            pred.edge(blk)
        return blk

    # -- statement sequences -----------------------------------------------

    def seq(self, stmts: list[ast.stmt], pred: Block | None) -> Block | None:
        cur = pred
        for stmt in stmts:
            cur = self.build(stmt, cur)
        return cur

    def build(self, stmt: ast.stmt, pred: Block | None) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, pred)
        if isinstance(stmt, (ast.While,)):
            return self._build_loop(stmt, pred, test=stmt.test)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, pred, test=stmt.iter)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, pred)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, pred)
        return self._build_simple(stmt, pred)

    def _build_simple(self, stmt: ast.stmt, pred: Block | None) -> Block | None:
        blk = self._stmt_block(stmt, pred)
        if may_raise(stmt):
            blk.edge(self.raise_target(), EDGE_EXC)
        if isinstance(stmt, ast.Return):
            # A return inside try/finally executes the finally suite
            # first; the Try builder adds the finally -> exit edge.
            if self.finally_stack:
                blk.edge(self.finally_stack[-1])
            else:
                blk.edge(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            blk.edge(self.raise_target(), EDGE_EXC)
            return None
        if isinstance(stmt, ast.Break):
            if self.finally_stack:
                blk.edge(self.finally_stack[-1])
            elif self.loop_stack:
                blk.edge(self.loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if self.finally_stack:
                blk.edge(self.finally_stack[-1])
            elif self.loop_stack:
                blk.edge(self.loop_stack[-1][0], EDGE_LOOP)
            return None
        return blk

    def _build_if(self, stmt: ast.If, pred: Block | None) -> Block | None:
        head = self._stmt_block(stmt, pred)
        if may_raise(stmt.test):
            head.edge(self.raise_target(), EDGE_EXC)
        join = self.cfg.new_block("join")
        body_end = self.seq(stmt.body, head)
        if body_end is not None:
            body_end.edge(join)
        if stmt.orelse:
            else_end = self.seq(stmt.orelse, head)
            if else_end is not None:
                else_end.edge(join)
        else:
            head.edge(join)
        return join if join.preds else None

    def _build_loop(self, stmt, pred: Block | None, *, test) -> Block | None:
        head = self._stmt_block(stmt, pred)
        if may_raise(test):
            head.edge(self.raise_target(), EDGE_EXC)
        after = self.cfg.new_block("loop-after")
        self.loop_stack.append((head, after))
        body_end = self.seq(stmt.body, head)
        if body_end is not None:
            body_end.edge(head, EDGE_LOOP)
        self.loop_stack.pop()
        if stmt.orelse:
            else_end = self.seq(stmt.orelse, head)
            if else_end is not None:
                else_end.edge(after)
        else:
            head.edge(after)
        return after if after.preds else None

    def _build_with(self, stmt, pred: Block | None) -> Block | None:
        head = self._stmt_block(stmt, pred)
        items: list[tuple[str, str | None]] = []
        for item in stmt.items:
            ctx = item.context_expr
            chain = attr_chain(ctx)
            if not chain and isinstance(ctx, ast.Call):
                chain = attr_chain(ctx.func)
            asname = (
                item.optional_vars.id
                if isinstance(item.optional_vars, ast.Name)
                else None
            )
            items.append((chain, asname))
            if may_raise(ctx):
                # __enter__ failing does NOT run __exit__.
                head.edge(self.raise_target(), EDGE_EXC)
        cleanup_exc = self.cfg.new_block("with-cleanup")
        cleanup_exc.with_items = items
        cleanup_exc.edge(self.raise_target(), EDGE_EXC)
        self.raise_stack.append(cleanup_exc)
        self.with_stack.extend(items)
        body_end = self.seq(stmt.body, head)
        del self.with_stack[len(self.with_stack) - len(items):]
        self.raise_stack.pop()
        if body_end is None:
            return None
        cleanup_norm = self.cfg.new_block("with-cleanup")
        cleanup_norm.with_items = items
        body_end.edge(cleanup_norm)
        return cleanup_norm

    def _build_try(self, stmt: ast.Try, pred: Block | None) -> Block | None:
        head = self._stmt_block(stmt, pred)
        outer = self.raise_target()
        finally_entry = (
            self.cfg.new_block("finally") if stmt.finalbody else None
        )
        dispatch = (
            self.cfg.new_block("except-dispatch") if stmt.handlers else None
        )
        body_target = dispatch or finally_entry or outer
        handler_target = finally_entry or outer

        self.raise_stack.append(body_target)
        if finally_entry is not None:
            self.finally_stack.append(finally_entry)
        body_end = self.seq(stmt.body, head)
        self.raise_stack.pop()

        # try-else runs after normal body completion; its exceptions are
        # NOT caught by this statement's handlers.
        if stmt.orelse and body_end is not None:
            self.raise_stack.append(handler_target)
            body_end = self.seq(stmt.orelse, body_end)
            self.raise_stack.pop()

        handler_ends: list[Block] = []
        if dispatch is not None:
            broad = any(
                h.type is None
                or any(
                    isinstance(t, ast.Name)
                    and t.id in ("Exception", "BaseException")
                    for t in (
                        h.type.elts if isinstance(h.type, ast.Tuple)
                        else [h.type]
                    )
                    if t is not None
                )
                for h in stmt.handlers
            )
            for h in stmt.handlers:
                h_entry = self.cfg.new_block("handler")
                dispatch.edge(h_entry, EDGE_EXC)
                self.raise_stack.append(handler_target)
                h_end = self.seq(h.body, h_entry)
                self.raise_stack.pop()
                if h_end is not None:
                    handler_ends.append(h_end)
            if not broad:
                dispatch.edge(handler_target, EDGE_EXC)

        if finally_entry is not None:
            self.finally_stack.pop()
            for end in [body_end, *handler_ends]:
                if end is not None:
                    end.edge(finally_entry)
            self.raise_stack.append(outer)
            f_end = self.seq(stmt.finalbody, finally_entry)
            self.raise_stack.pop()
            if f_end is None:
                return None
            # The finally suite continues wherever the protected region
            # was headed: fall-through, the re-raise path, and any
            # return/break/continue jump targets that occurred inside.
            f_end.edge(outer, EDGE_EXC)
            jumps = _jump_kinds(
                stmt.body + stmt.orelse
                + [s for h in stmt.handlers for s in h.body]
            )
            if "return" in jumps:
                f_end.edge(
                    self.finally_stack[-1] if self.finally_stack
                    else self.cfg.exit
                )
            if self.loop_stack:
                if "break" in jumps:
                    f_end.edge(self.loop_stack[-1][1])
                if "continue" in jumps:
                    f_end.edge(self.loop_stack[-1][0], EDGE_LOOP)
            normal = body_end is not None or handler_ends
            return f_end if normal or not jumps else f_end
        join = self.cfg.new_block("try-after")
        for end in [body_end, *handler_ends]:
            if end is not None:
                end.edge(join)
        return join if join.preds else None
