"""Whole-program rapidslint rules (RPD113–RPD116).

These are the rules the single-file pass structurally cannot express:

* :class:`LockOrderRule` (RPD113) — inconsistent lock acquisition order
  across call paths.  Two threads taking the same pair of locks in
  opposite orders is the classic deadlock; the rule builds a
  held-before graph from every ``with <lock>:`` nesting (including
  locks acquired transitively by callees while a lock is held) and
  reports every 2-cycle.
* :class:`ResourceLifecycleRule` (RPD114) — path-sensitive
  leak detection over the CFG: every ``SharedArena.lease``, worker-side
  shm attach, spool/tile-source construction, and ``__init__``-owned
  file handle must be released/closed on every path out of the
  function, *including the exception edges*.
* :class:`ChaosCoverageRule` (RPD115) — raw file/metadata I/O in the
  storage seams must be reachable only through functions that consult
  the :class:`~repro.chaos.injector.FaultInjector`, and every consulted
  site string must be declared in ``chaos/plan.py``.  New I/O seams
  that silently escape fault injection are exactly the ones the chaos
  suite can never exercise.
* :class:`SolverReachabilityRule` (RPD116) — nondeterminism sources
  (wall clocks, unseeded RNG) *transitively* reachable from the FT
  solver and placement paths.  RPD104 flags direct calls inside solver
  modules; this closes the loophole of hiding ``time.time()`` one
  helper-module hop away.

All four run on the :class:`~repro.analysis.callgraph.ModuleSummary` /
:class:`~repro.analysis.callgraph.CallGraph` layer (RPD114 additionally
on per-function CFGs, which it reaches through the normal local-rule
interface), so the incremental driver can re-run them from cached
summaries without re-parsing unchanged files.
"""

from __future__ import annotations

import ast
from typing import Iterator, NamedTuple

from .cfg import EDGE_EXC, attr_chain, build_cfg
from .dataflow import ForwardAnalysis, run_forward
from .framework import (
    Finding,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    Severity,
    register,
)

__all__ = [
    "LockOrderRule",
    "ResourceLifecycleRule",
    "ChaosCoverageRule",
    "SolverReachabilityRule",
]

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _short_lock(lock_id: str) -> str:
    path, _, name = lock_id.partition(":")
    return f"{name} ({path.rsplit('/', 1)[-1]})"


def _short_qual(qualname: str) -> str:
    path, _, name = qualname.partition(":")
    return f"{path.rsplit('/', 1)[-1]}:{name}"


@register
class LockOrderRule(ProjectRule):
    """Opposite lock acquisition orders on different call paths.

    An edge A -> B means "B was acquired while A was held", either
    directly (nested ``with`` blocks) or through a call made under A to
    a function that (transitively) takes B.  An A->B plus B->A pair is a
    latent deadlock the moment those paths run on two threads; A->A is
    self-deadlock on a non-reentrant lock.
    """

    rule_id = "RPD113"
    name = "lock-order"
    severity = Severity.ERROR
    description = "inconsistent lock acquisition order across call paths"
    rationale = "opposite nesting orders on two threads deadlock"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        transitive = graph.transitive_locks()
        # edge (held, acquired) -> (path, line, how)
        edges: dict[tuple[str, str], tuple[str, int, str]] = {}

        def record(held: str, acq: str, path: str, line: int, how: str) -> None:
            key = (held, acq)
            if key not in edges:
                edges[key] = (path, line, how)

        for summary in project.summaries.values():
            for fs in summary.functions.values():
                for a in fs.locks:
                    for h in a.held:
                        record(h, a.lock, summary.path, a.lineno, "nested with")
                for callee, site in graph.callees(fs.qualname):
                    if not site.held_locks:
                        continue
                    for t in transitive.get(callee, ()):
                        for h in site.held_locks:
                            record(
                                h, t, summary.path, site.lineno,
                                f"call to {_short_qual(callee)}",
                            )

        reported: set[frozenset[str]] = set()
        for (a, b), (path, line, how) in sorted(edges.items()):
            if a == b:
                yield self.finding_at(
                    path, line,
                    f"lock {_short_lock(a)} re-acquired while already held "
                    f"({how}) — self-deadlock on a non-reentrant lock",
                )
                continue
            if (b, a) not in edges:
                continue
            pair = frozenset((a, b))
            if pair in reported:
                continue
            reported.add(pair)
            o_path, o_line, o_how = edges[(b, a)]
            yield self.finding_at(
                path, line,
                f"lock order inversion: {_short_lock(b)} acquired while "
                f"holding {_short_lock(a)} here ({how}), but "
                f"{o_path}:{o_line} acquires them in the opposite order "
                f"({o_how}) — two threads on these paths can deadlock",
            )


class _Token(NamedTuple):
    """One tracked live resource inside a function."""

    name: str   # binding: "shm" or "self._fh"
    kind: str   # "lease" | "shm" | "handle" | "file"
    line: int
    owner: str  # receiver of .lease(), "" otherwise
    via_self: bool


_KILL_LEAVES = {"close", "release", "unlink", "shutdown", "terminate"}
_SHM_CTORS = {"_attach", "SharedMemory"}
_HANDLE_CTORS = {"TileSource", "_FragmentSpool"}


def _mentions(node: ast.AST, name: str) -> bool:
    """Does ``node`` mention binding ``name`` ("x" or "self.attr")?"""
    if "." in name:
        for n in ast.walk(node):
            if isinstance(n, ast.Attribute) and attr_chain(n) == name:
                return True
        return False
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and n.id == name:
            return True
    return False


class _LeakAnalysis(ForwardAnalysis):
    """Live-resource dataflow: state = frozenset of :class:`_Token`."""

    def __init__(self, fn: ast.AST, in_init: bool, bound: set[str]) -> None:
        self.fn = fn
        self.in_init = in_init
        self.bound = bound  # names assigned/bound somewhere in this fn

    # -- acquisition matching ---------------------------------------------

    def _acquire(self, value: ast.expr) -> tuple[str, str] | None:
        """(kind, owner) when ``value`` acquires a tracked resource."""
        if not isinstance(value, ast.Call):
            return None
        chain = attr_chain(value.func)
        if not chain:
            return None
        leaf = chain.rsplit(".", 1)[-1]
        if leaf == "lease" and "." in chain:
            owner = chain.split(".", 1)[0]
            if owner == "self" and "." in chain[5:]:
                owner = "self." + chain.split(".")[1]
            return ("lease", owner)
        if leaf in _SHM_CTORS:
            return ("shm", "")
        if leaf in _HANDLE_CTORS:
            return ("handle", "")
        return None

    # -- transfer ----------------------------------------------------------

    def _apply_kills(self, state: frozenset, stmt: ast.stmt) -> frozenset:
        """Releases/escapes that happened *before* any raise matters —
        safe to honour on both the normal and exception edge."""
        if not state:
            return state
        dead: set[_Token] = set()
        for node in ast.walk(stmt):
            if isinstance(node, _FUNC_DEFS + (ast.Lambda,)):
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            leaf = chain.rsplit(".", 1)[-1] if chain else ""
            if leaf not in _KILL_LEAVES:
                continue
            recv = chain[: -(len(leaf) + 1)] if "." in chain else ""
            for tok in state:
                if recv and (recv == tok.name or recv == tok.owner):
                    dead.add(tok)
                    continue
                # self.close() from __init__ cleans up instance-owned
                # handles (the cleanup method closes what it stores).
                if recv == "self" and tok.via_self:
                    dead.add(tok)
                    continue
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if _mentions(arg, tok.name):
                        dead.add(tok)
                        break
        return state - frozenset(dead)

    def transfer_exc(self, state: frozenset, stmt: ast.stmt) -> frozenset:
        return self._apply_kills(state, stmt)

    def transfer_stmt(self, state: frozenset, stmt: ast.stmt) -> frozenset:
        state = self._apply_kills(state, stmt)
        gen: _Token | None = None

        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            acq = self._acquire(stmt.value)
            if acq is not None:
                kind, owner = acq
                if isinstance(target, ast.Name):
                    # A lease from a closure-captured arena is cleaned up
                    # by the *enclosing* function's with-block; only track
                    # owners bound in this scope.
                    if not (kind == "lease" and owner and
                            owner not in self.bound and
                            not owner.startswith("self.")):
                        gen = _Token(
                            target.id, kind, stmt.lineno, owner, False
                        )
                elif (
                    self.in_init
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    gen = _Token(
                        f"self.{target.attr}", kind, stmt.lineno, "", True
                    )
            elif (
                self.in_init
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(stmt.value, ast.Call)
                and attr_chain(stmt.value.func) == "open"
            ):
                gen = _Token(
                    f"self.{target.attr}", "file", stmt.lineno, "", True
                )

        # Rebinding and escapes (ownership moves out of this frame).
        dead: set[_Token] = set()
        for tok in state:
            if tok.via_self:
                continue  # the instance attribute *is* the storage
            if isinstance(stmt, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == tok.name
                    for t in stmt.targets
                ):
                    dead.add(tok)
                    continue
                stored = any(
                    not (isinstance(t, ast.Name) and t.id == tok.name)
                    for t in stmt.targets
                )
                if stored and _mentions(stmt.value, tok.name):
                    dead.add(tok)
                    continue
            if isinstance(stmt, (ast.Return,)) and stmt.value is not None:
                if _mentions(stmt.value, tok.name):
                    dead.add(tok)
                    continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom, ast.Await)
            ):
                if _mentions(stmt.value, tok.name):
                    dead.add(tok)
                    continue
            # Bare handle passed to another call: assume the callee
            # takes ownership (factory/registry patterns).  Attribute
            # projections like shm.buf / shm.name stay tracked.
            for node in ast.walk(stmt):
                if isinstance(node, _FUNC_DEFS + (ast.Lambda,)):
                    continue
                if isinstance(node, ast.Call):
                    for arg in list(node.args) + [
                        k.value for k in node.keywords
                    ]:
                        if isinstance(arg, ast.Name) and arg.id == tok.name:
                            dead.add(tok)
                            break
                        if isinstance(arg, ast.Starred) and _mentions(
                            arg, tok.name
                        ):
                            dead.add(tok)
                            break
                    if tok in dead:
                        break
        state = state - frozenset(dead)
        if gen is not None:
            state = frozenset(
                t for t in state if t.name != gen.name
            ) | {gen}
        return state

    def transfer_synthetic(self, state: frozenset, block) -> frozenset:
        if not block.with_items or not state:
            return state
        dead = set()
        for chain, asname in block.with_items:
            root = chain.split(".", 1)[0] if chain else ""
            for tok in state:
                if asname and asname in (tok.name, tok.owner):
                    dead.add(tok)
                elif chain and chain in (tok.name, tok.owner):
                    dead.add(tok)
                elif root and root == tok.owner:
                    dead.add(tok)
        return state - frozenset(dead)


_KIND_FIX = {
    "lease": "release it (or let its arena's with-block clean up)",
    "shm": "call .close() on it",
    "handle": "call .close() on it",
    "file": "close it",
}


@register
class ResourceLifecycleRule(Rule):
    """Path-sensitive leak check for arena leases, shm handles, spools.

    Runs the live-resource dataflow over each function's CFG; a token
    still live at the normal exit (or, worse, only on the exception
    edges) is a leak the with-block discipline missed.  ``__init__``
    methods get the inverted check: a handle stored on ``self`` is fine
    on the normal path, but if ``__init__`` raises *after* acquiring it
    the instance is discarded and nothing can ever close it.
    """

    rule_id = "RPD114"
    name = "resource-lifecycle"
    severity = Severity.ERROR
    description = "resource not released/closed on every path"
    rationale = "leaked shm segments and handles survive the process"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, _FUNC_DEFS):
                continue
            yield from self._check_fn(module, fn)

    def _check_fn(self, module: ModuleContext, fn) -> Iterator[Finding]:
        bound = self._bound_names(fn)
        analysis = _LeakAnalysis(fn, fn.name == "__init__", bound)
        if not self._has_acquires(fn, analysis):
            return
        cfg = build_cfg(fn)
        states = run_forward(cfg, analysis)
        at_exit = states.get(cfg.exit.idx, frozenset())
        at_exc = states.get(cfg.exc_exit.idx, frozenset())
        seen: set[tuple[str, int]] = set()
        for tok in sorted(at_exit | at_exc, key=lambda t: (t.line, t.name)):
            key = (tok.name, tok.line)
            if key in seen:
                continue
            seen.add(key)
            on_exit = tok in at_exit and not tok.via_self
            on_exc = tok in at_exc
            if tok.via_self:
                if not on_exc:
                    continue
                yield Finding(
                    self.rule_id, self.severity, module.path, tok.line, 0,
                    f"{tok.name} acquired in __init__ leaks if a later "
                    "statement raises — the half-built instance is "
                    "discarded; close it in an except block and re-raise",
                )
                continue
            if not on_exit and not on_exc:
                continue
            where = (
                "on any path" if on_exit and on_exc
                else "on an exception path"
                if on_exc else "on a normal path"
            )
            yield Finding(
                self.rule_id, self.severity, module.path, tok.line, 0,
                f"{tok.kind} {tok.name!r} (line {tok.line}) is not "
                f"released {where} out of {fn.name}() — "
                f"{_KIND_FIX[tok.kind]} on every path, including "
                "exception edges (try/finally or a with-block)",
            )

    @staticmethod
    def _bound_names(fn) -> set[str]:
        bound: set[str] = set()
        args = fn.args
        for a in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            bound.add(a.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                bound.add(node.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        bound.add(item.optional_vars.id)
        return bound

    @staticmethod
    def _has_acquires(fn, analysis: _LeakAnalysis) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and analysis._acquire(node.value):
                return True
            if (
                analysis.in_init
                and isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and attr_chain(node.value.func) == "open"
            ):
                return True
        return False


_IO_SCOPE = (
    "/storage/", "/metadata/", "/formats/",
    "parallel/streaming", "parallel/procpipe",
)


@register
class ChaosCoverageRule(ProjectRule):
    """Raw I/O seams must sit behind declared fault-injection sites.

    A function in the storage seams that does raw file/metadata I/O and
    is reachable from the project's entry points without any
    ``FaultInjector`` consult on the way (including its own body and its
    direct callees) is I/O the chaos suite can never fail — the exact
    blind spot the degraded-restore guarantees rely on not having.
    Separately, a consult for a site string missing from
    ``chaos/plan.py``'s ``SITES`` can never be scheduled by a plan.
    """

    rule_id = "RPD115"
    name = "chaos-site-coverage"
    severity = Severity.WARNING
    description = "raw I/O reachable without a declared FaultInjector site"
    rationale = "I/O outside injection seams escapes the chaos suite"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        plan = next(
            (
                s for s in project.summaries.values()
                if s.path.endswith("chaos/plan.py")
            ),
            None,
        )
        if plan is None:
            return
        declared = set(plan.string_sets.get("SITES", []))
        if not declared:
            return
        graph = project.graph

        in_scope = {
            fs.qualname
            for s in project.summaries.values()
            if "repro/" in s.path and "/analysis/" not in s.path
            for fs in s.functions.values()
        }

        def consults(q: str) -> bool:
            fs = graph.functions.get(q)
            if fs is None:
                return False
            if fs.injector_sites:
                return True
            return any(
                graph.functions[c].injector_sites
                for c, _ in graph.callees(q)
                if c in graph.functions
            )

        # Undeclared site strings can never be driven by a chaos plan.
        for s in project.summaries.values():
            for fs in s.functions.values():
                for site, line in fs.injector_sites:
                    if site not in declared:
                        yield self.finding_at(
                            s.path, line,
                            f"fault-injector consult for site {site!r} "
                            "which is not declared in chaos/plan.py SITES — "
                            "no chaos plan can ever schedule it",
                        )

        # Forward "reached unguarded" fixpoint from the in-scope roots.
        callers = graph.callers()
        roots = [
            q for q in in_scope
            if not any(c in in_scope for c, _ in callers.get(q, []))
        ]
        unguarded: set[str] = set()
        work = [q for q in roots if not consults(q)]
        while work:
            q = work.pop()
            if q in unguarded:
                continue
            unguarded.add(q)
            for callee, _ in graph.callees(q):
                if callee in in_scope and callee not in unguarded \
                        and not consults(callee):
                    work.append(callee)

        for s in sorted(project.summaries.values(), key=lambda m: m.path):
            if not any(f in s.path for f in _IO_SCOPE):
                continue
            for key in sorted(s.functions):
                fs = s.functions[key]
                if not fs.raw_io or fs.qualname not in unguarded:
                    continue
                io_chain, line = fs.raw_io[0]
                yield self.finding_at(
                    s.path, line,
                    f"raw I/O ({io_chain}) in {key} is reachable without "
                    "any FaultInjector consult on the call path — route it "
                    "through a site declared in chaos/plan.py so the chaos "
                    "suite can exercise this seam",
                )


_SOLVER_SCOPE = (
    "/optimize/", "core/ft_optimizer", "core/gathering", "storage/placement",
)


@register
class SolverReachabilityRule(ProjectRule):
    """Nondeterminism transitively reachable from solver/placement code.

    RPD104 flags wall-clock/unseeded-RNG calls written *inside* the
    solver modules; this rule walks the call graph so a helper living
    anywhere else can't smuggle them back in.  Reported at the solver
    function's own call site, with the full chain, so the fix (inject a
    clock/Generator) lands where the policy applies.
    """

    rule_id = "RPD116"
    name = "solver-nondeterminism-reach"
    severity = Severity.ERROR
    description = "nondeterminism reachable from solver/placement paths"
    rationale = "irreproducible solves invalidate published plans"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph

        def in_solver(path: str) -> bool:
            return any(f in path for f in _SOLVER_SCOPE)

        nondet_fns = {
            fs.qualname: fs.nondet[0]
            for s in project.summaries.values()
            if not in_solver(s.path)  # direct in-scope calls are RPD104's
            for fs in s.functions.values()
            if fs.nondet
        }
        if not nondet_fns:
            return

        for s in sorted(project.summaries.values(), key=lambda m: m.path):
            if not in_solver(s.path):
                continue
            for key in sorted(s.functions):
                root = s.functions[key]
                reach = graph.reachable_from([root.qualname])
                for target in sorted(reach & set(nondet_fns)):
                    if target == root.qualname:
                        continue
                    chain = graph.call_chain(root.qualname, target)
                    if chain is None or len(chain) < 2:
                        continue
                    # Blame the call site of the first hop.
                    site = next(
                        (
                            cs for c, cs in graph.callees(root.qualname)
                            if c == chain[1]
                        ),
                        None,
                    )
                    src, line = nondet_fns[target]
                    rendered = " -> ".join(_short_qual(q) for q in chain)
                    yield self.finding_at(
                        s.path,
                        site.lineno if site else root.lineno,
                        f"solver path reaches nondeterministic {src}() via "
                        f"{rendered} — pass a seeded Generator/clock in "
                        "instead of calling it downstream",
                    )
