"""Project-wide symbol table and call graph for rapidslint.

The whole-program rules (RPD113, RPD115, RPD116) need to answer
reachability questions — "is this raw ``open`` reachable from a function
that never consulted the fault injector?", "which locks can be held by
the time we get here?" — across module boundaries.  Re-parsing the whole
tree for every lint run would blow the incremental budget, so this
module is split in two layers:

* :func:`summarize_module` extracts a **JSON-serializable**
  :class:`ModuleSummary` from one parsed file: its import aliases,
  top-level symbols, classes (with bases and methods), and per-function
  facts — call sites (with the locks held at each), lock acquisitions,
  nondeterminism sources, raw-I/O sites, fault-injector consults, and
  frozen string sets (how ``chaos/plan.py`` declares its sites).
  Summaries are what the lint cache persists: an unchanged file
  contributes its cached summary without being re-read.
* :class:`CallGraph` links a set of summaries into an edge set with a
  deliberately modest resolution strategy (direct names, from-imports,
  ``self.method`` with single-inheritance walk, ``module.attr`` chains,
  constructor calls, and locally-instantiated variables).  Unresolvable
  dynamic calls become no edges — the rules that consume the graph are
  written so a missing edge produces a false *negative*, never a false
  positive.

Nested functions are inlined into their enclosing function's summary:
for every rule built on this graph, "the closure does it" and "the
function does it" are the same fact, and inlining sidesteps the
impossible problem of resolving closure call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable

from .cfg import attr_chain

__all__ = [
    "CallSite",
    "LockAcquire",
    "FunctionSummary",
    "ModuleSummary",
    "CallGraph",
    "summarize_module",
    "module_name_for",
]

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

# -- fact extraction ---------------------------------------------------------

_NONDET_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.perf_counter",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "uuid.uuid4",
    "os.urandom",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.choice",
    "np.random.rand",
    "np.random.randn",
    "np.random.randint",
    "np.random.random",
    "np.random.shuffle",
    "np.random.permutation",
    "np.random.choice",
}

_RAW_IO_CALLS = {
    "open",
    "os.replace",
    "os.remove",
    "os.rename",
    "os.unlink",
    "os.fsync",
}
_RAW_IO_METHODS = {
    "read_bytes",
    "write_bytes",
    "read_text",
    "write_text",
}

_LOCK_HINTS = ("lock", "mutex", "semaphore", "_sem")


def _is_lockish(chain: str) -> bool:
    leaf = chain.rsplit(".", 1)[-1].lower()
    return any(h in leaf for h in _LOCK_HINTS)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    callee: str  # textual a.b.c chain as written
    lineno: int
    held_locks: tuple[str, ...] = ()  # resolved lock ids held at the call
    arg0: str | None = None  # first positional arg if a string literal


@dataclass(frozen=True)
class LockAcquire:
    """A ``with <lock>:`` acquisition inside a function body."""

    lock: str  # resolved lock id, e.g. "repro/storage/system.py:StorageSystem._lock"
    lineno: int
    held: tuple[str, ...] = ()  # locks already held at this acquisition


@dataclass
class FunctionSummary:
    """Whole-program facts about one function (closures inlined)."""

    qualname: str  # "path/to/mod.py:Cls.fn" or "path/to/mod.py:fn"
    lineno: int
    calls: list[CallSite] = field(default_factory=list)
    locks: list[LockAcquire] = field(default_factory=list)
    nondet: list[tuple[str, int]] = field(default_factory=list)
    raw_io: list[tuple[str, int]] = field(default_factory=list)
    injector_sites: list[tuple[str, int]] = field(default_factory=list)
    instantiates: dict[str, str] = field(default_factory=dict)  # var -> class chain

    def to_json(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "calls": [
                [c.callee, c.lineno, list(c.held_locks), c.arg0]
                for c in self.calls
            ],
            "locks": [
                [a.lock, a.lineno, list(a.held)] for a in self.locks
            ],
            "nondet": [list(t) for t in self.nondet],
            "raw_io": [list(t) for t in self.raw_io],
            "injector_sites": [list(t) for t in self.injector_sites],
            "instantiates": dict(self.instantiates),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FunctionSummary":
        out = cls(qualname=data["qualname"], lineno=data["lineno"])
        out.calls = [
            CallSite(c[0], c[1], tuple(c[2]), c[3]) for c in data["calls"]
        ]
        out.locks = [
            LockAcquire(a[0], a[1], tuple(a[2])) for a in data["locks"]
        ]
        out.nondet = [(n, ln) for n, ln in data["nondet"]]
        out.raw_io = [(n, ln) for n, ln in data["raw_io"]]
        out.injector_sites = [(s, ln) for s, ln in data["injector_sites"]]
        out.instantiates = dict(data["instantiates"])
        return out


@dataclass
class ModuleSummary:
    """JSON-serializable whole-program facts about one module."""

    path: str  # posix, repo-relative as given to the analyzer
    module: str  # dotted guess, e.g. "repro.storage.system"
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted target
    symbols: list[str] = field(default_factory=list)  # top-level defs/classes
    classes: dict[str, dict[str, Any]] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    string_sets: dict[str, list[str]] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "imports": dict(self.imports),
            "symbols": list(self.symbols),
            "classes": self.classes,
            "functions": {
                k: f.to_json() for k, f in self.functions.items()
            },
            "string_sets": {k: list(v) for k, v in self.string_sets.items()},
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ModuleSummary":
        out = cls(path=data["path"], module=data["module"])
        out.imports = dict(data["imports"])
        out.symbols = list(data["symbols"])
        out.classes = dict(data["classes"])
        out.functions = {
            k: FunctionSummary.from_json(v)
            for k, v in data["functions"].items()
        }
        out.string_sets = {k: list(v) for k, v in data["string_sets"].items()}
        return out


def module_name_for(posix_path: str) -> str:
    """Best-effort dotted module name for a repo-relative posix path."""
    p = posix_path
    if p.endswith(".py"):
        p = p[:-3]
    parts = [seg for seg in p.split("/") if seg]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class _FunctionVisitor:
    """Extracts one FunctionSummary; descends into nested defs inline."""

    def __init__(self, summary: FunctionSummary, owner_class: str | None,
                 path: str) -> None:
        self.summary = summary
        self.owner_class = owner_class
        self.path = path
        self.held: list[str] = []

    def _resolve_lock(self, chain: str) -> str:
        if chain.startswith("self.") and self.owner_class:
            return f"{self.path}:{self.owner_class}.{chain[5:]}"
        return f"{self.path}:{chain}"

    def visit_body(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _FUNC_DEFS):
            # Inline nested function bodies into this summary.
            self.visit_body(stmt.body)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in stmt.items:
                ctx = item.context_expr
                chain = attr_chain(ctx)
                if isinstance(ctx, ast.Call):
                    self._visit_expr(ctx)
                    continue
                if chain and _is_lockish(chain):
                    lock_id = self._resolve_lock(chain)
                    self.summary.locks.append(
                        LockAcquire(lock_id, stmt.lineno, tuple(self.held))
                    )
                    acquired.append(lock_id)
                else:
                    self._visit_expr(ctx)
            self.held.extend(acquired)
            self.visit_body(stmt.body)
            del self.held[len(self.held) - len(acquired):]
            return
        if isinstance(stmt, ast.Try):
            self.visit_body(stmt.body)
            for h in stmt.handlers:
                self.visit_body(h.body)
            self.visit_body(stmt.orelse)
            self.visit_body(stmt.finalbody)
            return
        if isinstance(stmt, (ast.If,)):
            self._visit_expr(stmt.test)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._visit_expr(stmt.test)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
            return
        if isinstance(stmt, ast.Assign):
            self._record_instantiation(stmt)
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._visit_expr(node)

    def _record_instantiation(self, stmt: ast.Assign) -> None:
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            chain = attr_chain(stmt.value.func)
            if chain and chain[0:1].isupper() or (
                chain and chain.rsplit(".", 1)[-1][:1].isupper()
            ):
                self.summary.instantiates[stmt.targets[0].id] = chain

    def _visit_expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, _FUNC_DEFS + (ast.Lambda,)):
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if not chain:
                continue
            arg0 = None
            if node.args and isinstance(node.args[0], ast.Constant) and \
                    isinstance(node.args[0].value, str):
                arg0 = node.args[0].value
            self.summary.calls.append(
                CallSite(chain, node.lineno, tuple(self.held), arg0)
            )
            if chain in _NONDET_CALLS:
                self.summary.nondet.append((chain, node.lineno))
            leaf = chain.rsplit(".", 1)[-1]
            if chain in _RAW_IO_CALLS or leaf in _RAW_IO_METHODS:
                self.summary.raw_io.append((chain, node.lineno))
            if leaf in ("check", "filter_payload", "latency") and arg0 and \
                    "." in arg0:
                # Heuristic: injector.check("storage.write", ...) — any
                # dotted string literal consulted via check/filter/latency.
                self.summary.injector_sites.append((arg0, node.lineno))


def summarize_module(path: str, tree: ast.Module) -> ModuleSummary:
    """Extract the whole-program summary of one parsed module."""
    summary = ModuleSummary(path=path, module=module_name_for(path))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                summary.imports[a.asname or a.name.split(".")[0]] = a.name
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if node.level:
                # Relative import: best-effort resolve against this module.
                base = summary.module.split(".")
                base = base[: len(base) - node.level]
                mod = ".".join(base + ([mod] if mod else []))
            for a in node.names:
                if a.name == "*":
                    continue
                summary.imports[a.asname or a.name] = (
                    f"{mod}.{a.name}" if mod else a.name
                )

    for node in tree.body:
        if isinstance(node, _FUNC_DEFS):
            summary.symbols.append(node.name)
            fs = FunctionSummary(f"{path}:{node.name}", node.lineno)
            _FunctionVisitor(fs, None, path).visit_body(node.body)
            summary.functions[node.name] = fs
        elif isinstance(node, ast.ClassDef):
            summary.symbols.append(node.name)
            bases = [attr_chain(b) for b in node.bases]
            methods = []
            for item in node.body:
                if isinstance(item, _FUNC_DEFS):
                    methods.append(item.name)
                    key = f"{node.name}.{item.name}"
                    fs = FunctionSummary(f"{path}:{key}", item.lineno)
                    _FunctionVisitor(fs, node.name, path).visit_body(item.body)
                    summary.functions[key] = fs
            summary.classes[node.name] = {
                "bases": [b for b in bases if b],
                "methods": methods,
            }
        elif isinstance(node, ast.Assign):
            # Frozen string-set declarations, e.g. chaos/plan.py SITES.
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                values = _string_set(node.value)
                if values is not None:
                    summary.string_sets[node.targets[0].id] = values
                summary.symbols.append(node.targets[0].id)
    return summary


def _string_set(value: ast.expr) -> list[str] | None:
    """Literal frozenset/set/tuple/list of strings, possibly wrapped in
    ``frozenset({...})``; None when the value is anything else."""
    if isinstance(value, ast.Call) and attr_chain(value.func) in (
        "frozenset", "set", "tuple", "list"
    ):
        if len(value.args) == 1:
            return _string_set(value.args[0])
        return []
    if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        out = []
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return out
    return None


# -- linking ----------------------------------------------------------------


class CallGraph:
    """Links a set of :class:`ModuleSummary` into a resolved edge set."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        self.by_dotted: dict[str, ModuleSummary] = {}
        for s in summaries:
            self.modules[s.path] = s
            if s.module:
                self.by_dotted[s.module] = s
        #: qualname -> FunctionSummary for every function in the project
        self.functions: dict[str, FunctionSummary] = {}
        #: method name -> [qualnames] for last-resort unique-name matching
        self._methods: dict[str, list[str]] = {}
        #: class name -> (path, class info)
        self._classes: dict[str, list[tuple[str, dict[str, Any]]]] = {}
        for s in self.modules.values():
            for key, fs in s.functions.items():
                self.functions[fs.qualname] = fs
                leaf = key.rsplit(".", 1)[-1]
                self._methods.setdefault(leaf, []).append(fs.qualname)
            for cname, info in s.classes.items():
                self._classes.setdefault(cname, []).append((s.path, info))
        #: caller qualname -> [(callee qualname, CallSite)]
        self.edges: dict[str, list[tuple[str, CallSite]]] = {}
        self._link()

    # -- resolution --------------------------------------------------------

    def _class_method(self, path: str, cls: str, meth: str) -> str | None:
        """Resolve ``cls.meth`` in ``path`` walking single-inheritance."""
        seen = set()
        queue = [(path, cls)]
        while queue:
            p, c = queue.pop(0)
            if (p, c) in seen:
                continue
            seen.add((p, c))
            mod = self.modules.get(p)
            if mod is None:
                continue
            info = mod.classes.get(c)
            if info is None:
                # The base may live elsewhere under the same name.
                for bp, binfo in self._classes.get(c, []):
                    queue.append((bp, c)) if bp != p else None
                continue
            if meth in info["methods"]:
                return f"{p}:{c}.{meth}"
            for base in info["bases"]:
                bleaf = base.rsplit(".", 1)[-1]
                target = mod.imports.get(bleaf)
                if target:
                    bmod = self.by_dotted.get(target.rsplit(".", 1)[0])
                    if bmod:
                        queue.append((bmod.path, bleaf))
                for bp, _ in self._classes.get(bleaf, []):
                    queue.append((bp, bleaf))
        return None

    def _resolve_dotted(self, dotted: str) -> str | None:
        """Resolve a fully-dotted target like ``repro.storage.system.put``
        or ``repro.parallel.procpipe.SharedArena`` to a qualname."""
        mod = self.by_dotted.get(dotted)
        if mod is not None:
            return None  # a module, not a callable
        if "." not in dotted:
            return None
        head, leaf = dotted.rsplit(".", 1)
        owner = self.by_dotted.get(head)
        if owner is None:
            # Maybe Class.method: strip one more level.
            if "." in head:
                h2, cls = head.rsplit(".", 1)
                owner2 = self.by_dotted.get(h2)
                if owner2 is not None and cls in owner2.classes:
                    return self._class_method(owner2.path, cls, leaf)
            return None
        if leaf in owner.classes:
            return self._class_method(owner.path, leaf, "__init__")
        if leaf in owner.functions:
            return owner.functions[leaf].qualname
        return None

    def resolve(self, caller_mod: ModuleSummary, caller_key: str,
                chain: str) -> str | None:
        """Resolve one textual call chain to a callee qualname, or None."""
        parts = chain.split(".")
        head = parts[0]

        # self.method() — owning class from the caller key.
        if head == "self" and len(parts) == 2 and "." in caller_key:
            cls = caller_key.split(".", 1)[0]
            return self._class_method(caller_mod.path, cls, parts[1])

        # Locally instantiated variable: x = SharedArena(); x.lease()
        caller_fs = caller_mod.functions.get(caller_key)
        if caller_fs and len(parts) == 2 and head in caller_fs.instantiates:
            cls_chain = caller_fs.instantiates[head]
            target = self._resolve_instantiated(caller_mod, cls_chain)
            if target is not None:
                path, cls = target
                return self._class_method(path, cls, parts[1])

        # Direct name in the same module.
        if len(parts) == 1:
            if head in caller_mod.classes:
                return self._class_method(caller_mod.path, head, "__init__")
            if head in caller_mod.functions:
                return caller_mod.functions[head].qualname
            target = caller_mod.imports.get(head)
            if target:
                return self._resolve_dotted(target)
            return None

        # alias.attr... — follow the import alias.
        target = caller_mod.imports.get(head)
        if target:
            return self._resolve_dotted(".".join([target, *parts[1:]]))

        # Unique-method-name fallback for two-part chains: obj.close()
        # resolves iff exactly one project class defines close().  This
        # keeps resource rules useful without full type inference; a
        # name defined twice simply produces no edge.
        if len(parts) == 2:
            candidates = self._methods.get(parts[1], [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _resolve_instantiated(
        self, caller_mod: ModuleSummary, cls_chain: str
    ) -> tuple[str, str] | None:
        parts = cls_chain.split(".")
        if len(parts) == 1:
            if parts[0] in caller_mod.classes:
                return caller_mod.path, parts[0]
            target = caller_mod.imports.get(parts[0])
            if target and "." in target:
                h, leaf = target.rsplit(".", 1)
                owner = self.by_dotted.get(h)
                if owner is not None and leaf in owner.classes:
                    return owner.path, leaf
            return None
        target = caller_mod.imports.get(parts[0])
        if target:
            dotted = ".".join([target, *parts[1:]])
            h, leaf = dotted.rsplit(".", 1)
            owner = self.by_dotted.get(h)
            if owner is not None and leaf in owner.classes:
                return owner.path, leaf
        return None

    def _link(self) -> None:
        for s in self.modules.values():
            for key, fs in s.functions.items():
                out: list[tuple[str, CallSite]] = []
                for site in fs.calls:
                    callee = self.resolve(s, key, site.callee)
                    if callee is not None and callee in self.functions:
                        out.append((callee, site))
                self.edges[fs.qualname] = out

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> list[tuple[str, CallSite]]:
        return self.edges.get(qualname, [])

    def callers(self) -> dict[str, list[tuple[str, CallSite]]]:
        rev: dict[str, list[tuple[str, CallSite]]] = {}
        for caller, outs in self.edges.items():
            for callee, site in outs:
                rev.setdefault(callee, []).append((caller, site))
        return rev

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            stack.extend(c for c, _ in self.edges.get(q, []))
        return seen

    def call_chain(self, root: str, target: str) -> list[str] | None:
        """Shortest root -> ... -> target qualname path (BFS), or None."""
        if root == target:
            return [root]
        prev: dict[str, str] = {}
        queue = [root]
        seen = {root}
        while queue:
            q = queue.pop(0)
            for callee, _ in self.edges.get(q, []):
                if callee in seen:
                    continue
                prev[callee] = q
                if callee == target:
                    chain = [callee]
                    while chain[-1] != root:
                        chain.append(prev[chain[-1]])
                    return list(reversed(chain))
                seen.add(callee)
                queue.append(callee)
        return None

    def transitive_locks(self) -> dict[str, set[str]]:
        """qualname -> every lock possibly acquired by it or any callee."""
        direct = {
            q: {a.lock for a in fs.locks}
            for q, fs in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for q, outs in self.edges.items():
                mine = direct[q]
                before = len(mine)
                for callee, _ in outs:
                    mine |= direct.get(callee, set())
                if len(mine) != before:
                    changed = True
        return direct
