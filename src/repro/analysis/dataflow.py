"""Generic forward dataflow over the :mod:`repro.analysis.cfg` graphs.

This is the engine under RPD114 (resource lifecycle) and the rewritten
RPD101 taint pass: a classic worklist fixpoint over a per-function CFG,
parameterised by a small transfer-function object so rules only describe
*facts*, never graph traversal.

State is deliberately untyped (any value with a sensible ``==``); the
framework requires

* ``boundary()`` — state at the function entry,
* ``join(a, b)`` — merge at control-flow confluences (must be monotone),
* ``transfer_stmt(state, stmt)`` — effect of executing one statement to
  normal completion,
* ``transfer_exc(state, stmt)`` — effect observed on the *exception*
  edge out of ``stmt``.  Exceptions can fire mid-statement, so the
  default applies no gens: a ``x = arena.lease(n)`` that raises never
  bound ``x``.  Rules override this to apply kill-only effects.
* ``transfer_synthetic(state, block)`` — effect of a synthetic block
  (``with-cleanup`` being the interesting one: context-manager
  ``__exit__`` releases its resources on both the normal and the
  exceptional path).

:func:`tainted_names` is the flow-insensitive convenience fixpoint that
generalizes the two-pass propagation RPD101 used to hand-roll.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Iterable

from .cfg import CFG, EDGE_EXC, Block

__all__ = ["ForwardAnalysis", "run_forward", "tainted_names"]


class ForwardAnalysis:
    """Base class for forward dataflow clients.  Override the transfer
    hooks; states must be comparable with ``==`` and never mutated in
    place (return fresh values)."""

    def boundary(self) -> Any:
        return frozenset()

    def join(self, a: Any, b: Any) -> Any:
        return a | b

    def transfer_stmt(self, state: Any, stmt: ast.stmt) -> Any:
        return state

    def transfer_exc(self, state: Any, stmt: ast.stmt) -> Any:
        """State carried on the exception edge out of ``stmt``.

        Default: the *incoming* state — the statement may have raised
        before completing any of its effects."""
        return state

    def transfer_synthetic(self, state: Any, block: Block) -> Any:
        return state


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> dict[int, Any]:
    """Run ``analysis`` to fixpoint; returns block idx -> in-state.

    Unreachable blocks keep no state (absent from the result).  The
    states at ``cfg.exit.idx`` and ``cfg.exc_exit.idx`` are the facts
    live at normal return and at an escaping exception respectively.
    """
    in_states: dict[int, Any] = {cfg.entry.idx: analysis.boundary()}
    work: list[Block] = [cfg.entry]
    on_work = {cfg.entry.idx}
    while work:
        block = work.pop(0)
        on_work.discard(block.idx)
        state = in_states[block.idx]

        if block.stmts:
            stmt = block.stmts[0]
            out_norm = analysis.transfer_stmt(state, stmt)
            out_exc = analysis.transfer_exc(state, stmt)
        else:
            out_norm = analysis.transfer_synthetic(state, block)
            out_exc = out_norm

        for succ, kind in block.succs:
            out = out_exc if kind == EDGE_EXC else out_norm
            if succ.idx in in_states:
                merged = analysis.join(in_states[succ.idx], out)
                if merged == in_states[succ.idx]:
                    continue
                in_states[succ.idx] = merged
            else:
                in_states[succ.idx] = out
            if succ.idx not in on_work:
                work.append(succ)
                on_work.add(succ.idx)
    return in_states


def tainted_names(
    scope: ast.AST,
    seeds: Callable[[ast.expr], bool],
    *,
    propagate: Callable[[ast.expr], bool] | None = None,
    sanitizers: Callable[[ast.expr], bool] | None = None,
    initial: Iterable[str] = (),
    stmts: Iterable[ast.stmt] | None = None,
) -> set[str]:
    """Flow-insensitive taint fixpoint over one scope.

    A name becomes tainted when it is assigned (including augmented and
    annotated assignment, and ``for`` targets) from an expression for
    which ``seeds`` returns True, or which mentions an already-tainted
    name.  ``propagate`` restricts which value-expression shapes carry
    taint onward (default: any expression mentioning a tainted name);
    ``sanitizers`` marks value expressions through which taint never
    flows (e.g. ``x = bytes(x)`` laundering a field element back to raw
    bytes).  The transfer is monotone — sanitized assignments simply
    don't *add* taint — so the fixpoint always terminates, and taint
    flows through chains regardless of statement order, which is what
    makes this a strict generalization of the old RPD101 two-pass loop.
    ``stmts`` lets callers supply a pre-filtered statement list (e.g.
    one that excludes nested function scopes).
    """
    tainted: set[str] = set(initial)

    def expr_tainted(expr: ast.expr) -> bool:
        if seeds(expr):
            return True
        if propagate is not None and not propagate(expr):
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in tainted:
                return True
        return False

    def targets_of(stmt: ast.stmt) -> list[ast.expr]:
        if isinstance(stmt, ast.Assign):
            return list(stmt.targets)
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            return [stmt.target]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.target]
        return []

    def flat_names(target: ast.expr) -> list[str]:
        names = []
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.append(node.id)
        return names

    if stmts is None:
        stmts = [
            n for n in ast.walk(scope)
            if isinstance(n, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                              ast.For, ast.AsyncFor))
        ]
    else:
        stmts = list(stmts)
    changed = True
    while changed:
        changed = False
        for stmt in stmts:
            value = getattr(stmt, "value", None) or getattr(stmt, "iter", None)
            if value is None:
                continue
            names = [n for t in targets_of(stmt) for n in flat_names(t)]
            if not names:
                continue
            if sanitizers is not None and sanitizers(value):
                continue
            if expr_tainted(value):
                for name in names:
                    if name not in tainted:
                        tainted.add(name)
                        changed = True
    return tainted
