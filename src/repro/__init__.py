"""repro — a from-scratch reproduction of RAPIDS (HPDC '23).

RAPIDS reconciles availability, accuracy and performance for
geo-distributed scientific data by combining multigrid-based
error-bounded lossy refactoring with per-level erasure coding, plus two
optimisation models: fault-tolerance configuration (expected relative
error under a storage budget) and data gathering (transfer latency under
bandwidth contention).

Public entry points::

    from repro import RAPIDS, Refactorer, StorageCluster, MetadataCatalog
    from repro.datasets import TABLE2
    from repro.transfer import paper_bandwidth_profile
"""

from .chaos import DegradedRestore, FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from .core import RAPIDS, DuplicationMethod, PlainECMethod
from .ec import ErasureCodec, RSCode
from .metadata import MetadataCatalog
from .refactor import RefactoredObject, Refactorer, relative_linf_error
from .storage import StorageCluster

__version__ = "1.0.0"

__all__ = [
    "RAPIDS",
    "Refactorer",
    "RefactoredObject",
    "relative_linf_error",
    "ErasureCodec",
    "RSCode",
    "StorageCluster",
    "MetadataCatalog",
    "DuplicationMethod",
    "PlainECMethod",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "RetryPolicy",
    "DegradedRestore",
    "__version__",
]
