"""Deterministic fault injection for chaos testing (``repro.chaos``).

FoundationDB-style simulation testing for the RAPIDS stack: a seedable
:class:`FaultPlan` schedules faults (fragment corruption, read/write
errors, kvstore crashes, transfer stalls, outages), a
:class:`FaultInjector` surfaces them at every instrumented I/O seam,
:class:`RetryPolicy` is the shared backoff/deadline policy, and
:class:`DegradedRestore` is the structured report ``RAPIDS.restore``
returns instead of raising when faults exceed a level's tolerance.

Every injected fault is replayable from ``(seed, plan)`` alone::

    plan = FaultPlan.random(seed=7, n_systems=16)
    injector = FaultInjector(plan).install(rapids)
    injector.apply_outages(rapids.cluster)
    report = rapids.restore("obj")          # never raises; may degrade
"""

from .atrest import inflict_at_rest
from .degraded import DegradedRestore, LevelFailure
from .injector import FaultInjector, FaultRecord, InjectedFault
from .plan import EFFECTS, SITES, FaultPlan, FaultSpec
from .retry import RetryOutcome, RetryPolicy

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "SITES",
    "EFFECTS",
    "FaultInjector",
    "InjectedFault",
    "FaultRecord",
    "RetryPolicy",
    "RetryOutcome",
    "DegradedRestore",
    "LevelFailure",
    "inflict_at_rest",
]
