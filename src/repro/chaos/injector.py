"""The runtime half of fault injection: :class:`FaultInjector`.

Every instrumented seam (storage systems, the file store, the KV store,
the transfer layer, the erasure codec, the RAPIDS pipeline) holds an
optional ``injector`` and consults it at each operation.  With no
injector attached the seams cost one ``is None`` check — production
paths are untouched.

Decisions are *stateless per operation identity*: whether spec ``s``
fires at occurrence ``c`` of operation key ``k`` is a pure function of
``sha256(seed | spec index | key | c)``.  Occurrence counters are the
only mutable state, they are keyed per ``(spec, key)`` and guarded by a
lock, so the injected fault sequence depends only on the per-key
operation order — identical ``(seed, plan)`` over an identical workload
replays bit-for-bit even when other keys interleave differently across
threads.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from .plan import FaultPlan, FaultSpec

__all__ = ["FaultInjector", "InjectedFault", "FaultRecord"]


class InjectedFault(RuntimeError):
    """An injected fault surfaced at an operation site.

    Carries enough context (``site``, ``effect``, ``ctx``) for the
    degraded-restore report and for shrinking a chaos failure to a
    one-line repro.
    """

    def __init__(self, site: str, effect: str, ctx: dict, *, spec_index: int = -1):
        self.site = site
        self.effect = effect
        self.ctx = dict(ctx)
        self.spec_index = spec_index
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.ctx.items()))
        super().__init__(f"injected {effect} at {site} ({detail})")


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as recorded in :attr:`FaultInjector.log`."""

    site: str
    effect: str
    spec_index: int
    occurrence: int
    ctx: tuple

    def describe(self) -> str:
        detail = ", ".join(f"{k}={v!r}" for k, v in self.ctx)
        return f"{self.site}:{self.effect} #{self.occurrence} ({detail})"


def _stable_key(ctx: dict) -> str:
    return "|".join(f"{k}={ctx[k]!r}" for k in sorted(ctx))


class FaultInjector:
    """Consults a :class:`FaultPlan` at instrumented operation sites.

    Parameters
    ----------
    plan:
        The fault schedule.  ``plan.seed`` drives every probabilistic
        decision and every payload mutation.
    trace:
        When true, *every* consulted operation (faulted or not) is
        appended to :attr:`trace` — the observability hook chaos tests
        use instead of monkeypatching seams.
    """

    def __init__(self, plan: FaultPlan, *, trace: bool = False):
        self.plan = plan
        self.log: list[FaultRecord] = []
        self.trace: list[tuple[str, dict]] | None = [] if trace else None
        self._lock = threading.Lock()
        self._counts: dict[tuple[int, str], int] = {}
        self._fires: dict[int, int] = {}

    # -- decision core ------------------------------------------------------

    def _uniform(self, spec_index: int, key: str, occurrence: int) -> float:
        payload = f"{self.plan.seed}|{spec_index}|{key}|{occurrence}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def _digest_bytes(self, spec_index: int, key: str, occurrence: int, n: int) -> bytes:
        out = b""
        counter = 0
        while len(out) < n:
            payload = f"{self.plan.seed}|{spec_index}|{key}|{occurrence}|{counter}".encode()
            out += hashlib.sha256(payload).digest()
            counter += 1
        return out[:n]

    def fault_at(self, site: str, **ctx) -> FaultSpec | None:
        """Decide whether a fault fires at this operation.

        Returns the first firing spec (plan order) or ``None``.  Fires
        are logged; occurrence counters advance for every *matching*
        spec whether or not it fires, so occurrence windows (``start``/
        ``stop``) see the true attempt sequence.
        """
        fired = self._fault_at(site, ctx)
        return fired[1] if fired is not None else None

    def _fault_at(self, site: str, ctx: dict) -> tuple[int, FaultSpec, str, int] | None:
        if self.trace is not None:
            with self._lock:
                self.trace.append((site, dict(ctx)))
        fired: tuple[int, FaultSpec, str, int] | None = None
        with self._lock:
            for idx, spec in enumerate(self.plan.specs):
                if spec.site != site or not spec.matches(ctx):
                    continue
                key = _stable_key(ctx) if spec.scope == "key" else "*"
                ckey = (idx, key)
                occurrence = self._counts.get(ckey, 0)
                self._counts[ckey] = occurrence + 1
                if fired is not None:
                    continue  # still advance later specs' counters
                if occurrence < spec.start:
                    continue
                if spec.stop is not None and occurrence >= spec.stop:
                    continue
                if spec.max_fires is not None and self._fires.get(idx, 0) >= spec.max_fires:
                    continue
                if spec.probability < 1.0 and (
                    self._uniform(idx, key, occurrence) >= spec.probability
                ):
                    continue
                self._fires[idx] = self._fires.get(idx, 0) + 1
                self.log.append(
                    FaultRecord(site, spec.effect, idx, occurrence,
                                tuple(sorted(ctx.items())))
                )
                fired = (idx, spec, key, occurrence)
        return fired

    # -- caller conveniences ------------------------------------------------

    def check(self, site: str, *, handled: tuple = (), **ctx) -> FaultSpec | None:
        """Consult the plan; raise :class:`InjectedFault` unless the
        firing spec's effect is one the caller declared it applies
        itself (``handled``)."""
        fired = self._fault_at(site, ctx)
        if fired is None:
            return None
        idx, spec, _key, _occurrence = fired
        if spec.effect in handled:
            return spec
        raise InjectedFault(site, spec.effect, ctx, spec_index=idx)

    def filter_payload(self, site: str, payload: bytes, **ctx) -> bytes:
        """Read-path helper: pass ``payload`` through the plan.

        ``corrupt``/``truncate`` return a deterministically mutated
        copy (the original buffer is never touched); ``error`` raises;
        ``stall`` is a no-op here (there is no clock on direct reads).
        """
        fired = self._fault_at(site, ctx)
        if fired is None:
            return payload
        idx, spec, key, occurrence = fired
        if spec.effect == "stall":
            return payload
        if spec.effect in ("corrupt", "truncate"):
            return self.mutate_payload(spec, payload, spec_index=idx,
                                       key=key, occurrence=occurrence)
        raise InjectedFault(site, spec.effect, ctx, spec_index=idx)

    def mutate_payload(
        self, spec: FaultSpec, payload: bytes, *,
        spec_index: int, key: str, occurrence: int,
    ) -> bytes:
        """Apply a data effect deterministically (same plan ⇒ same bytes)."""
        if not payload:
            return payload
        if spec.effect == "truncate":
            keep = min(len(payload) - 1, int(len(payload) * min(spec.magnitude, 1.0)))
            return payload[: max(0, keep)]
        if spec.effect == "corrupt":
            n_bytes = max(1, min(len(payload), int(spec.magnitude)))
            out = bytearray(payload)
            raw = self._digest_bytes(spec_index, key, occurrence, 8 * n_bytes)
            for i in range(n_bytes):
                pos = int.from_bytes(raw[8 * i : 8 * i + 8], "big") % len(out)
                out[pos] ^= 0xFF
            return bytes(out)
        raise ValueError(f"effect {spec.effect!r} is not a payload mutation")

    # -- outages ------------------------------------------------------------

    def outage_ids(self) -> list[int]:
        """Systems the plan takes down at t=0 (seeded draws resolved)."""
        down: set[int] = set()
        for idx, spec in enumerate(self.plan.specs):
            if spec.site != "system.outage":
                continue
            sid = spec.where.get("system_id")
            if sid is None:
                continue
            if spec.probability >= 1.0 or (
                self._uniform(idx, f"system_id={sid!r}", 0) < spec.probability
            ):
                down.add(int(sid))
        return sorted(down)

    def apply_outages(self, cluster) -> list[int]:
        """Fail the planned systems on ``cluster``; returns the ids."""
        ids = self.outage_ids()
        cluster.fail(ids)
        return ids

    # -- wiring -------------------------------------------------------------

    def install(self, *targets) -> "FaultInjector":
        """Attach this injector to each target.

        A target either exposes ``attach_injector`` (clusters, stores,
        codecs, the RAPIDS pipeline) or a plain ``injector`` attribute.
        Returns ``self`` so construction and wiring chain.
        """
        for obj in targets:
            attach = getattr(obj, "attach_injector", None)
            if attach is not None:
                attach(self)
            elif hasattr(obj, "injector"):
                obj.injector = self
            else:
                raise TypeError(f"{type(obj).__name__} has no injector seam")
        return self

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict:
        """Counts per (site, effect) for reports."""
        out: dict[str, int] = {}
        with self._lock:
            for rec in self.log:
                k = f"{rec.site}:{rec.effect}"
                out[k] = out.get(k, 0) + 1
        return out
