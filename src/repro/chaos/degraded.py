"""Structured degraded-restore reports.

When faults exceed a level's fault tolerance ``m_j``, ``RAPIDS.restore``
no longer raises: it returns the deepest recoverable level prefix with
its recorded error bound plus a :class:`DegradedRestore` report saying
exactly what failed, what was retried, and what was abandoned — the
machine-readable half of the availability guarantee (paper Eqs. 4/5).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["DegradedRestore", "LevelFailure"]


@dataclass
class LevelFailure:
    """Why one level (or pipeline stage) could not be restored."""

    level: int  # -1 for object-wide stages (metadata, pipeline)
    stage: str  # "metadata" | "gather" | "decode" | "pipeline"
    error: str
    attempts: int = 1
    retried: bool = False

    def describe(self) -> str:
        where = f"level {self.level}" if self.level >= 0 else "object"
        retry = f" after {self.attempts} attempts" if self.retried else ""
        return f"{where} [{self.stage}]{retry}: {self.error}"


@dataclass
class DegradedRestore:
    """What a faulted restoration actually delivered.

    ``recovered_levels`` is always a prefix of ``requested_levels``
    (progressive reconstruction needs every coarser level below a
    refinement), ``error_bound`` is the recorded bound of the deepest
    recovered level (``None`` when nothing was recoverable), and
    ``failures`` explains each abandonment.
    """

    name: str
    requested_levels: list[int] = field(default_factory=list)
    recovered_levels: list[int] = field(default_factory=list)
    abandoned_levels: list[int] = field(default_factory=list)
    failures: list[LevelFailure] = field(default_factory=list)
    error_bound: float | None = None
    injected_faults: dict = field(default_factory=dict)
    #: Fragments whose payload failed CRC verification during this
    #: restore and were absorbed as erasures (spares or EC parity).
    corrupt_fragments: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.failures) or bool(self.abandoned_levels)

    @property
    def total_attempts(self) -> int:
        return sum(f.attempts for f in self.failures)

    def to_dict(self) -> dict:
        return asdict(self)

    def describe(self) -> str:
        lines = [
            f"degraded restore of {self.name!r}: "
            f"{len(self.recovered_levels)}/{len(self.requested_levels)} "
            f"level(s) recovered"
        ]
        if self.error_bound is not None:
            lines.append(f"  error bound of recovered prefix: {self.error_bound:.3e}")
        else:
            lines.append("  nothing recoverable")
        for fail in self.failures:
            lines.append(f"  FAILED {fail.describe()}")
        if self.abandoned_levels:
            lines.append(f"  abandoned levels: {self.abandoned_levels}")
        if self.corrupt_fragments:
            lines.append(
                f"  {self.corrupt_fragments} corrupt fragment(s) treated as erasures"
            )
        for key, count in sorted(self.injected_faults.items()):
            lines.append(f"  injected {key} x{count}")
        return "\n".join(lines)
