"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a declarative schedule of fault events — which
I/O seams misbehave, how, and when — plus the seed that makes every
probabilistic decision reproducible.  The plan is pure data: it can be
serialised to JSON, checked into a bug report, and replayed bit-for-bit
with ``rapids chaos --plan plan.json``.  The runtime half lives in
:class:`repro.chaos.injector.FaultInjector`, which consults the plan at
every instrumented operation site.

The replay contract: identical ``(seed, specs)`` fed to a
:class:`FaultInjector` over an identical operation sequence produce an
identical fault sequence — decisions are derived by hashing
``(seed, spec, op key, occurrence)``, never from shared-RNG call order,
so thread interleaving cannot perturb them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

__all__ = ["FaultSpec", "FaultPlan", "SITES", "EFFECTS"]

#: Operation sites a spec may target.  Each maps to one instrumented
#: seam; ``pipeline.*`` are phase-boundary checks inside RAPIDS itself.
SITES = frozenset(
    {
        "storage.read",
        "storage.write",
        "filestore.read",
        "filestore.write",
        "kvstore.get",
        "kvstore.put",
        "kvstore.fsync",
        "transfer.attempt",
        "globus.submit",
        "ec.decode",
        "system.outage",
        "pipeline.prepare",
        "pipeline.restore",
        "streaming.index",
        "streaming.read",
        "service.admit",
        "service.dequeue",
        "service.journal",
    }
)

#: What happens when a spec fires.
#:
#: * ``error``    — the operation raises :class:`InjectedFault`;
#: * ``corrupt``  — payload bytes are flipped (bit rot);
#: * ``truncate`` — the payload loses its tail (partial read/transfer);
#: * ``stall``    — simulated time is added (``magnitude`` seconds);
#: * ``torn``     — a write persists only a prefix, then crashes;
#: * ``outage``   — the targeted storage system is down from the start.
EFFECTS = frozenset({"error", "corrupt", "truncate", "stall", "torn", "outage"})

#: Effects that only make sense for a given site family.
_SITE_EFFECTS = {
    "system.outage": {"outage"},
    "kvstore.put": {"error", "torn"},
    "kvstore.fsync": {"error"},
    "kvstore.get": {"error"},
    "transfer.attempt": {"error", "stall"},
    "globus.submit": {"error", "stall"},
    "ec.decode": {"error"},
    "pipeline.prepare": {"error"},
    "pipeline.restore": {"error"},
    "streaming.index": {"error", "torn"},
    "streaming.read": {"error", "stall"},
    "storage.write": {"error", "torn"},
    "filestore.write": {"error", "torn"},
    "storage.read": {"error", "corrupt", "truncate", "stall"},
    "filestore.read": {"error", "corrupt", "truncate", "stall"},
    # Archive-service seams: admission shedding, dispatcher failures,
    # and journal-write faults (the crash between journal and commit).
    "service.admit": {"error"},
    "service.dequeue": {"error"},
    "service.journal": {"error"},
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: *at this site, under these conditions, do this*.

    Parameters
    ----------
    site:
        Operation site (see :data:`SITES`).
    effect:
        What firing does (see :data:`EFFECTS`).
    probability:
        Chance the spec fires at a matching occurrence; draws are
        derived from the plan seed + op identity, so they replay.
    where:
        Exact-match filters on the operation context, e.g.
        ``{"system_id": 3}`` or ``{"level": 1}``.  Empty matches all.
    start, stop:
        Occurrence window ``[start, stop)`` — the spec only fires on
        matching occurrences inside it (``stop=None`` is unbounded).
        With ``scope="key"`` occurrences count per distinct op key
        (e.g. retries of one fragment heal after ``stop`` attempts);
        with ``scope="site"`` they count across the whole site.
    max_fires:
        Total firing cap across the run (``None`` = unlimited).
    magnitude:
        Effect-specific knob: stall seconds, number of corrupted bytes,
        or the fraction kept by ``truncate``/``torn``.
    scope:
        Occurrence-counter granularity, ``"key"`` or ``"site"``.
    """

    site: str
    effect: str = "error"
    probability: float = 1.0
    where: dict = field(default_factory=dict)
    start: int = 0
    stop: int | None = None
    max_fires: int | None = None
    magnitude: float = 1.0
    scope: str = "key"

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.effect not in EFFECTS:
            raise ValueError(f"unknown fault effect {self.effect!r}")
        allowed = _SITE_EFFECTS.get(self.site, EFFECTS)
        if self.effect not in allowed:
            raise ValueError(
                f"effect {self.effect!r} is not valid at site {self.site!r} "
                f"(allowed: {sorted(allowed)})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("stop must be > start")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be >= 1")
        if self.magnitude < 0:
            raise ValueError("magnitude must be >= 0")
        if self.scope not in ("key", "site"):
            raise ValueError(f"scope must be 'key' or 'site', got {self.scope!r}")

    def matches(self, ctx: dict) -> bool:
        """Does this spec apply to an operation with context ``ctx``?"""
        return all(ctx.get(k) == v for k, v in self.where.items())

    def describe(self) -> str:
        parts = [f"{self.site}:{self.effect}"]
        if self.probability < 1.0:
            parts.append(f"p={self.probability:g}")
        if self.where:
            parts.append(",".join(f"{k}={v}" for k, v in sorted(self.where.items())))
        if self.start or self.stop is not None:
            parts.append(f"occ[{self.start},{self.stop if self.stop is not None else '∞'})")
        if self.max_fires is not None:
            parts.append(f"max={self.max_fires}")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of :class:`FaultSpec` rules.

    The pair ``(seed, specs)`` fully determines every injected fault:
    chaos failures reproduce from the plan alone (save it with
    :meth:`save`, replay with ``rapids chaos --plan``).
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    # -- construction ------------------------------------------------------

    @classmethod
    def outages(cls, system_ids, *, seed: int = 0, extra=()) -> "FaultPlan":
        """A plan that simply takes ``system_ids`` down from the start."""
        specs = tuple(
            FaultSpec(site="system.outage", effect="outage", where={"system_id": int(i)})
            for i in sorted(set(int(i) for i in system_ids))
        ) + tuple(extra)
        return cls(seed=seed, specs=specs)

    @classmethod
    def exact_failures(cls, n: int, k: int, *, seed: int = 0, extra=()) -> "FaultPlan":
        """Exactly ``k`` of ``n`` systems down, drawn deterministically
        from ``seed`` (the Fig. 1 'N concurrent failures' scenarios)."""
        from ..storage.failures import exact_k_failures

        return cls.outages(exact_k_failures(n, k, seed=seed), seed=seed, extra=extra)

    @classmethod
    def from_failure_model(cls, model, n: int, *, seed: int = 0, extra=()) -> "FaultPlan":
        """Outages sampled once from a failure model (Bernoulli,
        correlated/region-shared-fate, or any object with
        ``sample_failed_ids(n)``)."""
        return cls.outages(model.sample_failed_ids(n), seed=seed, extra=extra)

    @classmethod
    def from_schedule(
        cls,
        schedule,
        *,
        ops_per_unit: int = 1,
        sites: tuple = ("storage.read", "storage.write"),
        seed: int = 0,
        extra=(),
    ) -> "FaultPlan":
        """Bridge a :class:`~repro.storage.failures.MaintenanceSchedule`
        onto occurrence windows.

        The injector has no wall clock; its time axis is the per-site
        operation count.  Each maintenance window ``(start, end)`` for a
        system becomes one ``scope="site"`` spec per target site that
        errors operations on that system while the site-wide occurrence
        counter is inside ``[start * ops_per_unit, end * ops_per_unit)``
        — so ``ops_per_unit`` calibrates "operations per simulated time
        unit" and the same schedule drives the same injector as any
        random plan.  Windows already closed (or of zero length after
        rounding) are dropped.

        Passing ``sites=("system.outage",)`` instead emits windowed
        outage specs, which campaign simulations
        (:func:`repro.sim.run_campaign`) read as *epoch* windows — the
        bridge from a maintenance schedule to a region-loss campaign.
        """
        specs: list[FaultSpec] = []
        for sid in sorted(schedule.windows):
            for start, end in sorted(schedule.windows[sid]):
                lo = max(0, int(start * ops_per_unit))
                hi = int(end * ops_per_unit)
                if hi <= lo:
                    continue
                for site in sites:
                    specs.append(
                        FaultSpec(
                            site=site,
                            effect="outage" if site == "system.outage" else "error",
                            where={"system_id": int(sid)},
                            start=lo,
                            stop=hi,
                            scope="site",
                        )
                    )
        return cls(seed=seed, specs=tuple(specs) + tuple(extra))

    @classmethod
    def random(
        cls,
        seed: int,
        n_systems: int,
        *,
        intensity: float = 0.15,
        transfer_faults: bool = True,
        metadata_faults: bool = False,
    ) -> "FaultPlan":
        """A randomised but fully reproducible plan.

        Outages come from the existing
        :class:`~repro.storage.failures.BernoulliFailureModel` (with a
        correlated region thrown in at higher intensities); op-level
        read faults, decode faults and transfer stalls are sprinkled
        with probability ``intensity``.  Same ``(seed, n_systems,
        intensity)`` ⇒ same plan.
        """
        import numpy as np

        from ..storage.failures import BernoulliFailureModel, CorrelatedFailureModel

        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        rng = np.random.default_rng(seed)
        specs: list[FaultSpec] = []

        if rng.random() < 0.5 or intensity < 0.2:
            outage_model = BernoulliFailureModel(p=intensity / 2, seed=int(rng.integers(2**31)))
            down = outage_model.sample_failed_ids(n_systems)
        else:
            half = max(1, n_systems // 4)
            regions = [list(range(half)), list(range(half, n_systems))]
            down = CorrelatedFailureModel(
                regions, p_region=intensity / 4, p_single=intensity / 4,
                seed=int(rng.integers(2**31)),
            ).sample_failed_ids(n_systems)
        specs.extend(
            FaultSpec(site="system.outage", effect="outage", where={"system_id": int(i)})
            for i in down
        )

        n_read_faults = int(rng.integers(0, max(2, int(n_systems * intensity)) + 1))
        for sid in rng.choice(n_systems, size=min(n_read_faults, n_systems), replace=False):
            effect = str(rng.choice(["error", "corrupt", "truncate"]))
            transient = bool(rng.random() < 0.5)
            specs.append(
                FaultSpec(
                    site="storage.read",
                    effect=effect,
                    probability=float(np.round(rng.uniform(0.3, 1.0), 3)),
                    where={"system_id": int(sid)},
                    stop=2 if transient else None,
                    magnitude=4.0 if effect == "corrupt" else 0.5,
                )
            )
        if rng.random() < intensity:
            specs.append(
                FaultSpec(
                    site="ec.decode",
                    effect="error",
                    probability=float(np.round(rng.uniform(0.2, 0.8), 3)),
                    where={"level": int(rng.integers(0, 4))},
                )
            )
        if transfer_faults and rng.random() < 2 * intensity:
            specs.append(
                FaultSpec(
                    site="transfer.attempt",
                    effect=str(rng.choice(["error", "stall"])),
                    probability=float(np.round(rng.uniform(0.2, 0.7), 3)),
                    stop=3,
                    magnitude=float(np.round(rng.uniform(0.5, 5.0), 2)),
                )
            )
        if metadata_faults and rng.random() < intensity:
            specs.append(
                FaultSpec(site="kvstore.get", effect="error",
                          probability=float(np.round(rng.uniform(0.1, 0.5), 3)),
                          stop=1)
            )
        return cls(seed=seed, specs=tuple(specs))

    # -- queries -----------------------------------------------------------

    def outage_ids(self) -> list[int]:
        """System ids taken down by ``system.outage`` specs (the
        deterministic, probability-1 ones plus seeded draws for the rest)."""
        from .injector import FaultInjector

        return FaultInjector(self).outage_ids()

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def describe(self) -> str:
        if not self.specs:
            return f"seed={self.seed} (no faults)"
        return f"seed={self.seed} " + "; ".join(s.describe() for s in self.specs)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed, "specs": [asdict(s) for s in self.specs]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(
            seed=int(d.get("seed", 0)),
            specs=tuple(FaultSpec(**s) for s in d.get("specs", [])),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())
