"""A shared retry policy: exponential backoff + jitter + deadline.

One policy object replaces the ad-hoc retry loops that used to live in
the transfer layer: it answers two questions — *may I try again?* and
*how long do I wait first?* — and executes real-time retries via
:meth:`call`.  Simulated-time callers (the transfer task manager) use
:meth:`delay`/:meth:`should_retry` directly and add the delay to their
own clock.

An unbounded policy (``max_attempts=None``) must carry a ``deadline``:
without one a permanently failed endpoint would retry forever, which is
exactly the transfer-manager bug this module exists to close.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["RetryPolicy", "RetryOutcome"]


@dataclass
class RetryOutcome:
    """What a retried call did: its value or last error, plus accounting."""

    value: object = None
    error: BaseException | None = None
    attempts: int = 0
    elapsed: float = 0.0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def retried(self) -> bool:
        return self.attempts > 1


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, capped by attempts and deadline.

    Parameters
    ----------
    max_attempts:
        Total attempts allowed (first try included).  ``None`` means
        unlimited — then ``deadline`` is mandatory.
    base:
        Delay before the first retry, in seconds (0 disables waiting).
    factor:
        Exponential growth factor per retry.
    jitter:
        Fraction of each delay randomised away (0 = deterministic,
        0.5 = delay uniformly in [50%, 100%] of nominal).
    max_delay:
        Cap on a single delay (``None`` = uncapped).
    deadline:
        Total time budget across all attempts and backoffs, in the
        caller's clock (wall seconds for :meth:`call`, simulated
        seconds for the transfer manager).
    """

    max_attempts: int | None = 3
    base: float = 0.5
    factor: float = 2.0
    jitter: float = 0.0
    max_delay: float | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (or None for unlimited)")
        if self.base < 0:
            raise ValueError("base must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.max_attempts is None and self.deadline is None:
            raise ValueError(
                "unbounded retries (max_attempts=None) require a deadline"
            )

    def delay(self, retry_index: int, *, u: float | None = None) -> float:
        """Backoff before retry ``retry_index`` (0-based).

        ``u`` is the jitter draw in [0, 1); pass one from a seeded RNG
        for reproducible schedules (ignored when ``jitter == 0``).
        """
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        d = self.base * self.factor**retry_index
        if self.max_delay is not None:
            d = min(d, self.max_delay)
        if self.jitter and u is not None:
            d *= 1.0 - self.jitter * u
        return d

    def should_retry(self, attempts: int, elapsed: float) -> bool:
        """May another attempt start after ``attempts`` tries and
        ``elapsed`` time spent (backoff included)?"""
        if self.max_attempts is not None and attempts >= self.max_attempts:
            return False
        if self.deadline is not None and elapsed >= self.deadline:
            return False
        return True

    def call(
        self,
        fn,
        *,
        retry_on: tuple = (Exception,),
        sleep=time.sleep,
        clock=time.monotonic,
        rng=None,
        on_retry=None,
    ) -> RetryOutcome:
        """Execute ``fn()`` under this policy (real time).

        Never raises: the outcome carries either the value or the last
        exception plus the attempt/backoff accounting — callers that
        want the old behaviour re-raise ``outcome.error``.
        """
        start = clock()
        outcome = RetryOutcome()
        while True:
            outcome.attempts += 1
            try:
                outcome.value = fn()
                outcome.error = None
                outcome.elapsed = clock() - start
                return outcome
            except retry_on as exc:
                outcome.error = exc
                outcome.errors.append(f"{type(exc).__name__}: {exc}")
            outcome.elapsed = clock() - start
            if not self.should_retry(outcome.attempts, outcome.elapsed):
                return outcome
            u = rng.random() if (rng is not None and self.jitter) else None
            d = self.delay(outcome.attempts - 1, u=u)
            if self.deadline is not None and outcome.elapsed + d >= self.deadline:
                return outcome
            if on_retry is not None:
                on_retry(outcome.attempts, d, outcome.error)
            if d > 0:
                sleep(d)
