"""Turn a :class:`FaultPlan`'s damage specs into damage *at rest*.

The injector's wire effects mutate copies on each read — the resident
fragment always survives, so nothing persists between operations.  The
self-healing tests and the ``rapids chaos --workspace`` CLI need the
opposite: bit rot and fragment loss that sits in the store until a
scrubber finds it.  :func:`inflict_at_rest` replays a plan's
``storage.read`` damage specs directly onto the resident fragments:

* ``error``    — the fragment is deleted (missing at rest);
* ``corrupt``  — payload bytes are flipped deterministically (the same
  :meth:`~repro.chaos.injector.FaultInjector.mutate_payload` bytes a
  wire fault would produce) while the recorded checksum is kept, so the
  read path and the scrubber detect the rot;
* ``truncate`` — the payload loses its tail, checksum kept likewise.

Damage is deterministic in ``(plan.seed, plan.specs)`` and the cluster
inventory.  Only available systems are touched — call this *before*
``apply_outages`` when staging a scenario.
"""

from __future__ import annotations

from ..storage.system import StoredFragment
from .injector import FaultInjector, _stable_key
from .plan import FaultPlan

__all__ = ["inflict_at_rest"]

#: Effects that translate to at-rest damage (stall has no resting state).
_DAMAGE_EFFECTS = ("error", "corrupt", "truncate")


def _inventory(system) -> list[tuple[str, int, int]]:
    """Fragment keys resident on one system, for either cluster kind."""
    keys = getattr(system, "fragment_keys", None)
    if keys is not None:
        return sorted(keys())
    return sorted(f.key for f in system.fragments())


def inflict_at_rest(
    plan: FaultPlan, cluster, *, site: str = "storage.read"
) -> list[dict]:
    """Apply ``plan``'s damage specs at ``site`` to resident fragments.

    Every resident fragment on every available system is tested against
    the plan's damage specs (``where`` filters and ``probability`` are
    honoured; the first matching spec wins, occurrence windows are
    ignored — at-rest damage happens *now*).  Returns one record per
    inflicted damage: ``{"system_id", "object_name", "level", "index",
    "effect"}`` with effect ``missing`` / ``corrupt`` / ``truncate``.
    """
    injector = FaultInjector(plan)
    inflicted: list[dict] = []
    damage_specs = [
        (idx, spec)
        for idx, spec in enumerate(plan.specs)
        if spec.site == site and spec.effect in _DAMAGE_EFFECTS
    ]
    if not damage_specs:
        return inflicted
    for system in cluster.systems:
        if not system.available:
            continue
        saved = system.injector
        system.injector = None
        try:
            for obj, level, index in _inventory(system):
                ctx = {
                    "system_id": system.system_id, "object_name": obj,
                    "level": level, "index": index,
                }
                for idx, spec in damage_specs:
                    if not spec.matches(ctx):
                        continue
                    key = _stable_key(ctx) if spec.scope == "key" else "*"
                    if spec.probability < 1.0 and (
                        injector._uniform(idx, key, 0) >= spec.probability
                    ):
                        continue
                    if spec.effect == "error":
                        system.delete(obj, level, index)
                        inflicted.append({**ctx, "effect": "missing"})
                    else:
                        frag = system.get(obj, level, index)
                        if frag.payload is None:
                            break  # simulated fragment: nothing to rot
                        mutated = injector.mutate_payload(
                            # rapidslint: disable-next=RPD111 -- infliction site: the payload is rotted on purpose, checksum deliberately left stale
                            spec, frag.payload, spec_index=idx,
                            key=key, occurrence=0,
                        )
                        # Keep the original checksum: real bit rot does
                        # not update integrity metadata, and that gap is
                        # exactly what read verification and the
                        # scrubber detect.
                        system.put(
                            StoredFragment(
                                obj, level, index, len(mutated), mutated,
                                checksum=frag.checksum,
                            )
                        )
                        inflicted.append({**ctx, "effect": spec.effect})
                    break
        finally:
            system.injector = saved
    return inflicted
