"""Replicated metadata store — the paper's stated future work (§4.3).

The paper's metadata lives on one system and is "prone to failures"; the
authors name metadata duplication and distributed management as future
development.  This module provides it: a quorum-replicated KV store over
N independent :class:`~repro.metadata.kvstore.KVStore` replicas.

Semantics (Dynamo-style, single writer):

* every write carries a per-key monotonically increasing version;
* a write succeeds when at least ``write_quorum`` replicas accept it;
* a read consults ``read_quorum`` replicas, returns the highest-version
  value, and *read-repairs* any stale replica it touched;
* deletes are versioned tombstones, so a stale replica cannot resurrect
  a deleted key;
* a replica that was down (or lost entirely) is resynchronised with
  :meth:`ReplicatedKVStore.recover_replica`.

With ``write_quorum + read_quorum > n`` reads always observe the latest
completed write (quorum intersection) — the property the tests verify
under failure injection.

``MetadataCatalog`` works unchanged on top: it only needs the KV
interface (put/get/delete/scan/keys), which this class implements.
"""

from __future__ import annotations

import struct
from pathlib import Path

from .kvstore import KVStore

__all__ = ["ReplicatedKVStore", "QuorumError"]

_HEADER = struct.Struct("<QB")  # version, tombstone


class QuorumError(RuntimeError):
    """Raised when too few replicas are reachable for a quorum."""


class ReplicatedKVStore:
    """Quorum-replicated key-value store over N local KVStore replicas.

    Parameters
    ----------
    paths:
        One directory per replica (created on demand).
    write_quorum / read_quorum:
        Minimum replica acknowledgements per operation.  Defaults to
        majority quorums; ``write_quorum + read_quorum`` must exceed the
        replica count so read and write quorums always intersect.
    """

    def __init__(
        self,
        paths: list[str | Path],
        *,
        write_quorum: int | None = None,
        read_quorum: int | None = None,
    ) -> None:
        if len(paths) < 2:
            raise ValueError("replication needs at least 2 replicas")
        n = len(paths)
        self.write_quorum = write_quorum if write_quorum is not None else n // 2 + 1
        self.read_quorum = read_quorum if read_quorum is not None else n // 2 + 1
        if not 1 <= self.write_quorum <= n or not 1 <= self.read_quorum <= n:
            raise ValueError("quorums must be in [1, n]")
        if self.write_quorum + self.read_quorum <= n:
            raise ValueError(
                "write_quorum + read_quorum must exceed the replica count "
                "for reads to observe the latest write"
            )
        self.replicas = [KVStore(p) for p in paths]
        self._up = [True] * n

    # -- failure injection (for tests and simulations) -------------------

    def fail_replica(self, idx: int) -> None:
        self._up[idx] = False

    def restore_replica(self, idx: int) -> None:
        self._up[idx] = True

    def up_count(self) -> int:
        return sum(self._up)

    # -- versioned records ----------------------------------------------

    @staticmethod
    def _encode(version: int, tombstone: bool, payload: bytes) -> bytes:
        return _HEADER.pack(version, int(tombstone)) + payload

    @staticmethod
    def _decode(raw: bytes) -> tuple[int, bool, bytes]:
        version, tomb = _HEADER.unpack_from(raw, 0)
        return version, bool(tomb), raw[_HEADER.size :]

    def _latest_version(self, key: bytes) -> int:
        best = 0
        for up, rep in zip(self._up, self.replicas):
            if not up:
                continue
            raw = rep.get(key)
            if raw is not None:
                best = max(best, self._decode(raw)[0])
        return best

    def _write(self, key: bytes, record: bytes) -> int:
        acks = 0
        for i, rep in enumerate(self.replicas):
            if not self._up[i]:
                continue
            rep.put(key, record)
            acks += 1
        return acks

    # -- public KV interface ------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("value must be bytes")
        version = self._latest_version(key) + 1
        record = self._encode(version, False, bytes(value))
        if self._write(key, record) < self.write_quorum:
            raise QuorumError(
                f"only {self.up_count()} replicas up, "
                f"need {self.write_quorum} for a write"
            )

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        consulted: list[tuple[int, KVStore, bytes | None]] = []
        for i, rep in enumerate(self.replicas):
            if not self._up[i]:
                continue
            consulted.append((i, rep, rep.get(key)))
            if len(consulted) >= self.read_quorum:
                break
        if len(consulted) < self.read_quorum:
            raise QuorumError(
                f"only {self.up_count()} replicas up, "
                f"need {self.read_quorum} for a read"
            )
        best_version, best_tomb, best_val = 0, True, None
        have_any = False
        for _, _, raw in consulted:
            if raw is None:
                continue
            version, tomb, payload = self._decode(raw)
            have_any = True
            if version > best_version:
                best_version, best_tomb, best_val = version, tomb, payload
        if have_any:
            # Read repair: bring stale consulted replicas up to date.
            record = self._encode(best_version, best_tomb, best_val or b"")
            for _, rep, raw in consulted:
                if raw is None or self._decode(raw)[0] < best_version:
                    rep.put(key, record)
        if not have_any or best_tomb:
            return default
        return best_val

    def delete(self, key: bytes) -> bool:
        existed = self.get(key) is not None
        version = self._latest_version(key) + 1
        record = self._encode(version, True, b"")
        if self._write(key, record) < self.write_quorum:
            raise QuorumError(
                f"only {self.up_count()} replicas up, "
                f"need {self.write_quorum} for a delete"
            )
        return existed

    def keys(self, prefix: bytes = b"") -> list[bytes]:
        """Live keys with the given prefix (union over up replicas,
        filtered through versioned reads so tombstones win)."""
        candidates: set[bytes] = set()
        for up, rep in zip(self._up, self.replicas):
            if up:
                candidates.update(rep.keys(prefix))
        return sorted(k for k in candidates if self.get(k) is not None)

    def scan(self, prefix: bytes = b"") -> list[tuple[bytes, bytes]]:
        return [(k, self.get(k)) for k in self.keys(prefix)]

    def __contains__(self, key: bytes) -> bool:
        return self.get(bytes(key)) is not None

    def __len__(self) -> int:
        return len(self.keys())

    # -- maintenance -----------------------------------------------------

    def recover_replica(self, idx: int) -> int:
        """Resynchronise a (restored or replaced) replica from its peers.

        Returns the number of records copied.  The replica is marked up
        afterwards.
        """
        target = self.replicas[idx]
        self._up[idx] = True
        copied = 0
        candidates: set[bytes] = set()
        for i, rep in enumerate(self.replicas):
            if i != idx and self._up[i]:
                candidates.update(rep.keys())
        for key in candidates:
            best_raw, best_version = None, -1
            for i, rep in enumerate(self.replicas):
                if i == idx or not self._up[i]:
                    continue
                raw = rep.get(key)
                if raw is not None and self._decode(raw)[0] > best_version:
                    best_raw, best_version = raw, self._decode(raw)[0]
            if best_raw is None:
                continue
            local = target.get(key)
            if local is None or self._decode(local)[0] < best_version:
                target.put(key, best_raw)
                copied += 1
        return copied

    def close(self) -> None:
        for rep in self.replicas:
            rep.close()

    def __enter__(self) -> "ReplicatedKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
