"""An embedded log-structured key-value store (RocksDB substitute).

The RAPIDS metadata component needs a durable, low-latency embedded
key-value database.  This store follows the Bitcask design that also
underlies RocksDB's WAL path:

* Writes append CRC-checked records to the active segment file; the
  in-memory index maps each key to its latest record's (segment, offset).
* Reads are one seek into the owning segment.
* Deletes append a tombstone.
* When the active segment exceeds ``segment_bytes``, it is sealed and a
  new one starts; :meth:`compact` rewrites only the live records into a
  fresh segment chain and drops the old files.
* On open, segments are replayed oldest-to-newest to rebuild the index.
  A torn final record (crash mid-append) is detected via its CRC/length
  and the file is truncated back to the last valid record.

Record wire format (little-endian)::

    u32 crc  | u32 key_len | u32 val_len | u8 tombstone | key | value

The CRC covers everything after the crc field.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path

__all__ = ["KVStore", "CorruptionError"]

_HEADER = struct.Struct("<III B")
_SEGMENT_PREFIX = "seg-"


class CorruptionError(RuntimeError):
    """Raised when a segment contains an unrecoverable corruption."""


class KVStore:
    """Durable embedded key-value store over a directory of segment files.

    Keys and values are ``bytes``.  A single RAPIDS metadata service owns
    the directory, as in the paper (metadata is "only maintained on one
    system"); within that process an internal lock serialises operations,
    so the archive service's worker threads may share one store.
    """

    def __init__(self, path: str | os.PathLike, *, segment_bytes: int = 4 * 2**20):
        if segment_bytes < 1024:
            raise ValueError("segment_bytes too small")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        # key -> (segment id, offset, total record length) for live keys
        self._index: dict[bytes, tuple[int, int, int]] = {}
        self._handles: dict[int, object] = {}
        self._active_id = 0
        self._active = None
        #: Optional chaos seam (see :mod:`repro.chaos`): consulted on
        #: every append/read; ``torn`` write faults crash the store.
        self.injector = None
        self._crashed = False
        # Serialises appends/reads across threads (the archive service
        # runs concurrent pipeline executions over one catalog).  Batch
        # readers (scan/compact/snapshot) use _get_locked inside one
        # acquisition; the lock is never taken re-entrantly.
        self._lock = threading.Lock()
        self._recover()

    def attach_injector(self, injector) -> None:
        """Attach (or clear) a chaos injector."""
        self.injector = injector

    # -- segment plumbing ------------------------------------------------

    def _segment_path(self, seg_id: int) -> Path:
        return self.path / f"{_SEGMENT_PREFIX}{seg_id:08d}.log"

    def _segment_ids(self) -> list[int]:
        out = []
        for p in self.path.iterdir():
            name = p.name
            if name.startswith(_SEGMENT_PREFIX) and name.endswith(".log"):
                out.append(int(name[len(_SEGMENT_PREFIX) : -4]))
        return sorted(out)

    def _open_active(self, seg_id: int) -> None:
        self._active_id = seg_id
        # rapidslint: disable-next=RPD108,RPD115 -- long-lived append handle, closed in close()/_rotate; open-time plumbing, not a data seam — faults land on kvstore.put/get/fsync
        self._active = open(self._segment_path(seg_id), "ab")
        # rapidslint: disable-next=RPD108 -- segment read handle cached in _handles, closed in close()
        self._handles[seg_id] = open(self._segment_path(seg_id), "rb")

    def _recover(self) -> None:
        ids = self._segment_ids()
        for seg_id in ids:
            self._replay_segment(seg_id)
        next_id = (ids[-1] + 1) if ids else 0
        # Reuse the last segment if it has room, else start fresh.
        if ids and self._segment_path(ids[-1]).stat().st_size < self.segment_bytes:
            if ids[-1] in self._handles:
                self._handles[ids[-1]].close()
                del self._handles[ids[-1]]
            self._open_active(ids[-1])
        else:
            self._open_active(next_id)

    def _replay_segment(self, seg_id: int) -> None:
        path = self._segment_path(seg_id)
        valid_end = 0
        # rapidslint: disable-next=RPD115 -- recovery replay is the torn-write *detector*; faulting the detector would mask the kvstore.put faults it exists to repair
        with open(path, "rb") as fh:
            data = fh.read()
        off = 0
        while off < len(data):
            rec = self._parse_record(data, off)
            if rec is None:
                break  # torn tail
            key, value, tombstone, rec_len = rec
            if tombstone:
                self._index.pop(key, None)
            else:
                self._index[key] = (seg_id, off, rec_len)
            off += rec_len
            valid_end = off
        if valid_end < len(data):
            # Torn final record from a crash: truncate it away.
            with open(path, "ab") as fh:
                fh.truncate(valid_end)
        # rapidslint: disable-next=RPD108 -- segment read handle cached in _handles, closed in close()
        self._handles[seg_id] = open(path, "rb")

    @staticmethod
    def _parse_record(buf: bytes, off: int):
        if off + _HEADER.size > len(buf):
            return None
        crc, klen, vlen, tomb = _HEADER.unpack_from(buf, off)
        end = off + _HEADER.size + klen + vlen
        if end > len(buf):
            return None
        body = buf[off + 4 : end]
        if zlib.crc32(body) != crc:
            return None
        key = buf[off + _HEADER.size : off + _HEADER.size + klen]
        value = buf[off + _HEADER.size + klen : end]
        return key, value, bool(tomb), end - off

    def _append(self, key: bytes, value: bytes, tombstone: bool) -> tuple[int, int, int]:
        self._check_live()
        body = _HEADER.pack(0, len(key), len(value), int(tombstone))[4:] + key + value
        rec = struct.pack("<I", zlib.crc32(body)) + body
        if self.injector is not None:
            spec = self.injector.check(
                "kvstore.put", handled=("torn",),
                key=key.decode("utf-8", "replace"), tombstone=tombstone,
            )
            if spec is not None:
                self._torn_append(rec, spec, key)
        if self._active.tell() + len(rec) > self.segment_bytes and self._active.tell() > 0:
            self._roll_segment()
        off = self._active.tell()
        self._active.write(rec)
        self._active.flush()
        if self.injector is not None:
            self.injector.check(
                "kvstore.fsync", key=key.decode("utf-8", "replace"),
            )
        return self._active_id, off, len(rec)

    def _torn_append(self, rec: bytes, spec, key: bytes) -> None:
        """Write only a prefix of the record, then crash the store.

        Simulates a power cut mid-append: the torn tail is exactly what
        :meth:`_replay_segment` detects and truncates on the next open.
        The store refuses further operations until reopened.
        """
        from ..chaos import InjectedFault

        cut = min(len(rec) - 1, int(len(rec) * min(max(spec.magnitude, 0.0), 1.0)))
        if cut > 0:
            self._active.write(rec[:cut])
            self._active.flush()
        self._crash()
        raise InjectedFault(
            "kvstore.put", "torn", {"key": key.decode("utf-8", "replace")},
        )

    def _crash(self) -> None:
        """Drop all handles and refuse further ops until reopen."""
        self._crashed = True
        if self._active is not None:
            self._active.close()
            self._active = None
        for fh in self._handles.values():
            fh.close()
        self._handles.clear()

    def _check_live(self) -> None:
        if self._crashed or self._active is None:
            raise RuntimeError(
                "KVStore crashed or closed; reopen the directory to recover"
            )

    def _roll_segment(self) -> None:
        self._active.close()
        self._open_active(self._active_id + 1)

    # -- public API --------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Durably store ``value`` under ``key`` (overwrites)."""
        self._check_key(key)
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("value must be bytes")
        with self._lock:
            self._index[key] = self._append(bytes(key), bytes(value), False)

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        """Fetch the latest value for ``key`` or ``default`` if absent."""
        with self._lock:
            return self._get_locked(key, default)

    def _get_locked(self, key: bytes, default: bytes | None) -> bytes | None:
        # Lock held by the caller (scan/compact/snapshot read batches
        # under one acquisition).
        self._check_key(key)
        self._check_live()
        if self.injector is not None:
            self.injector.check(
                "kvstore.get", key=bytes(key).decode("utf-8", "replace"),
            )
        loc = self._index.get(bytes(key))
        if loc is None:
            return default
        seg_id, off, rec_len = loc
        fh = self._handles[seg_id]
        fh.seek(off)
        buf = fh.read(rec_len)
        rec = self._parse_record(buf, 0)
        if rec is None:
            raise CorruptionError(f"record for {key!r} failed CRC check")
        return rec[1]

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it existed."""
        self._check_key(key)
        key = bytes(key)
        with self._lock:
            if key not in self._index:
                return False
            self._append(key, b"", True)
            del self._index[key]
            return True

    def scan(self, prefix: bytes = b"") -> list[tuple[bytes, bytes]]:
        """All live (key, value) pairs with the given prefix, key-sorted."""
        with self._lock:
            keys = sorted(k for k in self._index if k.startswith(prefix))
            return [(k, self._get_locked(k, None)) for k in keys]

    def keys(self, prefix: bytes = b"") -> list[bytes]:
        with self._lock:
            return sorted(k for k in self._index if k.startswith(prefix))

    def __contains__(self, key: bytes) -> bool:
        return bytes(key) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def compact(self) -> int:
        """Rewrite live records into fresh segments; returns bytes reclaimed."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        before = sum(
            self._segment_path(i).stat().st_size for i in self._segment_ids()
        )
        live = [(k, self._get_locked(k, None)) for k in sorted(self._index)]
        old_ids = self._segment_ids()
        new_start = (old_ids[-1] + 1) if old_ids else 0
        # Write the live set into a new segment chain first, then drop old.
        self._active.close()
        for fh in self._handles.values():
            fh.close()
        self._handles.clear()
        self._index.clear()
        self._open_active(new_start)
        try:
            for k, v in live:
                self._index[k] = self._append(k, v, False)
        except RuntimeError:
            # Injected crash mid-compaction: the old segment chain is
            # still on disk (we unlink only after a full rewrite), so a
            # reopen replays old-then-partial-new and loses nothing.
            if not self._crashed:
                self._crash()
            raise
        for seg_id in old_ids:
            if seg_id != self._active_id:
                self._segment_path(seg_id).unlink()
        after = sum(
            self._segment_path(i).stat().st_size for i in self._segment_ids()
        )
        return before - after

    def snapshot(self, dest: str | os.PathLike) -> int:
        """Write a consistent point-in-time snapshot to ``dest``.

        The snapshot is a fresh single-segment store holding exactly the
        live records; it opens as a normal :class:`KVStore` (the
        metadata-backup path a production deployment would cron).
        Returns the number of records written.
        """
        dest = Path(dest)
        if dest.exists() and any(dest.iterdir()):
            raise FileExistsError(f"snapshot destination not empty: {dest}")
        with self._lock:
            live = [(k, self._get_locked(k, None)) for k in sorted(self._index)]
        total = sum(len(k) + len(v) for k, v in live) + 64 * len(live) + 1024
        with KVStore(dest, segment_bytes=max(total, 4096)) as snap:
            for k, v in live:
                snap.put(k, v)
        return len(live)

    def restore_from_snapshot(self, src: str | os.PathLike) -> int:
        """Load every record from a snapshot into this store (overwrites
        matching keys; does not delete others).  Returns records loaded."""
        count = 0
        with KVStore(src) as snap:
            for k, v in snap.scan():
                self.put(k, v)
                count += 1
        return count

    def close(self) -> None:
        with self._lock:
            if self._active is not None:
                self._active.close()
                self._active = None
            for fh in self._handles.values():
                fh.close()
            self._handles.clear()

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _check_key(key) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("key must be bytes")
        if len(key) == 0:
            raise ValueError("empty keys are not allowed")
