"""Metadata management: embedded KV store (RocksDB substitute) + catalog."""

from .catalog import FragmentRecord, MetadataCatalog, ObjectRecord
from .kvstore import CorruptionError, KVStore
from .replicated import QuorumError, ReplicatedKVStore

__all__ = [
    "KVStore",
    "CorruptionError",
    "MetadataCatalog",
    "ObjectRecord",
    "FragmentRecord",
    "ReplicatedKVStore",
    "QuorumError",
]
