"""Metadata management: embedded KV store (RocksDB substitute) + catalog."""

from .catalog import (
    FragmentRecord,
    MetadataCatalog,
    ObjectRecord,
    level_storage_name,
)
from .kvstore import CorruptionError, KVStore
from .replicated import QuorumError, ReplicatedKVStore

__all__ = [
    "KVStore",
    "CorruptionError",
    "MetadataCatalog",
    "ObjectRecord",
    "FragmentRecord",
    "level_storage_name",
    "ReplicatedKVStore",
    "QuorumError",
]
