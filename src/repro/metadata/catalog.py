"""The RAPIDS metadata schema on top of the key-value store.

Tracks, per data object: the refactoring information needed for
reconstruction (shape, dtype, level sizes and errors), the per-level
fault-tolerance configuration, the location of every data/parity
fragment, and the observed throughput history of each storage system
(used to refresh the bandwidth parameters of the gathering optimiser, as
described in §4.3).

Key layout (all UTF-8)::

    obj/<name>                      -> object record (JSON)
    frag/<sname>/<level>/<index>    -> fragment record (JSON)
    bw/<system_id>                  -> throughput history (JSON list)
    acc/<name>                      -> cumulative access count (JSON int)

``<sname>`` is the *storage name* of a level: the object name itself
for generation 0, or ``<name>@g<gen>`` after a live re-encoding
migration bumped that level's generation (see
:func:`level_storage_name`).  The ``@g`` suffix is reserved — object
names must not contain it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .kvstore import KVStore

__all__ = [
    "ObjectRecord",
    "FragmentRecord",
    "MetadataCatalog",
    "level_storage_name",
]


def level_storage_name(name: str, generation: int) -> str:
    """Storage-layer name for one level of an object.

    Live migration re-encodes a level under a fresh *generation* so the
    new fragment set never collides with the old one on the cluster or
    in the fragment records; the single atomic flip is the object
    record's per-level generation list.  Generation 0 — every object at
    prepare time — keeps the bare name, so unmigrated workspaces are
    untouched.
    """
    if generation < 0:
        raise ValueError("generation must be >= 0")
    return name if generation == 0 else f"{name}@g{generation}"


@dataclass
class ObjectRecord:
    """Reconstruction metadata for one refactored data object."""

    name: str
    shape: list[int]
    dtype: str
    level_sizes: list[int]
    level_errors: list[float]
    ft_config: list[int]  # m_j per level
    n_systems: int
    data_max: float = 0.0
    correction: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def num_levels(self) -> int:
        return len(self.level_sizes)

    @property
    def generations(self) -> list[int]:
        """Per-level storage generation (0 = as prepared; bumped by
        live migration).  Stored in ``extra`` so old records round-trip
        unchanged."""
        gens = self.extra.get("generations")
        if gens is None:
            return [0] * self.num_levels
        return [int(g) for g in gens]

    def level_storage_name(self, level: int) -> str:
        return level_storage_name(self.name, self.generations[level])


@dataclass
class FragmentRecord:
    """Location and integrity info for one fragment."""

    object_name: str
    level: int
    index: int
    system_id: int
    nbytes: int
    checksum: int = 0


class MetadataCatalog:
    """Typed facade over a KV store for RAPIDS metadata.

    Accepts a directory path (opens a local :class:`KVStore`) or any
    already-open store exposing the KV interface — including the
    quorum-replicated :class:`~repro.metadata.replicated.ReplicatedKVStore`.
    """

    def __init__(self, path: "str | Path | KVStore") -> None:
        self._own_store = not hasattr(path, "get")
        self.store = KVStore(path) if self._own_store else path

    def attach_injector(self, injector) -> None:
        """Forward a chaos injector to the underlying KV store (no-op
        for store implementations without the seam)."""
        attach = getattr(self.store, "attach_injector", None)
        if attach is not None:
            attach(injector)

    # -- objects -----------------------------------------------------------

    def put_object(self, rec: ObjectRecord) -> None:
        self.store.put(
            f"obj/{rec.name}".encode(), json.dumps(asdict(rec)).encode()
        )

    def get_object(self, name: str) -> ObjectRecord:
        raw = self.store.get(f"obj/{name}".encode())
        if raw is None:
            raise KeyError(f"no such object: {name!r}")
        return ObjectRecord(**json.loads(raw))

    def list_objects(self) -> list[str]:
        return [k.decode()[4:] for k in self.store.keys(b"obj/")]

    def delete_object(self, name: str) -> None:
        """Remove an object and all its fragment records (every
        storage generation) plus its access counter."""
        self.store.delete(f"obj/{name}".encode())
        for prefix in (f"frag/{name}/", f"frag/{name}@"):
            for key in self.store.keys(prefix.encode()):
                self.store.delete(key)
        self.store.delete(f"acc/{name}".encode())

    # -- fragments -----------------------------------------------------------

    def put_fragment(self, rec: FragmentRecord) -> None:
        key = f"frag/{rec.object_name}/{rec.level:04d}/{rec.index:04d}"
        self.store.put(key.encode(), json.dumps(asdict(rec)).encode())

    def get_fragment(self, object_name: str, level: int, index: int) -> FragmentRecord:
        key = f"frag/{object_name}/{level:04d}/{index:04d}"
        raw = self.store.get(key.encode())
        if raw is None:
            raise KeyError(
                f"no fragment record for ({object_name!r}, {level}, {index})"
            )
        return FragmentRecord(**json.loads(raw))

    def level_fragments(self, object_name: str, level: int) -> list[FragmentRecord]:
        prefix = f"frag/{object_name}/{level:04d}/".encode()
        return [
            FragmentRecord(**json.loads(v)) for _, v in self.store.scan(prefix)
        ]

    def relocate_fragment(
        self, object_name: str, level: int, index: int, new_system: int
    ) -> None:
        """Update a fragment's location after repair onto a new system (§4.2)."""
        rec = self.get_fragment(object_name, level, index)
        rec.system_id = new_system
        self.put_fragment(rec)

    # -- access frequency -------------------------------------------------------

    def record_access(self, name: str, count: int = 1) -> int:
        """Bump an object's cumulative access counter; returns the new
        total.  The control plane differences successive totals to see
        per-epoch request rates (flash-crowd detection)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        key = f"acc/{name}".encode()
        raw = self.store.get(key)
        total = (int(json.loads(raw)) if raw else 0) + int(count)
        self.store.put(key, json.dumps(total).encode())
        return total

    def access_count(self, name: str) -> int:
        raw = self.store.get(f"acc/{name}".encode())
        return int(json.loads(raw)) if raw else 0

    def access_counts(self) -> dict[str, int]:
        """Cumulative access counts for every tracked object."""
        return {
            k.decode()[4:]: int(json.loads(v))
            for k, v in self.store.scan(b"acc/")
        }

    # -- bandwidth history ------------------------------------------------------

    def record_throughput(self, system_id: int, bytes_per_sec: float, *, keep: int = 64) -> None:
        """Append an observed transfer throughput for a system."""
        if bytes_per_sec <= 0:
            raise ValueError("throughput must be positive")
        key = f"bw/{system_id:04d}".encode()
        raw = self.store.get(key)
        hist = json.loads(raw) if raw else []
        hist.append(float(bytes_per_sec))
        self.store.put(key, json.dumps(hist[-keep:]).encode())

    def bandwidth_estimate(self, system_id: int, *, alpha: float = 0.3) -> float | None:
        """EWMA bandwidth estimate from the recorded history (newest-weighted)."""
        raw = self.store.get(f"bw/{system_id:04d}".encode())
        if raw is None:
            return None
        hist = json.loads(raw)
        est = hist[0]
        for obs in hist[1:]:
            est = (1 - alpha) * est + alpha * obs
        return float(est)

    def close(self) -> None:
        if self._own_store:
            self.store.close()

    def __enter__(self) -> "MetadataCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
