"""Legacy shim so ``pip install -e .`` works offline without the wheel pkg."""

from setuptools import setup

setup()
